//! # dpr — Distributed Prefix Recovery
//!
//! A from-scratch Rust reproduction of *"Asynchronous Prefix Recoverability
//! for Fast Distributed Stores"* (Li, Chandramouli, Faleiro, Madden,
//! Kossmann — SIGMOD 2021).
//!
//! DPR lets a sharded deployment of *cache-stores* (fast volatile
//! front-ends with asynchronous checkpoints) serve operations at memory
//! speed while asynchronously reporting **prefix commits** to client
//! sessions, and — on failure — restores the whole cluster to a
//! prefix-consistent cut with a non-blocking rollback.
//!
//! ## Quick start
//!
//! ```
//! use dpr::cluster::{Cluster, ClusterConfig, ClusterOp};
//! use dpr::core::{Key, Value};
//! use std::time::Duration;
//!
//! // A 2-shard D-FASTER cluster with 25 ms checkpoints.
//! let config = ClusterConfig {
//!     shards: 2,
//!     checkpoint_interval: Some(Duration::from_millis(25)),
//!     ..ClusterConfig::default()
//! };
//! let cluster = Cluster::start(config).unwrap();
//! let mut session = cluster.open_session().unwrap();
//!
//! // Operations complete immediately (uncommitted)...
//! session
//!     .execute(vec![ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(42))])
//!     .unwrap();
//!
//! // ...and commit asynchronously as the DPR cut advances.
//! session
//!     .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
//!     .unwrap();
//! assert_eq!(session.stats().committed, 1);
//! cluster.shutdown();
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | versions, world-lines, tokens, epochs, errors |
//! | [`storage`] | storage devices (null / local-SSD / cloud-SSD profiles) |
//! | [`metadata`] | the fault-tolerant metadata store (DPR table, ownership, recovery) |
//! | [`faster`] | the FASTER-style cache-store with CPR checkpoints and THROW/PURGE rollback |
//! | [`redis`] | the unmodified Redis-like store libDPR wraps |
//! | [`cassandra`] | the commit-log baseline store |
//! | [`protocol`] | libDPR: StateObject, client/server hooks, cut finders |
//! | [`cluster`] | D-FASTER / D-Redis deployments, cluster manager, client sessions |
//! | [`ycsb`] | workload generation and measurement |
//! | [`telemetry`] | metrics/span layer (see `docs/OBSERVABILITY.md`) |

pub use dpr_cassandra as cassandra;
pub use dpr_core as core;
pub use dpr_faster as faster;
pub use dpr_log as shared_log;
pub use dpr_metadata as metadata;
pub use dpr_redis as redis;
pub use dpr_storage as storage;
pub use dpr_telemetry as telemetry;
pub use dpr_ycsb as ycsb;
pub use libdpr as protocol;

/// Cluster deployments (re-export of `dpr-cluster` with the common types at
/// the top level).
pub mod cluster {
    pub use dpr_cluster::*;
}
