#!/usr/bin/env bash
# Bench guard: regenerate the smoke benchmarks and fail if throughput
# regressed more than DPR_BENCH_GUARD_PCT percent (default 25) against the
# checked-in smoke baselines.
#
# Baselines live at the repo root:
#   BENCH_gate.smoke.json — §6 gate microbench  (metric: best striped
#                           batches_per_sec across thread points)
#   BENCH_net.smoke.json  — loopback netload    (metric: summary
#                           .peak_ops_per_sec)
#   BENCH_meta.smoke.json — metadata/finder plane (metric: summary
#                           .delta_refreshes_per_sec_hi; also re-asserts
#                           zero full-graph clones on the delta path)
#
# Regenerate a baseline deliberately (e.g. after a hardware change or an
# accepted perf trade-off) by copying the fresh smoke out of target/:
#   cp target/BENCH_gate.smoke.json BENCH_gate.smoke.json
#
# The guard is a one-sided check: faster-than-baseline always passes.
# A missing baseline is a skip with a notice, not a failure, so the gate
# still works on fresh clones before baselines are first checked in.

set -euo pipefail
cd "$(dirname "$0")/.."

PCT="${DPR_BENCH_GUARD_PCT:-25}"
FAIL=0

# compare NAME CURRENT BASELINE — fail if CURRENT < BASELINE * (100-PCT)%
compare() {
    local name="$1" current="$2" baseline="$3"
    local floor
    floor=$(python3 -c "print(int($baseline * (100 - $PCT) / 100))")
    if python3 -c "import sys; sys.exit(0 if $current >= $floor else 1)"; then
        echo "    OK  $name: $current >= floor $floor (baseline $baseline, -$PCT% allowed)"
    else
        echo "    FAIL $name: $current < floor $floor (baseline $baseline, -$PCT% allowed)"
        FAIL=1
    fi
}

echo "==> bench guard: gate_scaling smoke"
DPR_BENCH_SECS=0.25 DPR_GATE_THREADS=1,2 \
    DPR_GATE_JSON=target/BENCH_gate.smoke.json \
    cargo run --release -q -p dpr-bench --bin gate_scaling

if [[ -f BENCH_gate.smoke.json ]]; then
    current=$(python3 -c "
import json
d = json.load(open('target/BENCH_gate.smoke.json'))
print(max(p['batches_per_sec'] for p in d['points'] if p['gate'] == 'striped'))")
    baseline=$(python3 -c "
import json
d = json.load(open('BENCH_gate.smoke.json'))
print(max(p['batches_per_sec'] for p in d['points'] if p['gate'] == 'striped'))")
    compare "gate striped batches/s" "$current" "$baseline"
else
    echo "    SKIP gate guard: no checked-in BENCH_gate.smoke.json baseline"
fi

echo "==> bench guard: netload smoke"
DPR_BENCH_SECS=1 DPR_NET_SHARDS=2 DPR_NET_SESSIONS=8 DPR_NET_THREADS=1 \
    DPR_NET_QPS=0 DPR_NET_JSON=target/BENCH_net.smoke.json \
    cargo run --release -q -p dpr-bench --bin netload

if [[ -f BENCH_net.smoke.json ]]; then
    current=$(python3 -c "
import json
print(json.load(open('target/BENCH_net.smoke.json'))['summary']['peak_ops_per_sec'])")
    baseline=$(python3 -c "
import json
print(json.load(open('BENCH_net.smoke.json'))['summary']['peak_ops_per_sec'])")
    compare "netload peak ops/s" "$current" "$baseline"
else
    echo "    SKIP net guard: no checked-in BENCH_net.smoke.json baseline"
fi

echo "==> bench guard: meta_scaling smoke"
DPR_BENCH_SECS=0.25 DPR_META_SHARDS=4,8 \
    DPR_META_JSON=target/BENCH_meta.smoke.json \
    cargo run --release -q -p dpr-bench --bin meta_scaling

if [[ -f BENCH_meta.smoke.json ]]; then
    current=$(python3 -c "
import json
d = json.load(open('target/BENCH_meta.smoke.json'))
assert d['summary']['delta_full_graph_clones'] == 0, 'delta engine cloned the graph'
print(d['summary']['delta_refreshes_per_sec_hi'])")
    baseline=$(python3 -c "
import json
print(json.load(open('BENCH_meta.smoke.json'))['summary']['delta_refreshes_per_sec_hi'])")
    compare "meta delta refreshes/s" "$current" "$baseline"
else
    echo "    SKIP meta guard: no checked-in BENCH_meta.smoke.json baseline"
fi

if [[ "$FAIL" -ne 0 ]]; then
    echo
    echo "bench guard FAILED: throughput regressed more than $PCT% vs baseline."
    echo "If the regression is intended, refresh the baseline from target/ (see header)."
    exit 1
fi
echo "bench guard passed."
