#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before it ships.
#
#   scripts/check.sh --quick   build + tier-1 tests only (fast inner loop)
#   scripts/check.sh           the full gate: workspace tests, lints,
#                              docs, bench smokes, and the bench guard
#
# Fully offline — dependencies are vendored as stubs under third_party/
# (see third_party/README.md), so no registry or network access is needed.
# rustfmt and clippy are optional in minimal toolchains; their steps are
# skipped with a notice when absent rather than failing the gate.

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo build --release

# Tier-1: the root package's unit/integration/property/doc tests.
step cargo test -q

if [[ "$MODE" == "--quick" ]]; then
    echo
    echo "Quick checks passed (tier-1 only; run scripts/check.sh for the full gate)."
    exit 0
fi

# The full workspace: every crate's suites.
step cargo test --workspace -q

if cargo fmt --version >/dev/null 2>&1; then
    step cargo fmt --check
else
    echo
    echo "==> cargo fmt --check SKIPPED (rustfmt not installed)"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo
    echo "==> cargo clippy --workspace --all-targets (warnings denied)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo
    echo "==> cargo clippy SKIPPED (clippy not installed)"
fi

echo
echo "==> cargo doc --no-deps --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Chaos smoke: one short fixed-seed round of the fault-injection campaign
# with the online invariant checker (crates/dpr-chaos; docs/PROTOCOL.md
# §10). Exits nonzero on any invariant violation. The checked-in
# BENCH_chaos.json comes from a full default-length campaign; the smoke
# writes to the target directory instead.
echo
echo "==> chaos smoke (1 round, seed 42, 2s)"
cargo run --release -q -p dpr-bench --bin chaos -- \
    --seed 42 --rounds 1 --secs 2 --out target/BENCH_chaos.smoke.json

# Bench guard: regenerates the gate-scaling, netload, and meta-scaling
# smokes (a ~1 s §6 gate microbench, a short loopback netload run
# exercising the framed wire protocol end to end, and a short
# metadata/finder-plane run over the partitioned store + delta engine)
# and fails if throughput regressed more than DPR_BENCH_GUARD_PCT percent
# (default 25) against the checked-in BENCH_*.smoke.json baselines.
# Full-length BENCH_*.json artifacts are regenerated manually, not here.
echo
echo "==> bench guard (gate + netload + meta smokes vs checked-in baselines)"
scripts/bench_guard.sh

echo
echo "All checks passed."
