#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before it ships.
#
# Fully offline — dependencies are vendored as stubs under third_party/
# (see third_party/README.md), so no registry or network access is needed.
# rustfmt is optional in minimal toolchains; its step is skipped with a
# notice when absent rather than failing the gate.

set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo build --release

# Tier-1: the root package's unit/integration/property/doc tests.
step cargo test -q

# The full workspace: every crate's suites.
step cargo test --workspace -q

# Gate-scaling smoke: a ~1 s run of the §6 gate microbench (2 threads,
# short points) proving both gate implementations still drive a full
# record → seal → pump → finder pipeline. The checked-in BENCH_gate.json
# is regenerated only by a full default-length run; the smoke writes to
# the target directory instead.
echo
echo "==> gate_scaling smoke (2 threads, short points)"
DPR_BENCH_SECS=0.25 DPR_GATE_THREADS=1,2 \
    DPR_GATE_JSON=target/BENCH_gate.smoke.json \
    cargo run --release -q -p dpr-bench --bin gate_scaling

# Chaos smoke: one short fixed-seed round of the fault-injection campaign
# with the online invariant checker (crates/dpr-chaos; docs/PROTOCOL.md
# §10). Exits nonzero on any invariant violation. The checked-in
# BENCH_chaos.json comes from a full default-length campaign; the smoke
# writes to the target directory instead.
echo
echo "==> chaos smoke (1 round, seed 42, 2s)"
cargo run --release -q -p dpr-bench --bin chaos -- \
    --seed 42 --secs 2 --rounds 1 --out target/BENCH_chaos.smoke.json

# Network-plane smoke: a short netload run over real loopback TCP — server
# subprocess with 2 workers, 8 pipelined client sessions, one uncapped
# point — proving the framed wire protocol, handshake, and cut transfer
# work end to end over sockets (docs/NETWORK.md). The checked-in
# BENCH_net.json comes from a full default-length run; the smoke writes to
# the target directory instead.
echo
echo "==> netload smoke (2 shards, 8 sessions, loopback)"
DPR_BENCH_SECS=1 DPR_NET_SHARDS=2 DPR_NET_SESSIONS=8 DPR_NET_THREADS=1 \
    DPR_NET_QPS=0 DPR_NET_JSON=target/BENCH_net.smoke.json \
    cargo run --release -q -p dpr-bench --bin netload

echo
echo "==> cargo doc --no-deps --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

if cargo fmt --version >/dev/null 2>&1; then
    step cargo fmt --check
else
    echo
    echo "==> cargo fmt --check SKIPPED (rustfmt not installed)"
fi

echo
echo "All checks passed."
