//! Reproduce the Fig. 5 prefix anomaly — and verify DPR's world-line
//! mechanism prevents it (§4.2).
//!
//! The anomaly: during recovery, shard A has already rolled back (and told
//! the client about the failure), but shard B has not. A naïve client that
//! "recovered" then writes op 11 to B; B's later `Restore()` erases it,
//! violating the prefix guarantee. With world-lines, B rejects the
//! post-recovery client until it has itself restored.

use dpr::cluster::{ClusterOp, FasterShard, OpResult};
use dpr::core::{DprError, Key, SessionId, ShardId, Value, Version, WorldLine};
use dpr::faster::{FasterConfig, FasterKv};
use dpr::protocol::{BatchDisposition, DprClientSession, DprServer, StateObject};
use dpr::storage::{MemBlobStore, MemLogDevice};
use dpr_cluster::worker::ShardStore;
use std::sync::Arc;
use std::time::Duration;

fn shard(id: u32) -> (FasterShard, DprServer) {
    let kv = FasterKv::new(
        FasterConfig {
            index_buckets: 1 << 8,
            memory_budget_records: 1 << 20,
            auto_maintenance: true,
            ..FasterConfig::default()
        },
        Arc::new(MemLogDevice::null()),
        Arc::new(MemBlobStore::new()),
    );
    (
        FasterShard::new(ShardId(id), kv),
        DprServer::new(ShardId(id)),
    )
}

#[test]
fn straggler_shard_rejects_post_recovery_operations() {
    let (shard_a, server_a) = shard(0);
    let (shard_b, server_b) = shard(1);
    let mut client = DprClientSession::new(SessionId(1));

    // Normal operation: ops 1..10 across A and B, committed at v1.
    for i in 0..5u64 {
        let ha = client.begin_batch(ShardId(0), 1).unwrap();
        let (_, va) = shard_a
            .execute_batch(
                SessionId(1),
                &[ClusterOp::Upsert(Key::from_u64(i), Value::from_u64(i))],
            )
            .unwrap();
        client.process_reply(&server_a.make_reply(&ha, va)).unwrap();
        let hb = client.begin_batch(ShardId(1), 1).unwrap();
        let (_, vb) = shard_b
            .execute_batch(
                SessionId(1),
                &[ClusterOp::Upsert(
                    Key::from_u64(100 + i),
                    Value::from_u64(i),
                )],
            )
            .unwrap();
        client.process_reply(&server_b.make_reply(&hb, vb)).unwrap();
    }

    // Failure detected: the cluster manager assigns world-line 1. Shard A
    // restores immediately; shard B is a straggler, still on world-line 0.
    shard_a.restore(Version::ZERO).unwrap();
    server_a.on_restore(Version::ZERO);
    server_a.set_world_line(WorldLine(1));

    // The client learns about the failure from A and recovers.
    let ha = client.begin_batch(ShardId(0), 1).unwrap();
    match server_a.validate(&ha, &shard_a) {
        BatchDisposition::Reject(DprError::WorldLineMismatch { .. }) => {}
        other => panic!("expected world-line rejection, got {other:?}"),
    }
    let cut = dpr::metadata::Cut::new(); // nothing committed → empty prefix
    client.handle_failure(WorldLine(1), &cut);
    assert_eq!(client.world_line(), WorldLine(1));

    // THE ANOMALY ATTEMPT: the recovered client issues op 11 to the
    // straggler B. Without world-lines, B would execute it and then erase
    // it in its own Restore(). With DPR, B rejects it (Recovering).
    let hb = client.begin_batch(ShardId(1), 1).unwrap();
    match server_b.validate(&hb, &shard_b) {
        BatchDisposition::Reject(DprError::Recovering) => {}
        other => panic!("straggler must delay the post-recovery client, got {other:?}"),
    }

    // B finally restores and catches up; the client's op now executes and
    // can never be erased by that recovery.
    shard_b.restore(Version::ZERO).unwrap();
    server_b.on_restore(Version::ZERO);
    server_b.set_world_line(WorldLine(1));
    match server_b.validate(&hb, &shard_b) {
        BatchDisposition::Execute => {}
        other => panic!("expected execute after B recovered, got {other:?}"),
    }
    let (results, vb) = shard_b
        .execute_batch(
            SessionId(1),
            &[ClusterOp::Upsert(Key::from_u64(11), Value::from_u64(11))],
        )
        .unwrap();
    assert_eq!(results[0], OpResult::Done);
    client.process_reply(&server_b.make_reply(&hb, vb)).unwrap();

    // Op 11 is alive on world-line 1.
    let h = client.begin_batch(ShardId(1), 1).unwrap();
    let (results, _) = shard_b
        .execute_batch(SessionId(1), &[ClusterOp::Read(Key::from_u64(11))])
        .unwrap();
    assert_eq!(results[0], OpResult::Value(Some(Value::from_u64(11))));
    drop(h);
}

#[test]
fn stale_client_is_rejected_after_recovery() {
    let (shard_a, server_a) = shard(0);
    // A client still on world-line 0 after the shard moved to 1 must get a
    // world-line mismatch (it has not handled the failure yet).
    let mut client = DprClientSession::new(SessionId(9));
    server_a.set_world_line(WorldLine(1));
    let h = client.begin_batch(ShardId(0), 1).unwrap();
    match server_a.validate(&h, &shard_a) {
        BatchDisposition::Reject(DprError::WorldLineMismatch { requested, current }) => {
            assert_eq!(requested, WorldLine(0));
            assert_eq!(current, WorldLine(1));
        }
        other => panic!("unexpected {other:?}"),
    }
    // Dropping the shard's maintenance thread cleanly.
    std::thread::sleep(Duration::from_millis(1));
}
