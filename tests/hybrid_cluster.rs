//! End-to-end runs under the exact and hybrid finders, and facade API
//! coverage.

use dpr::cluster::{Cluster, ClusterConfig, ClusterOp, OpResult};
use dpr::core::{DprFinderMode, Key, Value};
use std::time::Duration;

fn run_cluster_with(mode: DprFinderMode) {
    let cluster = Cluster::start(ClusterConfig {
        shards: 3,
        finder_mode: mode,
        checkpoint_interval: Some(Duration::from_millis(20)),
        finder_interval: Duration::from_millis(2),
        ..ClusterConfig::default()
    })
    .unwrap();
    let mut session = cluster.open_session().unwrap();
    // Cross-shard dependency chain: each op reads the previous op's key
    // (likely on another shard) then writes a new one.
    let mut prev = Key::from_u64(0);
    session
        .execute(vec![ClusterOp::Upsert(prev.clone(), Value::from_u64(0))])
        .unwrap();
    for i in 1..60u64 {
        let key = Key::from_u64(i);
        let results = session
            .execute(vec![
                ClusterOp::Read(prev.clone()),
                ClusterOp::Upsert(key.clone(), Value::from_u64(i)),
            ])
            .unwrap();
        assert!(
            matches!(results[0], OpResult::Value(Some(_))),
            "chain intact at {i}"
        );
        prev = key;
    }
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(15))
        .unwrap();
    assert_eq!(session.stats().committed, session.stats().completed);
    cluster.shutdown();
}

#[test]
fn exact_finder_cluster_end_to_end() {
    run_cluster_with(DprFinderMode::Exact);
}

#[test]
fn hybrid_finder_cluster_end_to_end() {
    run_cluster_with(DprFinderMode::Hybrid);
}

#[test]
fn facade_reexports_cover_all_crates() {
    // Compile-time coverage that the facade exposes every subsystem.
    use dpr::cassandra::CommitLogSync;
    use dpr::core::Version;
    use dpr::faster::FasterConfig;
    use dpr::metadata::Partitioner;
    use dpr::protocol::DprFinder;
    use dpr::redis::AofPolicy;
    use dpr::shared_log::ConsumerId;
    use dpr::storage::StorageProfile;
    use dpr::ycsb::Zipfian;

    let _ = CommitLogSync::Group;
    let _ = Version::FIRST;
    let _ = FasterConfig::default();
    let _ = Partitioner::Hash { partitions: 4 };
    let _ = AofPolicy::Off;
    let _ = ConsumerId(1);
    let _ = StorageProfile::Null;
    let _ = Zipfian::new(10, 0.5);
    fn _assert_object_safe(_: &dyn DprFinder) {}
}

#[test]
fn mixed_operation_batches_preserve_per_op_results() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(25)),
        ..ClusterConfig::default()
    })
    .unwrap();
    let mut session = cluster.open_session().unwrap();
    // A batch mixing every op kind across shards, twice, interleaved.
    let k = Key::from_u64;
    let results = session
        .execute(vec![
            ClusterOp::Upsert(k(1), Value::from_u64(10)),
            ClusterOp::Incr(k(2)),
            ClusterOp::Read(k(1)),
            ClusterOp::Upsert(k(3), Value::from_u64(30)),
            ClusterOp::Delete(k(1)),
            ClusterOp::Read(k(1)),
            ClusterOp::Read(k(2)),
            ClusterOp::Read(k(3)),
        ])
        .unwrap();
    assert_eq!(results[2], OpResult::Value(Some(Value::from_u64(10))));
    assert_eq!(results[5], OpResult::Value(None), "deleted");
    assert_eq!(results[6], OpResult::Value(Some(Value::from_u64(1))));
    assert_eq!(results[7], OpResult::Value(Some(Value::from_u64(30))));
    cluster.shutdown();
}
