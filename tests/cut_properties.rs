//! Property-based tests of the DPR-cut finders (Definition 3.1): every cut
//! any finder emits must be closed under the dependency relation, must
//! never regress, and — for monotone graphs, the ones the §3.2 version
//! clock actually produces — must make progress.

use dpr::core::{ShardId, Token, Version};
use dpr::metadata::{MetadataStore, SimulatedSqlStore};
use dpr::protocol::finder::{compute_closure_cut_capped, cut_is_closed};
use dpr::protocol::{
    ApproximateFinder, Cut, CutEngine, CutEngineMode, DprFinder, ExactFinder, HybridFinder,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const SHARDS: u32 = 4;

/// A randomly generated commit event: shard, version bump, and dependency
/// versions on the other shards (clamped for monotonicity when requested).
#[derive(Debug, Clone)]
struct Commit {
    shard: u32,
    deps: Vec<(u32, u64)>,
}

fn commit_strategy() -> impl Strategy<Value = Commit> {
    (
        0..SHARDS,
        prop::collection::vec((0..SHARDS, 0..20u64), 0..3),
    )
        .prop_map(|(shard, deps)| Commit { shard, deps })
}

/// Replay commits against a finder with per-shard version counters.
/// `monotone` clamps dependency versions to ≤ the issuing token's version
/// (what the Lamport clock guarantees).
fn replay(
    finder: &dyn DprFinder,
    commits: &[Commit],
    monotone: bool,
) -> BTreeMap<Token, Vec<Token>> {
    let mut versions = [0u64; SHARDS as usize];
    let mut graph = BTreeMap::new();
    for c in commits {
        versions[c.shard as usize] += 1;
        let v = versions[c.shard as usize];
        let deps: Vec<Token> = c
            .deps
            .iter()
            .filter(|(s, _)| *s != c.shard)
            .map(|(s, dv)| {
                let dv = if monotone { (*dv).min(v) } else { *dv };
                Token::new(ShardId(*s), Version(dv))
            })
            .collect();
        let token = Token::new(ShardId(c.shard), Version(v));
        graph.insert(token, deps.clone());
        finder.report_commit(token, deps).unwrap();
    }
    graph
}

fn setup() -> Arc<SimulatedSqlStore> {
    let meta = Arc::new(SimulatedSqlStore::new());
    for s in 0..SHARDS {
        meta.register_worker(ShardId(s)).unwrap();
    }
    meta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_cut_is_always_closed(commits in prop::collection::vec(commit_strategy(), 1..60)) {
        let meta = setup();
        let finder = ExactFinder::new(meta);
        // Even for adversarial (non-monotone) graphs the cut must be valid.
        let graph = replay(&finder, &commits, false);
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        prop_assert!(cut_is_closed(&graph, &cut), "cut {cut:?} not closed for {graph:?}");
    }

    #[test]
    fn exact_cut_is_monotone_across_refreshes(commits in prop::collection::vec(commit_strategy(), 2..60)) {
        let meta = setup();
        let finder = ExactFinder::new(meta);
        let mut versions = [0u64; SHARDS as usize];
        let mut prev = finder.current_cut().unwrap();
        for c in &commits {
            versions[c.shard as usize] += 1;
            let v = versions[c.shard as usize];
            let deps: Vec<Token> = c
                .deps
                .iter()
                .filter(|(s, _)| *s != c.shard)
                .map(|(s, dv)| Token::new(ShardId(*s), Version((*dv).min(v))))
                .collect();
            finder.report_commit(Token::new(ShardId(c.shard), Version(v)), deps).unwrap();
            finder.refresh().unwrap();
            let cut = finder.current_cut().unwrap();
            for (shard, v) in &prev {
                prop_assert!(cut.get(shard).copied().unwrap_or(Version::ZERO) >= *v,
                    "cut regressed on {shard}");
            }
            prev = cut;
        }
    }

    #[test]
    fn monotone_graphs_eventually_commit_everything(commits in prop::collection::vec(commit_strategy(), 1..60)) {
        // With the version clock (monotone deps), once every shard has
        // committed its max version, the exact cut covers every token
        // (progress, §3.2).
        let meta = setup();
        let finder = ExactFinder::new(meta);
        let graph = replay(&finder, &commits, true);
        // Make sure every shard has committed up to the max version any dep
        // references (deps may point to not-yet-committed same-or-lower
        // versions of other shards).
        let mut max_needed = [0u64; SHARDS as usize];
        for (t, deps) in &graph {
            max_needed[t.shard.0 as usize] = max_needed[t.shard.0 as usize].max(t.version.0);
            for d in deps {
                max_needed[d.shard.0 as usize] = max_needed[d.shard.0 as usize].max(d.version.0);
            }
        }
        let mut versions: Vec<u64> = (0..SHARDS)
            .map(|s| graph.keys().filter(|t| t.shard.0 == s).map(|t| t.version.0).max().unwrap_or(0))
            .collect();
        for s in 0..SHARDS {
            while versions[s as usize] < max_needed[s as usize] {
                versions[s as usize] += 1;
                finder
                    .report_commit(Token::new(ShardId(s), Version(versions[s as usize])), vec![])
                    .unwrap();
            }
        }
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        for s in 0..SHARDS {
            prop_assert!(
                cut[&ShardId(s)] >= Version(versions[s as usize]),
                "shard {s} stuck at {:?} < {}",
                cut[&ShardId(s)],
                versions[s as usize]
            );
        }
    }

    #[test]
    fn approximate_cut_is_closed_for_monotone_graphs(commits in prop::collection::vec(commit_strategy(), 1..60)) {
        let meta = setup();
        let finder = ApproximateFinder::new(meta);
        let graph = replay(&finder, &commits, true);
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        prop_assert!(cut_is_closed(&graph, &cut));
    }

    #[test]
    fn hybrid_cut_closed_and_at_least_approximate(commits in prop::collection::vec(commit_strategy(), 1..60)) {
        let meta = setup();
        let hybrid = HybridFinder::new(meta.clone());
        let graph = replay(&hybrid, &commits, true);
        hybrid.refresh().unwrap();
        let hybrid_cut = hybrid.current_cut().unwrap();
        prop_assert!(cut_is_closed(&graph, &hybrid_cut));
        // The hybrid must dominate the plain Vmin floor.
        let vmin = meta.min_persisted_version().unwrap().unwrap_or(Version::ZERO);
        for s in 0..SHARDS {
            prop_assert!(hybrid_cut[&ShardId(s)] >= vmin);
        }
    }

    #[test]
    fn hybrid_survives_crash_with_closed_cut(
        before in prop::collection::vec(commit_strategy(), 1..30),
        after in prop::collection::vec(commit_strategy(), 1..30),
    ) {
        let meta = setup();
        let hybrid = HybridFinder::new(meta);
        let mut versions = [0u64; SHARDS as usize];
        let mut graph = BTreeMap::new();
        let feed = |commits: &[Commit], versions: &mut [u64; SHARDS as usize], graph: &mut BTreeMap<Token, Vec<Token>>| {
            for c in commits {
                versions[c.shard as usize] += 1;
                let v = versions[c.shard as usize];
                let deps: Vec<Token> = c
                    .deps
                    .iter()
                    .filter(|(s, _)| *s != c.shard)
                    .map(|(s, dv)| Token::new(ShardId(*s), Version((*dv).min(v))))
                    .collect();
                let token = Token::new(ShardId(c.shard), Version(v));
                graph.insert(token, deps.clone());
                hybrid.report_commit(token, deps).unwrap();
            }
        };
        feed(&before, &mut versions, &mut graph);
        hybrid.refresh().unwrap();
        hybrid.simulate_coordinator_crash();
        feed(&after, &mut versions, &mut graph);
        hybrid.refresh().unwrap();
        let cut = hybrid.current_cut().unwrap();
        prop_assert!(cut_is_closed(&graph, &cut), "post-crash cut {cut:?} not closed");
    }

    /// The delta engine must emit the *same* cut as the full-recompute
    /// oracle ([`compute_closure_cut_capped`] over the complete history)
    /// at every compute, across random graphs (non-monotone allowed),
    /// random prune (commit) interleavings — including failed publishes
    /// that skip the commit — external floor raises, and lost-ceiling
    /// caps whose pins a rising floor eventually passes.
    #[test]
    fn delta_engine_matches_full_recompute_oracle(
        events in prop::collection::vec((commit_strategy(), 0..8u8), 1..80),
        ceiling_entries in prop::collection::vec((0..SHARDS, 1..6u64), 0..3),
    ) {
        let ceiling: Cut = ceiling_entries
            .into_iter()
            .map(|(s, v)| (ShardId(s), Version(v)))
            .collect();
        let engine = CutEngine::new(CutEngineMode::Delta);
        let mut full: BTreeMap<Token, Vec<Token>> = BTreeMap::new();
        let mut versions = [0u64; SHARDS as usize];
        // The floor the finders would hand the engine: the last *published*
        // cut joined with an external component (persisted-version
        // progress), both monotone — exactly the precondition the
        // delta ≡ full theorem needs.
        let mut published = Cut::new();
        let mut external = [0u64; SHARDS as usize];
        for (c, flags) in &events {
            versions[c.shard as usize] += 1;
            let v = versions[c.shard as usize];
            let deps: Vec<Token> = c
                .deps
                .iter()
                .filter(|(s, _)| *s != c.shard)
                .map(|(s, dv)| Token::new(ShardId(*s), Version(*dv)))
                .collect();
            let token = Token::new(ShardId(c.shard), Version(v));
            full.insert(token, deps.clone());
            engine.ingest_one(token, deps);
            if flags & 4 != 0 {
                // External floor progress on this shard (a checkpoint
                // catching up) — this is what walks a pinned shard's floor
                // past its lost ceiling.
                external[c.shard as usize] = v;
            }
            if flags & 1 != 0 {
                let mut floor = published.clone();
                for s in 0..SHARDS {
                    let e = floor.entry(ShardId(s)).or_insert(Version::ZERO);
                    *e = (*e).max(Version(external[s as usize]));
                }
                let cut = engine.compute(&floor, &ceiling);
                let oracle = compute_closure_cut_capped(&full, &floor, &ceiling);
                prop_assert_eq!(
                    &cut, &oracle,
                    "delta cut diverged from oracle at floor {:?} ceiling {:?}",
                    &floor, &ceiling
                );
                if flags & 2 != 0 {
                    // Publish succeeded: prune the delta working set.
                    engine.commit(&cut);
                    published = cut;
                }
                // flags & 2 == 0 models a failed publish (store
                // recovering): the engine must keep its tokens.
            }
        }
    }

    /// Finder-level equivalence: a Delta [`ExactFinder`] and a
    /// FullRecompute one over identical (adversarial, non-monotone) report
    /// streams publish identical cuts at every refresh — including after
    /// the delta finder is torn down and re-seeded from the durable graph
    /// (coordinator restart).
    #[test]
    fn exact_finder_delta_matches_full_recompute(
        events in prop::collection::vec((commit_strategy(), 0..8u8), 1..60),
    ) {
        let meta_delta = setup();
        let meta_full = setup();
        let mut delta = ExactFinder::with_mode(meta_delta.clone(), CutEngineMode::Delta);
        let full = ExactFinder::with_mode(meta_full.clone(), CutEngineMode::FullRecompute);
        let mut versions = [0u64; SHARDS as usize];
        for (c, flags) in &events {
            versions[c.shard as usize] += 1;
            let v = versions[c.shard as usize];
            let deps: Vec<Token> = c
                .deps
                .iter()
                .filter(|(s, _)| *s != c.shard)
                .map(|(s, dv)| Token::new(ShardId(*s), Version(*dv)))
                .collect();
            let token = Token::new(ShardId(c.shard), Version(v));
            delta.report_commit(token, deps.clone()).unwrap();
            full.report_commit(token, deps).unwrap();
            if flags & 2 != 0 {
                // Coordinator restart: a fresh delta finder re-seeds its
                // engine from the durable graph table.
                delta = ExactFinder::with_mode(meta_delta.clone(), CutEngineMode::Delta);
            }
            if flags & 1 != 0 {
                delta.refresh().unwrap();
                full.refresh().unwrap();
                let dc = delta.current_cut().unwrap();
                let fc = full.current_cut().unwrap();
                prop_assert_eq!(&dc, &fc, "exact delta/full cuts diverged");
            }
        }
    }

    /// Hybrid-finder equivalence under the full event mix: monotone
    /// reports, persisted-version progress (which moves the approximate
    /// floor), coordinator crashes (which engage the lost ceiling), and
    /// interleaved refreshes. Delta and FullRecompute must stay
    /// cut-for-cut identical.
    #[test]
    fn hybrid_finder_delta_matches_full_recompute(
        events in prop::collection::vec((commit_strategy(), 0..16u8), 1..60),
    ) {
        let meta_delta = setup();
        let meta_full = setup();
        let delta = HybridFinder::with_mode(meta_delta.clone(), CutEngineMode::Delta);
        let full = HybridFinder::with_mode(meta_full.clone(), CutEngineMode::FullRecompute);
        let mut versions = [0u64; SHARDS as usize];
        for (c, flags) in &events {
            versions[c.shard as usize] += 1;
            let v = versions[c.shard as usize];
            let deps: Vec<Token> = c
                .deps
                .iter()
                .filter(|(s, _)| *s != c.shard)
                .map(|(s, dv)| Token::new(ShardId(*s), Version((*dv).min(v))))
                .collect();
            let token = Token::new(ShardId(c.shard), Version(v));
            delta.report_commit(token, deps.clone()).unwrap();
            full.report_commit(token, deps).unwrap();
            if flags & 4 != 0 {
                // Checkpoint progress: the approximate floor advances.
                meta_delta.update_persisted_version(ShardId(c.shard), Version(v)).unwrap();
                meta_full.update_persisted_version(ShardId(c.shard), Version(v)).unwrap();
            }
            if *flags == 11 {
                // Rare: coordinator crash wipes both in-memory graphs and
                // arms the lost ceiling from persisted versions.
                delta.simulate_coordinator_crash();
                full.simulate_coordinator_crash();
            }
            if flags & 1 != 0 {
                delta.refresh().unwrap();
                full.refresh().unwrap();
                let dc = delta.current_cut().unwrap();
                let fc = full.current_cut().unwrap();
                prop_assert_eq!(&dc, &fc, "hybrid delta/full cuts diverged");
            }
        }
    }
}
