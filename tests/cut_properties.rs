//! Property-based tests of the DPR-cut finders (Definition 3.1): every cut
//! any finder emits must be closed under the dependency relation, must
//! never regress, and — for monotone graphs, the ones the §3.2 version
//! clock actually produces — must make progress.

use dpr::core::{ShardId, Token, Version};
use dpr::metadata::{MetadataStore, SimulatedSqlStore};
use dpr::protocol::finder::cut_is_closed;
use dpr::protocol::{ApproximateFinder, DprFinder, ExactFinder, HybridFinder};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const SHARDS: u32 = 4;

/// A randomly generated commit event: shard, version bump, and dependency
/// versions on the other shards (clamped for monotonicity when requested).
#[derive(Debug, Clone)]
struct Commit {
    shard: u32,
    deps: Vec<(u32, u64)>,
}

fn commit_strategy() -> impl Strategy<Value = Commit> {
    (
        0..SHARDS,
        prop::collection::vec((0..SHARDS, 0..20u64), 0..3),
    )
        .prop_map(|(shard, deps)| Commit { shard, deps })
}

/// Replay commits against a finder with per-shard version counters.
/// `monotone` clamps dependency versions to ≤ the issuing token's version
/// (what the Lamport clock guarantees).
fn replay(
    finder: &dyn DprFinder,
    commits: &[Commit],
    monotone: bool,
) -> BTreeMap<Token, Vec<Token>> {
    let mut versions = [0u64; SHARDS as usize];
    let mut graph = BTreeMap::new();
    for c in commits {
        versions[c.shard as usize] += 1;
        let v = versions[c.shard as usize];
        let deps: Vec<Token> = c
            .deps
            .iter()
            .filter(|(s, _)| *s != c.shard)
            .map(|(s, dv)| {
                let dv = if monotone { (*dv).min(v) } else { *dv };
                Token::new(ShardId(*s), Version(dv))
            })
            .collect();
        let token = Token::new(ShardId(c.shard), Version(v));
        graph.insert(token, deps.clone());
        finder.report_commit(token, deps).unwrap();
    }
    graph
}

fn setup() -> Arc<SimulatedSqlStore> {
    let meta = Arc::new(SimulatedSqlStore::new());
    for s in 0..SHARDS {
        meta.register_worker(ShardId(s)).unwrap();
    }
    meta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_cut_is_always_closed(commits in prop::collection::vec(commit_strategy(), 1..60)) {
        let meta = setup();
        let finder = ExactFinder::new(meta);
        // Even for adversarial (non-monotone) graphs the cut must be valid.
        let graph = replay(&finder, &commits, false);
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        prop_assert!(cut_is_closed(&graph, &cut), "cut {cut:?} not closed for {graph:?}");
    }

    #[test]
    fn exact_cut_is_monotone_across_refreshes(commits in prop::collection::vec(commit_strategy(), 2..60)) {
        let meta = setup();
        let finder = ExactFinder::new(meta);
        let mut versions = [0u64; SHARDS as usize];
        let mut prev = finder.current_cut().unwrap();
        for c in &commits {
            versions[c.shard as usize] += 1;
            let v = versions[c.shard as usize];
            let deps: Vec<Token> = c
                .deps
                .iter()
                .filter(|(s, _)| *s != c.shard)
                .map(|(s, dv)| Token::new(ShardId(*s), Version((*dv).min(v))))
                .collect();
            finder.report_commit(Token::new(ShardId(c.shard), Version(v)), deps).unwrap();
            finder.refresh().unwrap();
            let cut = finder.current_cut().unwrap();
            for (shard, v) in &prev {
                prop_assert!(cut.get(shard).copied().unwrap_or(Version::ZERO) >= *v,
                    "cut regressed on {shard}");
            }
            prev = cut;
        }
    }

    #[test]
    fn monotone_graphs_eventually_commit_everything(commits in prop::collection::vec(commit_strategy(), 1..60)) {
        // With the version clock (monotone deps), once every shard has
        // committed its max version, the exact cut covers every token
        // (progress, §3.2).
        let meta = setup();
        let finder = ExactFinder::new(meta);
        let graph = replay(&finder, &commits, true);
        // Make sure every shard has committed up to the max version any dep
        // references (deps may point to not-yet-committed same-or-lower
        // versions of other shards).
        let mut max_needed = [0u64; SHARDS as usize];
        for (t, deps) in &graph {
            max_needed[t.shard.0 as usize] = max_needed[t.shard.0 as usize].max(t.version.0);
            for d in deps {
                max_needed[d.shard.0 as usize] = max_needed[d.shard.0 as usize].max(d.version.0);
            }
        }
        let mut versions: Vec<u64> = (0..SHARDS)
            .map(|s| graph.keys().filter(|t| t.shard.0 == s).map(|t| t.version.0).max().unwrap_or(0))
            .collect();
        for s in 0..SHARDS {
            while versions[s as usize] < max_needed[s as usize] {
                versions[s as usize] += 1;
                finder
                    .report_commit(Token::new(ShardId(s), Version(versions[s as usize])), vec![])
                    .unwrap();
            }
        }
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        for s in 0..SHARDS {
            prop_assert!(
                cut[&ShardId(s)] >= Version(versions[s as usize]),
                "shard {s} stuck at {:?} < {}",
                cut[&ShardId(s)],
                versions[s as usize]
            );
        }
    }

    #[test]
    fn approximate_cut_is_closed_for_monotone_graphs(commits in prop::collection::vec(commit_strategy(), 1..60)) {
        let meta = setup();
        let finder = ApproximateFinder::new(meta);
        let graph = replay(&finder, &commits, true);
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        prop_assert!(cut_is_closed(&graph, &cut));
    }

    #[test]
    fn hybrid_cut_closed_and_at_least_approximate(commits in prop::collection::vec(commit_strategy(), 1..60)) {
        let meta = setup();
        let hybrid = HybridFinder::new(meta.clone());
        let graph = replay(&hybrid, &commits, true);
        hybrid.refresh().unwrap();
        let hybrid_cut = hybrid.current_cut().unwrap();
        prop_assert!(cut_is_closed(&graph, &hybrid_cut));
        // The hybrid must dominate the plain Vmin floor.
        let vmin = meta.min_persisted_version().unwrap().unwrap_or(Version::ZERO);
        for s in 0..SHARDS {
            prop_assert!(hybrid_cut[&ShardId(s)] >= vmin);
        }
    }

    #[test]
    fn hybrid_survives_crash_with_closed_cut(
        before in prop::collection::vec(commit_strategy(), 1..30),
        after in prop::collection::vec(commit_strategy(), 1..30),
    ) {
        let meta = setup();
        let hybrid = HybridFinder::new(meta);
        let mut versions = [0u64; SHARDS as usize];
        let mut graph = BTreeMap::new();
        let feed = |commits: &[Commit], versions: &mut [u64; SHARDS as usize], graph: &mut BTreeMap<Token, Vec<Token>>| {
            for c in commits {
                versions[c.shard as usize] += 1;
                let v = versions[c.shard as usize];
                let deps: Vec<Token> = c
                    .deps
                    .iter()
                    .filter(|(s, _)| *s != c.shard)
                    .map(|(s, dv)| Token::new(ShardId(*s), Version((*dv).min(v))))
                    .collect();
                let token = Token::new(ShardId(c.shard), Version(v));
                graph.insert(token, deps.clone());
                hybrid.report_commit(token, deps).unwrap();
            }
        };
        feed(&before, &mut versions, &mut graph);
        hybrid.refresh().unwrap();
        hybrid.simulate_coordinator_crash();
        feed(&after, &mut versions, &mut graph);
        hybrid.refresh().unwrap();
        let cut = hybrid.current_cut().unwrap();
        prop_assert!(cut_is_closed(&graph, &cut), "post-crash cut {cut:?} not closed");
    }
}
