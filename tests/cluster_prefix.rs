//! End-to-end prefix consistency across shards: after a failure, the
//! session's reported surviving prefix matches exactly what is readable in
//! the recovered cluster — everything before the prefix is present, and
//! nothing after it is.

use dpr::cluster::{Cluster, ClusterConfig, ClusterOp, OpResult};
use dpr::core::{Key, Value};
use std::time::Duration;

/// Writes key `i` at op `i`, injects a failure mid-stream, and checks the
/// dichotomy around the surviving prefix.
#[test]
fn surviving_prefix_matches_recovered_state() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(25)),
        finder_interval: Duration::from_millis(2),
        ..ClusterConfig::default()
    })
    .unwrap();
    let mut session = cluster.open_session().unwrap();

    // Sequential single-op batches: strictly ordered SessionOrder, each op
    // writing a distinct key.
    let total = 400u64;
    for i in 0..total {
        session
            .execute(vec![ClusterOp::Upsert(
                Key::from_u64(i),
                Value::from_u64(i),
            )])
            .unwrap();
    }

    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();

    // Discover the failure and recover the session.
    let _ = session.execute(vec![ClusterOp::Read(Key::from_u64(0))]);
    let survived = session.recover(Duration::from_secs(10)).unwrap();
    assert!(survived <= total, "prefix bounded by issued ops");

    // The dichotomy: ops [0, survived) recovered; [survived, total) erased.
    // (The probing read may occupy a serial after `total`, it wrote nothing.)
    let reads: Vec<ClusterOp> = (0..total)
        .map(|i| ClusterOp::Read(Key::from_u64(i)))
        .collect();
    let results = session.execute(reads).unwrap();
    for (i, r) in results.iter().enumerate() {
        let expect_present = (i as u64) < survived;
        match r {
            OpResult::Value(Some(v)) => {
                assert!(
                    expect_present,
                    "op {i} beyond surviving prefix {survived} must be erased"
                );
                assert_eq!(v.as_u64(), Some(i as u64));
            }
            OpResult::Value(None) => {
                assert!(
                    !expect_present,
                    "op {i} inside surviving prefix {survived} must be present"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    cluster.shutdown();
}

/// Same dichotomy under the exact finder.
#[test]
fn surviving_prefix_with_exact_finder() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 2,
        checkpoint_interval: Some(Duration::from_millis(25)),
        finder_interval: Duration::from_millis(2),
        finder_mode: dpr::core::DprFinderMode::Exact,
        ..ClusterConfig::default()
    })
    .unwrap();
    let mut session = cluster.open_session().unwrap();
    let total = 200u64;
    for i in 0..total {
        session
            .execute(vec![ClusterOp::Upsert(
                Key::from_u64(i),
                Value::from_u64(i),
            )])
            .unwrap();
    }
    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();
    let _ = session.execute(vec![ClusterOp::Read(Key::from_u64(0))]);
    let survived = session.recover(Duration::from_secs(10)).unwrap();
    let reads: Vec<ClusterOp> = (0..total)
        .map(|i| ClusterOp::Read(Key::from_u64(i)))
        .collect();
    let results = session.execute(reads).unwrap();
    for (i, r) in results.iter().enumerate() {
        let present = matches!(r, OpResult::Value(Some(_)));
        assert_eq!(
            present,
            (i as u64) < survived,
            "op {i} vs surviving prefix {survived}"
        );
    }
    cluster.shutdown();
}
