//! Property-based test of the core guarantee: after a crash, a FASTER-style
//! shard recovers to a *prefix* of the session's operation sequence —
//! exactly the state produced by applying the first `n` operations, where
//! `n` is the commit point the checkpoint reported.

use dpr::core::{Key, SessionId, Value};
use dpr::faster::{FasterConfig, FasterKv};
use dpr::storage::{MemBlobStore, MemLogDevice};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Op {
    Upsert(u64, u64),
    Delete(u64),
    /// Request a checkpoint and wait for it.
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..32u64, 0..1000u64).prop_map(|(k, v)| Op::Upsert(k, v)),
        2 => (0..32u64).prop_map(Op::Delete),
        1 => Just(Op::Checkpoint),
    ]
}

/// Apply the first `n` data operations to a model map.
fn model_after(ops: &[Op], n: usize) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for op in ops.iter().filter(|o| !matches!(o, Op::Checkpoint)).take(n) {
        match op {
            Op::Upsert(k, v) => {
                m.insert(*k, *v);
            }
            Op::Delete(k) => {
                m.remove(k);
            }
            Op::Checkpoint => unreachable!(),
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crash_recovery_yields_exact_session_prefix(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let device = Arc::new(MemLogDevice::null());
        let blobs = Arc::new(MemBlobStore::new());
        let config = FasterConfig {
            index_buckets: 1 << 8,
            memory_budget_records: 1 << 20,
            auto_maintenance: false,
            ..FasterConfig::default()
        };
        {
            let kv = FasterKv::new(config.clone(), device.clone(), blobs.clone());
            let session = kv.start_session(SessionId(1));
            for op in &ops {
                match op {
                    Op::Upsert(k, v) => {
                        session.upsert(Key::from_u64(*k), Value::from_u64(*v)).unwrap();
                    }
                    Op::Delete(k) => {
                        session.delete(Key::from_u64(*k)).unwrap();
                    }
                    Op::Checkpoint => {
                        let target = kv.durable_version().next();
                        if kv.request_checkpoint(None) {
                            prop_assert!(kv.wait_for_durable(target, Duration::from_secs(10)));
                        }
                    }
                }
            }
        }
        // Crash: everything volatile is lost.
        device.crash();
        let kv = FasterKv::recover(config, device, blobs, None).unwrap();

        // The recovered state must equal the model applied up to the commit
        // point the manifest reports for our session.
        let n = kv
            .recovered_manifest()
            .and_then(|m| m.commit_points.get(&SessionId(1)).map(|cp| cp.serial as usize))
            .unwrap_or(0);
        let model = model_after(&ops, n);
        for k in 0..32u64 {
            let got = kv.get(&Key::from_u64(k)).unwrap().and_then(|v| v.as_u64());
            prop_assert_eq!(
                got,
                model.get(&k).copied(),
                "key {} after recovering prefix of {} data ops (manifest v{})",
                k,
                n,
                kv.durable_version().0
            );
        }
    }

    #[test]
    fn rollback_yields_exact_session_prefix(
        ops in prop::collection::vec(op_strategy(), 1..100),
        extra in prop::collection::vec(op_strategy(), 1..40),
    ) {
        // Run `ops` with checkpoints, then `extra` (uncommitted unless it
        // contains checkpoints), then roll back to the durable version. The
        // live store must equal the recovered-prefix model.
        let device = Arc::new(MemLogDevice::null());
        let blobs = Arc::new(MemBlobStore::new());
        let config = FasterConfig {
            index_buckets: 1 << 8,
            memory_budget_records: 1 << 20,
            auto_maintenance: false,
            ..FasterConfig::default()
        };
        let kv = FasterKv::new(config, device, blobs);
        let session = kv.start_session(SessionId(1));
        let mut committed_data_ops = 0usize;
        let mut data_ops = 0usize;
        let run = |op: &Op, kv: &Arc<FasterKv>, data_ops: &mut usize, committed: &mut usize| {
            match op {
                Op::Upsert(k, v) => {
                    session.upsert(Key::from_u64(*k), Value::from_u64(*v)).unwrap();
                    *data_ops += 1;
                }
                Op::Delete(k) => {
                    session.delete(Key::from_u64(*k)).unwrap();
                    *data_ops += 1;
                }
                Op::Checkpoint => {
                    let target = kv.durable_version().next();
                    if kv.request_checkpoint(None) {
                        assert!(kv.wait_for_durable(target, Duration::from_secs(10)));
                        *committed = *data_ops;
                    }
                }
            }
        };
        for op in &ops {
            run(op, &kv, &mut data_ops, &mut committed_data_ops);
        }
        for op in &extra {
            run(op, &kv, &mut data_ops, &mut committed_data_ops);
        }
        // Roll back everything uncommitted.
        kv.restore_sync(kv.durable_version(), Duration::from_secs(10)).unwrap();

        let all: Vec<Op> = ops.iter().chain(extra.iter()).cloned().collect();
        let model = model_after(&all, committed_data_ops);
        for k in 0..32u64 {
            let got = kv.get(&Key::from_u64(k)).unwrap().and_then(|v| v.as_u64());
            prop_assert_eq!(
                got,
                model.get(&k).copied(),
                "key {} after rollback to {} committed data ops",
                k,
                committed_data_ops
            );
        }
    }
}
