//! # dpr-cassandra
//!
//! A Cassandra-like single-node store: an in-memory *memtable* fronted by a
//! *commit log*. Built as the third system in the paper's
//! performance-vs-recoverability study (§7.6, Fig. 19), which exercises
//! Cassandra with its two commit-log modes:
//!
//! * `periodic` — writes return immediately; the commit log is fsynced on a
//!   timer (eventual recoverability);
//! * `group` — writes block until their commit-log entry is fsynced, with
//!   concurrent writers amortizing one fsync (synchronous recoverability /
//!   group commit).
//!
//! Replication is disabled, exactly as in the paper's configuration.

#![warn(missing_docs)]

use dpr_core::{Key, Result, Value};
use dpr_storage::LogDevice;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Commit-log durability mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitLogSync {
    /// Fsync on a timer; writes return before durability.
    Periodic,
    /// Writes wait for fsync; concurrent writers share one fsync.
    Group,
    /// No commit log at all (the "None" recoverability level).
    Off,
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct CassandraConfig {
    /// Commit-log mode.
    pub sync: CommitLogSync,
}

/// The memtable + commit-log store. Thread-safe; all writes are logged
/// before being applied (write-ahead).
///
/// ```
/// use dpr_cassandra::{CassandraConfig, CassandraStore, CommitLogSync};
/// use dpr_core::{Key, Value};
/// use dpr_storage::MemLogDevice;
/// use std::sync::Arc;
///
/// let store = CassandraStore::new(
///     CassandraConfig { sync: CommitLogSync::Group },
///     Arc::new(MemLogDevice::null()),
/// );
/// store.write(Key::from_u64(1), Some(Value::from_u64(9))).unwrap();
/// // Group mode returned only after the entry was fsynced:
/// assert_eq!(store.recover().unwrap(), 1);
/// ```
pub struct CassandraStore {
    memtable: RwLock<HashMap<Key, Value>>,
    commitlog: Arc<dyn LogDevice>,
    config: CassandraConfig,
    /// Serializes group-commit fsyncs so one flush covers many writers.
    flush_gate: Mutex<()>,
}

/// One commit-log entry: `key_len u32 | key | val_len u32 | val` (val_len =
/// u32::MAX encodes a delete).
fn encode_entry(key: &Key, value: Option<&Value>, out: &mut Vec<u8>) {
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    match value {
        Some(v) => {
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        None => out.extend_from_slice(&u32::MAX.to_le_bytes()),
    }
}

fn decode_entry(buf: &[u8]) -> Option<(Key, Option<Value>, usize)> {
    if buf.len() < 4 {
        return None;
    }
    let klen = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if buf.len() < 4 + klen + 4 {
        return None;
    }
    let key = Key(bytes::Bytes::copy_from_slice(&buf[4..4 + klen]));
    let vlen = u32::from_le_bytes(buf[4 + klen..8 + klen].try_into().unwrap());
    if vlen == u32::MAX {
        return Some((key, None, 8 + klen));
    }
    let vlen = vlen as usize;
    if buf.len() < 8 + klen + vlen {
        return None;
    }
    let value = Value(bytes::Bytes::copy_from_slice(
        &buf[8 + klen..8 + klen + vlen],
    ));
    Some((key, Some(value), 8 + klen + vlen))
}

impl CassandraStore {
    /// Create a store over the given commit-log device.
    #[must_use]
    pub fn new(config: CassandraConfig, commitlog: Arc<dyn LogDevice>) -> CassandraStore {
        CassandraStore {
            memtable: RwLock::new(HashMap::new()),
            commitlog,
            config,
            flush_gate: Mutex::new(()),
        }
    }

    /// Read a key.
    #[must_use]
    pub fn read(&self, key: &Key) -> Option<Value> {
        self.memtable.read().get(key).cloned()
    }

    /// Write (or delete, with `None`) a key, honoring the configured
    /// commit-log mode.
    pub fn write(&self, key: Key, value: Option<Value>) -> Result<()> {
        match self.config.sync {
            CommitLogSync::Off => {}
            CommitLogSync::Periodic => {
                let mut buf = Vec::new();
                encode_entry(&key, value.as_ref(), &mut buf);
                self.commitlog.append(&buf)?;
            }
            CommitLogSync::Group => {
                let mut buf = Vec::new();
                encode_entry(&key, value.as_ref(), &mut buf);
                let end = self.commitlog.append(&buf)? + buf.len() as u64;
                // Group commit: wait until our entry is durable; whoever
                // gets the gate performs the fsync for everyone behind it.
                while self.commitlog.durable_frontier() < end {
                    if let Some(_gate) = self.flush_gate.try_lock() {
                        if self.commitlog.durable_frontier() < end {
                            self.commitlog.flush()?;
                        }
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
        let mut table = self.memtable.write();
        match value {
            Some(v) => {
                table.insert(key, v);
            }
            None => {
                table.remove(&key);
            }
        }
        Ok(())
    }

    /// Timer-driven fsync for `periodic` mode.
    pub fn flush_commitlog(&self) -> Result<()> {
        self.commitlog.flush()?;
        Ok(())
    }

    /// Rebuild the memtable by replaying the durable commit-log prefix.
    pub fn recover(&self) -> Result<usize> {
        let durable = self.commitlog.durable_frontier();
        let mut table = HashMap::new();
        let mut offset = 0u64;
        let mut carry: Vec<u8> = Vec::new();
        let mut buf = vec![0u8; 1 << 16];
        let mut count = 0;
        while offset < durable {
            let want = ((durable - offset) as usize).min(buf.len());
            let n = self.commitlog.read(offset, &mut buf[..want])?;
            if n == 0 {
                break;
            }
            carry.extend_from_slice(&buf[..n]);
            offset += n as u64;
            let mut consumed = 0;
            while let Some((key, value, used)) = decode_entry(&carry[consumed..]) {
                consumed += used;
                count += 1;
                match value {
                    Some(v) => {
                        table.insert(key, v);
                    }
                    None => {
                        table.remove(&key);
                    }
                }
            }
            carry.drain(..consumed);
        }
        *self.memtable.write() = table;
        Ok(count)
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.memtable.read().len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.memtable.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_storage::MemLogDevice;

    fn store(sync: CommitLogSync) -> (CassandraStore, Arc<MemLogDevice>) {
        let dev = Arc::new(MemLogDevice::null());
        (
            CassandraStore::new(CassandraConfig { sync }, dev.clone()),
            dev,
        )
    }

    #[test]
    fn read_write_delete() {
        let (s, _) = store(CommitLogSync::Group);
        s.write(Key::from_u64(1), Some(Value::from_u64(10)))
            .unwrap();
        assert_eq!(s.read(&Key::from_u64(1)).unwrap().as_u64(), Some(10));
        s.write(Key::from_u64(1), None).unwrap();
        assert!(s.read(&Key::from_u64(1)).is_none());
    }

    #[test]
    fn group_mode_survives_crash() {
        let (s, dev) = store(CommitLogSync::Group);
        for i in 0..50u64 {
            s.write(Key::from_u64(i), Some(Value::from_u64(i))).unwrap();
        }
        dev.crash();
        let s2 = CassandraStore::new(
            CassandraConfig {
                sync: CommitLogSync::Group,
            },
            dev,
        );
        let replayed = s2.recover().unwrap();
        assert_eq!(replayed, 50, "every group-committed write recovered");
        assert_eq!(s2.len(), 50);
    }

    #[test]
    fn periodic_mode_loses_unflushed_tail() {
        let (s, dev) = store(CommitLogSync::Periodic);
        s.write(Key::from_u64(1), Some(Value::from_u64(1))).unwrap();
        s.flush_commitlog().unwrap();
        s.write(Key::from_u64(2), Some(Value::from_u64(2))).unwrap();
        dev.crash();
        let s2 = CassandraStore::new(
            CassandraConfig {
                sync: CommitLogSync::Periodic,
            },
            dev,
        );
        s2.recover().unwrap();
        assert_eq!(s2.len(), 1, "unflushed write lost");
    }

    #[test]
    fn off_mode_recovers_nothing() {
        let (s, dev) = store(CommitLogSync::Off);
        s.write(Key::from_u64(1), Some(Value::from_u64(1))).unwrap();
        dev.crash();
        let s2 = CassandraStore::new(
            CassandraConfig {
                sync: CommitLogSync::Off,
            },
            dev,
        );
        assert_eq!(s2.recover().unwrap(), 0);
        assert!(s2.is_empty());
    }

    #[test]
    fn deletes_replay_correctly() {
        let (s, _) = store(CommitLogSync::Group);
        s.write(Key::from_u64(1), Some(Value::from_u64(1))).unwrap();
        s.write(Key::from_u64(2), Some(Value::from_u64(2))).unwrap();
        s.write(Key::from_u64(1), None).unwrap();
        s.recover().unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.read(&Key::from_u64(1)).is_none());
        assert!(s.read(&Key::from_u64(2)).is_some());
    }

    #[test]
    fn concurrent_group_writers_all_durable() {
        let dev = Arc::new(MemLogDevice::null());
        let s = Arc::new(CassandraStore::new(
            CassandraConfig {
                sync: CommitLogSync::Group,
            },
            dev.clone(),
        ));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..200u64 {
                        s.write(Key::from_u64(t * 1000 + i), Some(Value::from_u64(i)))
                            .unwrap();
                    }
                });
            }
        });
        dev.crash();
        let s2 = CassandraStore::new(
            CassandraConfig {
                sync: CommitLogSync::Group,
            },
            dev,
        );
        assert_eq!(s2.recover().unwrap(), 1600, "no group-committed write lost");
        assert_eq!(s2.len(), 1600);
    }
}
