//! Zipfian rank generation (Gray et al., "Quickly generating
//! billion-record synthetic databases") — the same algorithm YCSB's
//! `ZipfianGenerator` uses, with optional rank scrambling so the hottest
//! keys are spread over the keyspace.

use rand::Rng;

/// A Zipfian generator over ranks `0..n` with skew `theta` (YCSB default
/// 0.99, which is also what the paper benchmarks).
///
/// ```
/// use dpr_ycsb::Zipfian;
/// use rand::SeedableRng;
///
/// let z = Zipfian::new(1000, 0.99);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(z.next(&mut rng) < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scramble: bool,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // O(n) once per generator; fine for laptop-scale keyspaces.
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Zipfian {
    /// Generator over `0..n` with skew `theta` (0 < theta < 1).
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty keyspace");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            scramble: false,
        }
    }

    /// Scrambled variant: ranks are hashed over the keyspace so hot keys are
    /// not clustered at low ids (YCSB's `ScrambledZipfianGenerator`).
    #[must_use]
    pub fn scrambled(n: u64, theta: f64) -> Self {
        let mut z = Self::new(n, theta);
        z.scramble = true;
        z
    }

    /// Number of distinct ranks.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw the next rank.
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5_f64.powf(self.theta) {
            1
        } else {
            ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scramble {
            // FNV-1a over the rank, folded back into the keyspace.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in rank.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h % self.n
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranks_stay_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed_toward_low_ranks() {
        let n = 10_000;
        let z = Zipfian::new(n, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; n as usize];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // Rank 0 should be by far the most popular (~1/zetan of mass).
        let max_idx = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .unwrap()
            .0;
        assert_eq!(max_idx, 0);
        // Top 1% of ranks should take a large share of draws.
        let top: u64 = counts[..(n as usize / 100)].iter().sum();
        assert!(
            top as f64 > 0.5 * draws as f64,
            "zipf(0.99) should put >50% of mass on top 1% (got {top}/{draws})"
        );
    }

    #[test]
    fn scrambled_spreads_the_hot_key() {
        let n = 10_000;
        let z = Zipfian::scrambled(n, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.next(&mut rng)).or_insert(0u64) += 1;
        }
        let (hot, _) = counts.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_ne!(*hot, 0, "hot key hashed away from rank 0");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        let _ = Zipfian::new(10, 1.5);
    }
}
