//! # dpr-ycsb
//!
//! YCSB-style workload generation (§7.1) and measurement utilities for the
//! benchmark harness: uniform and Zipfian key distributions (Gray et al.'s
//! algorithm, as in the YCSB core generators), read/blind-update mixes
//! (`R:BU` in the paper's notation), and latency/throughput recorders.

#![warn(missing_docs)]

pub mod stats;
pub mod workload;
pub mod zipf;

pub use stats::{LatencyHistogram, ThroughputSeries};
pub use workload::{
    BatchPlan, KeyDistribution, PlannedKind, PlannedOp, WorkloadGen, WorkloadOp, WorkloadSpec,
};
pub use zipf::Zipfian;
