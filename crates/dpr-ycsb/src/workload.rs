//! Workload specifications and operation streams.

use crate::zipf::Zipfian;
use dpr_core::{Key, Value};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Key access distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over the keyspace.
    Uniform,
    /// Zipfian with the given skew (paper uses θ = 0.99).
    Zipfian {
        /// Skew parameter.
        theta: f64,
    },
    /// YCSB-D style read-latest: reads are Zipfian-skewed toward the most
    /// recently inserted keys; the keyspace grows as inserts happen.
    Latest,
}

/// A workload description, in the paper's `R:BU` notation (fraction of
/// reads vs blind updates, §7.1).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of distinct keys.
    pub keys: u64,
    /// Fraction of reads in [0, 1]; the rest are blind updates.
    pub read_fraction: f64,
    /// Fraction of read-modify-writes carved out of the update share
    /// (YCSB-F style); usually 0.
    pub rmw_fraction: f64,
    /// Key distribution.
    pub distribution: KeyDistribution,
    /// Value payload size in bytes (paper: 8).
    pub value_size: usize,
}

impl WorkloadSpec {
    /// YCSB-A: 50:50 read/update.
    #[must_use]
    pub fn ycsb_a(keys: u64, distribution: KeyDistribution) -> Self {
        WorkloadSpec {
            keys,
            read_fraction: 0.5,
            rmw_fraction: 0.0,
            distribution,
            value_size: 8,
        }
    }

    /// YCSB-B: 95:5 read-mostly.
    #[must_use]
    pub fn ycsb_b(keys: u64, distribution: KeyDistribution) -> Self {
        WorkloadSpec {
            keys,
            read_fraction: 0.95,
            rmw_fraction: 0.0,
            distribution,
            value_size: 8,
        }
    }

    /// YCSB-C: read-only.
    #[must_use]
    pub fn ycsb_c(keys: u64, distribution: KeyDistribution) -> Self {
        WorkloadSpec {
            keys,
            read_fraction: 1.0,
            rmw_fraction: 0.0,
            distribution,
            value_size: 8,
        }
    }

    /// YCSB-F-style read-modify-write workload.
    #[must_use]
    pub fn ycsb_f(keys: u64, distribution: KeyDistribution) -> Self {
        WorkloadSpec {
            keys,
            read_fraction: 0.5,
            rmw_fraction: 0.5,
            distribution,
            value_size: 8,
        }
    }

    /// YCSB-D: 95% reads skewed to the latest inserts, 5% inserts.
    #[must_use]
    pub fn ycsb_d(initial_keys: u64) -> Self {
        WorkloadSpec {
            keys: initial_keys,
            read_fraction: 0.95,
            rmw_fraction: 0.0,
            distribution: KeyDistribution::Latest,
            value_size: 8,
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Point read.
    Read(Key),
    /// Blind update.
    Update(Key, Value),
    /// Read-modify-write (increment).
    Rmw(Key),
}

impl WorkloadOp {
    /// The key this op touches.
    #[must_use]
    pub fn key(&self) -> &Key {
        match self {
            WorkloadOp::Read(k) | WorkloadOp::Update(k, _) | WorkloadOp::Rmw(k) => k,
        }
    }
}

/// A seeded operation stream for one client thread.
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: StdRng,
    zipf: Option<Zipfian>,
    counter: u64,
    /// Insertion frontier for the `Latest` distribution (next key to
    /// insert; keys below exist).
    frontier: u64,
    /// Small skew generator over the recency window for `Latest`.
    latest_zipf: Option<Zipfian>,
}

impl WorkloadGen {
    /// Deterministic generator for `spec` with the given seed.
    #[must_use]
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let zipf = match spec.distribution {
            KeyDistribution::Uniform => None,
            KeyDistribution::Zipfian { theta } => Some(Zipfian::scrambled(spec.keys, theta)),
            KeyDistribution::Latest => None,
        };
        let latest_zipf = match spec.distribution {
            KeyDistribution::Latest => Some(Zipfian::new(1024, 0.99)),
            _ => None,
        };
        WorkloadGen {
            frontier: spec.keys,
            spec,
            rng: StdRng::seed_from_u64(seed),
            zipf,
            counter: 0,
            latest_zipf,
        }
    }

    /// The spec this generator follows.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draw the next key id.
    pub fn next_key_id(&mut self) -> u64 {
        match self.spec.distribution {
            KeyDistribution::Latest => {
                // Recency-skewed: rank 0 = the newest existing key.
                let window = self.frontier.clamp(1, 1024);
                let rank = self
                    .latest_zipf
                    .as_ref()
                    .expect("latest zipf")
                    .next(&mut self.rng)
                    % window;
                self.frontier - 1 - rank
            }
            _ => match &self.zipf {
                Some(z) => z.next(&mut self.rng),
                None => self.rng.gen_range(0..self.spec.keys),
            },
        }
    }

    /// The insertion frontier (`Latest` distribution): keys below exist.
    #[must_use]
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// Generate the next operation.
    pub fn next_op(&mut self) -> WorkloadOp {
        let roll: f64 = self.rng.gen();
        self.counter += 1;
        // Latest-distribution writes are INSERTS at the frontier.
        let key = if self.spec.distribution == KeyDistribution::Latest
            && roll >= self.spec.read_fraction + self.spec.rmw_fraction
        {
            let k = Key::from_u64(self.frontier);
            self.frontier += 1;
            k
        } else {
            Key::from_u64(self.next_key_id())
        };
        if roll < self.spec.read_fraction {
            WorkloadOp::Read(key)
        } else if roll < self.spec.read_fraction + self.spec.rmw_fraction {
            WorkloadOp::Rmw(key)
        } else {
            let mut payload = vec![0u8; self.spec.value_size.max(8)];
            payload[..8].copy_from_slice(&self.counter.to_be_bytes());
            WorkloadOp::Update(key, Value(bytes::Bytes::from(payload)))
        }
    }

    /// Generate a batch of `n` operations.
    pub fn next_batch(&mut self, n: usize) -> Vec<WorkloadOp> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// Refill `plan` with `n` operations, reusing its buffers — the
    /// allocation-free twin of [`WorkloadGen::next_batch`].
    ///
    /// Generation is split into structure-of-arrays passes instead of
    /// interleaved per-op draws: one pass rolls the op mix, one bulk-fills
    /// the randomness for the key draws (uniform keyspaces fill the whole
    /// batch with a single `rng.fill`), and one resolves key ids. Keys stay
    /// as raw `u64` ids so callers can materialise them into their own op
    /// types (this crate does not know the cluster's op enum) without
    /// copying; with small keys inlined by `dpr_core::Key`, the whole
    /// request path stays allocation-free.
    pub fn fill_plan(&mut self, plan: &mut BatchPlan, n: usize) {
        plan.slots.clear();
        plan.slots.reserve(n);
        // Pass 1: the op mix.
        for _ in 0..n {
            let roll: f64 = self.rng.gen();
            let kind = if roll < self.spec.read_fraction {
                PlannedKind::Read
            } else if roll < self.spec.read_fraction + self.spec.rmw_fraction {
                PlannedKind::Rmw
            } else {
                PlannedKind::Update
            };
            plan.slots.push(PlannedOp {
                kind,
                key_id: 0,
                counter: 0,
            });
        }
        // Pass 2: key ids. Uniform keyspaces draw their randomness in one
        // bulk fill; skewed ones fall back to per-slot draws.
        let uniform = matches!(self.spec.distribution, KeyDistribution::Uniform);
        if uniform {
            plan.raw.clear();
            plan.raw.resize(n * 8, 0);
            self.rng.fill_bytes(plan.raw.as_mut_slice());
        }
        for (i, slot) in plan.slots.iter_mut().enumerate() {
            if slot.kind == PlannedKind::Update && self.spec.distribution == KeyDistribution::Latest
            {
                // Latest-distribution writes are INSERTS at the frontier.
                slot.key_id = self.frontier;
                self.frontier += 1;
            } else if uniform {
                let raw = u64::from_le_bytes(plan.raw[i * 8..i * 8 + 8].try_into().unwrap());
                slot.key_id = raw % self.spec.keys;
            } else {
                slot.key_id = self.next_key_id();
            }
            if slot.kind == PlannedKind::Update {
                self.counter += 1;
                slot.counter = self.counter;
            }
        }
    }
}

/// Kind of a planned operation (see [`BatchPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedKind {
    /// Point read.
    Read,
    /// Blind update (payload derives from the slot's `counter`).
    Update,
    /// Read-modify-write (increment).
    Rmw,
}

/// One slot of a [`BatchPlan`]: the op's kind plus its raw key id, not yet
/// materialised into a key type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedOp {
    /// What to do.
    pub kind: PlannedKind,
    /// Key id in `[0, keys)` (or a frontier insert for `Latest`).
    pub key_id: u64,
    /// Monotonic per-generator counter, non-zero for updates; the
    /// conventional payload is its big-endian encoding.
    pub counter: u64,
}

/// A reusable batch of planned operations, refilled in bulk by
/// [`WorkloadGen::fill_plan`]. Holding one per client thread makes op
/// generation allocation-free in steady state.
#[derive(Default)]
pub struct BatchPlan {
    slots: Vec<PlannedOp>,
    /// Bulk-randomness scratch for uniform key draws.
    raw: Vec<u8>,
}

impl BatchPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        BatchPlan::default()
    }

    /// Number of planned ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The planned ops.
    #[must_use]
    pub fn ops(&self) -> &[PlannedOp] {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_spec() {
        let mut g = WorkloadGen::new(WorkloadSpec::ycsb_a(1000, KeyDistribution::Uniform), 1);
        let (mut reads, mut updates) = (0, 0);
        for _ in 0..10_000 {
            match g.next_op() {
                WorkloadOp::Read(_) => reads += 1,
                WorkloadOp::Update(..) => updates += 1,
                WorkloadOp::Rmw(_) => {}
            }
        }
        let frac = f64::from(reads) / f64::from(reads + updates);
        assert!((frac - 0.5).abs() < 0.03, "50:50 mix, got {frac}");
    }

    #[test]
    fn ycsb_c_is_read_only() {
        let mut g = WorkloadGen::new(
            WorkloadSpec::ycsb_c(100, KeyDistribution::Zipfian { theta: 0.99 }),
            1,
        );
        for _ in 0..1000 {
            assert!(matches!(g.next_op(), WorkloadOp::Read(_)));
        }
    }

    #[test]
    fn ycsb_f_generates_rmws() {
        let mut g = WorkloadGen::new(WorkloadSpec::ycsb_f(100, KeyDistribution::Uniform), 1);
        let rmws = (0..1000)
            .filter(|_| matches!(g.next_op(), WorkloadOp::Rmw(_)))
            .count();
        assert!(rmws > 300, "expected ~50% RMWs, got {rmws}");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let spec = WorkloadSpec::ycsb_a(1000, KeyDistribution::Zipfian { theta: 0.99 });
        let mut a = WorkloadGen::new(spec.clone(), 9);
        let mut b = WorkloadGen::new(spec, 9);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn keys_stay_in_keyspace() {
        let mut g = WorkloadGen::new(WorkloadSpec::ycsb_a(64, KeyDistribution::Uniform), 3);
        for _ in 0..1000 {
            let op = g.next_op();
            assert!(op.key().as_u64().unwrap() < 64);
        }
    }

    #[test]
    fn ycsb_d_reads_recent_and_inserts_at_frontier() {
        let mut g = WorkloadGen::new(WorkloadSpec::ycsb_d(1000), 5);
        let mut inserts = 0u64;
        let mut max_read = 0u64;
        for _ in 0..10_000 {
            match g.next_op() {
                WorkloadOp::Read(k) => {
                    let id = k.as_u64().unwrap();
                    assert!(id < g.frontier(), "reads hit existing keys only");
                    max_read = max_read.max(id);
                }
                WorkloadOp::Update(k, _) => {
                    inserts += 1;
                    assert_eq!(k.as_u64().unwrap(), g.frontier() - 1, "insert at frontier");
                }
                WorkloadOp::Rmw(_) => panic!("no RMWs in YCSB-D"),
            }
        }
        assert!(inserts > 300 && inserts < 700, "~5% inserts, got {inserts}");
        assert_eq!(g.frontier(), 1000 + inserts);
        assert!(max_read >= 1000, "reads follow the growing frontier");
    }

    #[test]
    fn ycsb_d_reads_are_recency_skewed() {
        let mut g = WorkloadGen::new(WorkloadSpec::ycsb_d(100_000), 5);
        let mut near = 0u64;
        let mut total = 0u64;
        for _ in 0..10_000 {
            if let WorkloadOp::Read(k) = g.next_op() {
                total += 1;
                if g.frontier() - k.as_u64().unwrap() <= 64 {
                    near += 1;
                }
            }
        }
        assert!(
            near as f64 > 0.5 * total as f64,
            "most reads within 64 of the frontier ({near}/{total})"
        );
    }

    #[test]
    fn batches_have_requested_size() {
        let mut g = WorkloadGen::new(WorkloadSpec::ycsb_b(100, KeyDistribution::Uniform), 3);
        assert_eq!(g.next_batch(64).len(), 64);
    }
    #[test]
    fn fill_plan_reuses_buffers_and_matches_mix() {
        let mut g = WorkloadGen::new(WorkloadSpec::ycsb_a(1000, KeyDistribution::Uniform), 7);
        let mut plan = BatchPlan::new();
        let (mut reads, mut updates) = (0u64, 0u64);
        for _ in 0..100 {
            g.fill_plan(&mut plan, 100);
            assert_eq!(plan.len(), 100);
            for op in plan.ops() {
                assert!(op.key_id < 1000);
                match op.kind {
                    PlannedKind::Read => {
                        reads += 1;
                        assert_eq!(op.counter, 0);
                    }
                    PlannedKind::Update => {
                        updates += 1;
                        assert!(op.counter > 0, "updates carry a payload counter");
                    }
                    PlannedKind::Rmw => {}
                }
            }
        }
        let frac = reads as f64 / (reads + updates) as f64;
        assert!((frac - 0.5).abs() < 0.03, "50:50 mix, got {frac}");
    }

    #[test]
    fn fill_plan_is_deterministic_per_seed() {
        let spec = WorkloadSpec::ycsb_b(512, KeyDistribution::Zipfian { theta: 0.99 });
        let mut a = WorkloadGen::new(spec.clone(), 11);
        let mut b = WorkloadGen::new(spec, 11);
        let (mut pa, mut pb) = (BatchPlan::new(), BatchPlan::new());
        for _ in 0..10 {
            a.fill_plan(&mut pa, 64);
            b.fill_plan(&mut pb, 64);
            assert_eq!(pa.ops(), pb.ops());
        }
    }

    #[test]
    fn fill_plan_latest_inserts_at_frontier() {
        let mut g = WorkloadGen::new(WorkloadSpec::ycsb_d(1000), 3);
        let mut plan = BatchPlan::new();
        g.fill_plan(&mut plan, 2000);
        let mut frontier = 1000u64;
        for op in plan.ops() {
            match op.kind {
                PlannedKind::Update => {
                    assert_eq!(op.key_id, frontier, "insert at frontier");
                    frontier += 1;
                }
                _ => assert!(op.key_id < frontier, "reads hit existing keys"),
            }
        }
        assert_eq!(g.frontier(), frontier);
    }
}
