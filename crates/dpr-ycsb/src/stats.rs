//! Measurement utilities: latency histograms and time-bucketed throughput.

use std::time::Duration;

/// A log-scaled latency histogram (HdrHistogram-style, coarse).
///
/// Buckets are `[2^i, 2^(i+1))` nanoseconds split into 16 linear
/// sub-buckets, giving ~6% relative resolution — plenty for the latency
/// distributions of Figs. 12 and 18.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

const SUB: usize = 16;
const EXPS: usize = 48;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; SUB * EXPS],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    fn index(nanos: u64) -> usize {
        if nanos < SUB as u64 {
            return nanos as usize;
        }
        let exp = 63 - nanos.leading_zeros() as usize; // floor(log2)
        let base = exp * SUB;
        let sub = ((nanos >> (exp.saturating_sub(4))) & (SUB as u64 - 1)) as usize;
        (base + sub).min(SUB * EXPS - 1)
    }

    fn bucket_value(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let exp = idx / SUB;
        let sub = idx % SUB;
        (1u64 << exp) + ((sub as u64) << exp.saturating_sub(4))
    }

    /// Record one sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::index(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_nanos / u128::from(self.count)) as u64)
    }

    /// Maximum recorded latency.
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The `p`-th percentile (0 < p ≤ 100), approximated to bucket
    /// resolution.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(Self::bucket_value(idx));
            }
        }
        self.max()
    }
}

/// Time-bucketed throughput counters (Fig. 16's 250 ms buckets).
#[derive(Debug, Clone)]
pub struct ThroughputSeries {
    bucket: Duration,
    counts: Vec<u64>,
}

impl ThroughputSeries {
    /// Series with the given bucket width.
    #[must_use]
    pub fn new(bucket: Duration) -> Self {
        ThroughputSeries {
            bucket,
            counts: Vec::new(),
        }
    }

    /// Record `n` events at elapsed time `at`.
    pub fn record_at(&mut self, at: Duration, n: u64) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Merge another series.
    pub fn merge(&mut self, other: &ThroughputSeries) {
        assert_eq!(self.bucket, other.bucket);
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// `(bucket_start_seconds, ops_per_second)` rows.
    #[must_use]
    pub fn rows(&self) -> Vec<(f64, f64)> {
        let w = self.bucket.as_secs_f64();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 * w, c as f64 / w))
            .collect()
    }

    /// Total events recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p99);
        // ~6% bucket resolution.
        assert!(p50 >= Duration::from_micros(400) && p50 <= Duration::from_micros(600));
        assert!(p99 >= Duration::from_micros(900));
        assert!(h.mean() >= Duration::from_micros(450));
        assert!(h.max() >= Duration::from_micros(990));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile(100.0) >= Duration::from_millis(90));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(99.0), Duration::ZERO);
    }

    #[test]
    fn throughput_series_buckets_and_rates() {
        let mut t = ThroughputSeries::new(Duration::from_millis(250));
        t.record_at(Duration::from_millis(100), 50);
        t.record_at(Duration::from_millis(200), 50);
        t.record_at(Duration::from_millis(300), 200);
        let rows = t.rows();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].1 - 400.0).abs() < 1e-9, "100 ops / 0.25 s");
        assert!((rows[1].1 - 800.0).abs() < 1e-9);
        assert_eq!(t.total(), 300);
    }

    #[test]
    fn throughput_merge() {
        let mut a = ThroughputSeries::new(Duration::from_millis(250));
        let mut b = ThroughputSeries::new(Duration::from_millis(250));
        a.record_at(Duration::from_millis(0), 1);
        b.record_at(Duration::from_millis(600), 2);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.rows().len(), 3);
    }
}
