//! The simulated fault-tolerant SQL metadata store.

use crate::recovery::RecoveryState;
use dpr_core::{DprError, Result, ShardId, Token, Version, WorldLine};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A DPR cut: one committed version per shard (Definition 3.1).
///
/// The tokens of the cut are `(shard, version)` pairs; restoring every shard
/// to its entry yields a prefix-consistent state for every client session.
pub type Cut = BTreeMap<ShardId, Version>;

/// The metadata operations DPR needs from its fault-tolerant store.
///
/// Mirrors Fig. 4: the *DPR table* (worker → persisted version, which also
/// acts as cluster membership per §5.3), the durable *precedence graph* for
/// the exact algorithm, the atomically updated *cut*, and the recovery /
/// world-line state the cluster manager drives.
pub trait MetadataStore: Send + Sync {
    // ---- DPR table / membership -------------------------------------------------

    /// Add a worker row (version 0). Adding a worker is "adding a row in the
    /// DPR table" (§5.3).
    fn register_worker(&self, shard: ShardId) -> Result<()>;

    /// Drop a worker row (the worker must have migrated its keys away).
    fn remove_worker(&self, shard: ShardId) -> Result<()>;

    /// Current membership.
    fn members(&self) -> Result<Vec<ShardId>>;

    /// `UPDATE dpr SET persistedVersion = v WHERE id = shard`.
    fn update_persisted_version(&self, shard: ShardId, version: Version) -> Result<()>;

    /// Group-committed form of [`MetadataStore::update_persisted_version`]:
    /// apply every `(shard, version)` row in **one** statement (one simulated
    /// round trip) instead of one per row — the §6/§3.4 metadata-write
    /// bottleneck fix. Transactional: if any shard is unregistered, no row is
    /// applied. The default implementation falls back to one statement per
    /// row for stores without multi-row updates.
    fn update_persisted_versions(&self, updates: &[(ShardId, Version)]) -> Result<()> {
        for &(shard, version) in updates {
            self.update_persisted_version(shard, version)?;
        }
        Ok(())
    }

    /// `SELECT min(persistedVersion) FROM dpr` — `None` when the table is
    /// empty.
    fn min_persisted_version(&self) -> Result<Option<Version>>;

    /// `SELECT max(persistedVersion) FROM dpr` — the `Vmax` used for
    /// fast-forwarding lagging shards (§3.4).
    fn max_persisted_version(&self) -> Result<Option<Version>>;

    /// Full DPR-table snapshot.
    fn persisted_versions(&self) -> Result<Cut>;

    // ---- precedence graph (exact algorithm) -------------------------------------

    /// Persist a committed version and its dependency edges.
    fn add_graph_version(&self, token: Token, deps: Vec<Token>) -> Result<()>;

    /// Group-committed form of [`MetadataStore::add_graph_version`]: insert
    /// every vertex in one statement. The default implementation falls back
    /// to one statement per vertex.
    fn add_graph_versions(&self, entries: Vec<(Token, Vec<Token>)>) -> Result<()> {
        for (token, deps) in entries {
            self.add_graph_version(token, deps)?;
        }
        Ok(())
    }

    /// Snapshot of the persisted precedence graph.
    fn graph_snapshot(&self) -> Result<Vec<(Token, Vec<Token>)>>;

    /// Garbage-collect graph vertices at or below the given cut.
    fn prune_graph_below(&self, cut: &Cut) -> Result<()>;

    // ---- guaranteed cut ----------------------------------------------------------

    /// Atomically replace the guaranteed cut ("UpdateCutAtomically", Fig. 4).
    /// Rejected while recovery is in progress (§4.1 halts DPR progress).
    fn update_cut_atomically(&self, cut: Cut) -> Result<()>;

    /// Read the guaranteed cut (never partially updated).
    fn read_cut(&self) -> Result<Cut>;

    /// Telemetry-only read of the DPR frontier: `(Vmax, published cut)` in
    /// one call, **exempt from statement accounting and injected latency**.
    ///
    /// The `statements/version` metric is the headline protocol-cost number
    /// (§6); observability reads that merely *watch* the protocol must not
    /// inflate it. The default implementation falls back to the charged
    /// reads for foreign stores; both built-in stores override it with an
    /// uncharged path.
    fn telemetry_frontier(&self) -> Result<(Option<Version>, Cut)> {
        Ok((self.max_persisted_version()?, self.read_cut()?))
    }

    // ---- world-line / recovery ----------------------------------------------------

    /// The cluster's current world-line.
    fn world_line(&self) -> Result<WorldLine>;

    /// Begin recovery: bump the world-line, freeze DPR progress, and record
    /// that every current member must roll back to the guaranteed cut.
    /// Nested failures re-enter recovery with a further-bumped world-line
    /// (§7.4 exercises exactly this).
    fn begin_recovery(&self) -> Result<RecoveryState>;

    /// A worker reports it has rolled back. Returns the updated state;
    /// recovery completes (and DPR progress resumes) when no workers remain.
    fn report_rollback_complete(&self, shard: ShardId) -> Result<RecoveryState>;

    /// The in-flight recovery, if any.
    fn recovery_in_progress(&self) -> Result<Option<RecoveryState>>;

    /// The cut frozen by the recovery that created `world_line` — the
    /// rollback target of the transition into it. `None` for world-line 0
    /// (no transition) or unknown world-lines.
    ///
    /// Version numbers are ambiguous across world-lines: after rollback,
    /// operations resume at `v_lost + 1`, so the *current* cut quickly
    /// covers version numbers the rollback purged. A client crossing
    /// world-lines must therefore constrain its surviving prefix by the
    /// frozen cut of every transition it crosses, not by the cut it reads
    /// after recovery completes (see `SessionHandle::recover`).
    fn recovery_cut(&self, world_line: WorldLine) -> Result<Option<Cut>>;
}

#[derive(Default)]
struct Tables {
    dpr: BTreeMap<ShardId, Version>,
    graph: BTreeMap<Token, Vec<Token>>,
    cut: Cut,
    world_line: WorldLine,
    recovery: Option<RecoveryState>,
    /// World-line → the cut frozen by the recovery that created it. Grows
    /// one entry per failure, so it stays tiny.
    recovery_cuts: BTreeMap<WorldLine, Cut>,
}

/// In-process linearizable table store with per-statement latency injection.
///
/// The paper's deployment keeps this state in Azure SQL; a single mutex over
/// the tables gives the same serializable semantics, and the optional
/// injected latency models the network round trip. The store itself is
/// assumed fault-tolerant (as in the paper), so it has no crash mode.
pub struct SimulatedSqlStore {
    tables: Mutex<Tables>,
    latency: Duration,
    statements: AtomicU64,
}

impl SimulatedSqlStore {
    /// Store with no injected latency (unit tests).
    #[must_use]
    pub fn new() -> Self {
        Self::with_latency(Duration::ZERO)
    }

    /// Store charging `latency` per statement.
    #[must_use]
    pub fn with_latency(latency: Duration) -> Self {
        SimulatedSqlStore {
            tables: Mutex::new(Tables::default()),
            latency,
            statements: AtomicU64::new(0),
        }
    }

    /// Total statements executed so far — the metadata write/read volume.
    /// Batched operations ([`MetadataStore::update_persisted_versions`],
    /// [`MetadataStore::add_graph_versions`]) count as **one** statement
    /// regardless of row count, which is exactly the saving they exist to
    /// provide.
    #[must_use]
    pub fn statement_count(&self) -> u64 {
        self.statements.load(Ordering::Relaxed)
    }

    fn charge(&self) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        crate::metrics::statements().inc();
        if !self.latency.is_zero() {
            let timer = crate::metrics::statement_latency().start_timer();
            std::thread::sleep(self.latency);
            drop(timer);
        }
    }
}

impl Default for SimulatedSqlStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MetadataStore for SimulatedSqlStore {
    fn register_worker(&self, shard: ShardId) -> Result<()> {
        self.charge();
        let mut t = self.tables.lock();
        t.dpr.entry(shard).or_insert(Version::ZERO);
        t.cut.entry(shard).or_insert(Version::ZERO);
        crate::metrics::dpr_table_rows().set(t.dpr.len() as i64);
        Ok(())
    }

    fn remove_worker(&self, shard: ShardId) -> Result<()> {
        self.charge();
        let mut t = self.tables.lock();
        t.dpr.remove(&shard);
        t.cut.remove(&shard);
        crate::metrics::dpr_table_rows().set(t.dpr.len() as i64);
        Ok(())
    }

    fn members(&self) -> Result<Vec<ShardId>> {
        self.charge();
        Ok(self.tables.lock().dpr.keys().copied().collect())
    }

    fn update_persisted_version(&self, shard: ShardId, version: Version) -> Result<()> {
        self.charge();
        let mut t = self.tables.lock();
        match t.dpr.get_mut(&shard) {
            Some(v) => {
                *v = (*v).max(version);
                Ok(())
            }
            None => Err(DprError::Metadata(format!("{shard} not registered"))),
        }
    }

    fn update_persisted_versions(&self, updates: &[(ShardId, Version)]) -> Result<()> {
        if updates.is_empty() {
            return Ok(());
        }
        // One multi-row `UPDATE ... FROM (VALUES ...)`: a single round trip
        // no matter how many rows ride in it.
        self.charge();
        let mut t = self.tables.lock();
        if let Some(&(missing, _)) = updates.iter().find(|(s, _)| !t.dpr.contains_key(s)) {
            // Transaction aborts: no row applied.
            return Err(DprError::Metadata(format!("{missing} not registered")));
        }
        for &(shard, version) in updates {
            let v = t.dpr.get_mut(&shard).expect("checked above");
            *v = (*v).max(version);
        }
        Ok(())
    }

    fn min_persisted_version(&self) -> Result<Option<Version>> {
        self.charge();
        Ok(self.tables.lock().dpr.values().min().copied())
    }

    fn max_persisted_version(&self) -> Result<Option<Version>> {
        self.charge();
        Ok(self.tables.lock().dpr.values().max().copied())
    }

    fn persisted_versions(&self) -> Result<Cut> {
        self.charge();
        Ok(self.tables.lock().dpr.clone())
    }

    fn add_graph_version(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        self.charge();
        let mut t = self.tables.lock();
        t.graph.insert(token, deps);
        crate::metrics::graph_rows().set(t.graph.len() as i64);
        Ok(())
    }

    fn add_graph_versions(&self, entries: Vec<(Token, Vec<Token>)>) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        // One multi-row INSERT.
        self.charge();
        let mut t = self.tables.lock();
        for (token, deps) in entries {
            t.graph.insert(token, deps);
        }
        crate::metrics::graph_rows().set(t.graph.len() as i64);
        Ok(())
    }

    fn graph_snapshot(&self) -> Result<Vec<(Token, Vec<Token>)>> {
        self.charge();
        Ok(self
            .tables
            .lock()
            .graph
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect())
    }

    fn prune_graph_below(&self, cut: &Cut) -> Result<()> {
        self.charge();
        let mut t = self.tables.lock();
        t.graph.retain(|token, _| {
            cut.get(&token.shard)
                .is_none_or(|&committed| token.version > committed)
        });
        crate::metrics::graph_rows().set(t.graph.len() as i64);
        Ok(())
    }

    fn update_cut_atomically(&self, cut: Cut) -> Result<()> {
        self.charge();
        let mut t = self.tables.lock();
        if t.recovery.is_some() {
            return Err(DprError::Recovering);
        }
        // The cut never regresses: a later cut dominates per-shard.
        for (shard, v) in cut {
            let entry = t.cut.entry(shard).or_insert(Version::ZERO);
            *entry = (*entry).max(v);
        }
        Ok(())
    }

    fn read_cut(&self) -> Result<Cut> {
        self.charge();
        Ok(self.tables.lock().cut.clone())
    }

    fn telemetry_frontier(&self) -> Result<(Option<Version>, Cut)> {
        // Telemetry-only: no charge, no injected latency — this read does
        // not model a protocol round trip.
        let t = self.tables.lock();
        Ok((t.dpr.values().max().copied(), t.cut.clone()))
    }

    fn world_line(&self) -> Result<WorldLine> {
        self.charge();
        Ok(self.tables.lock().world_line)
    }

    fn begin_recovery(&self) -> Result<RecoveryState> {
        self.charge();
        let mut t = self.tables.lock();
        t.world_line = t.world_line.next();
        let state = RecoveryState {
            world_line: t.world_line,
            cut: t.cut.clone(),
            pending: t.dpr.keys().copied().collect::<BTreeSet<_>>(),
        };
        t.recovery = Some(state.clone());
        let frozen = state.cut.clone();
        t.recovery_cuts.insert(state.world_line, frozen);
        Ok(state)
    }

    fn report_rollback_complete(&self, shard: ShardId) -> Result<RecoveryState> {
        self.charge();
        let mut t = self.tables.lock();
        let Some(rec) = t.recovery.as_mut() else {
            return Err(DprError::Metadata("no recovery in progress".into()));
        };
        rec.pending.remove(&shard);
        let state = rec.clone();
        if state.complete() {
            t.recovery = None;
        }
        Ok(state)
    }

    fn recovery_in_progress(&self) -> Result<Option<RecoveryState>> {
        self.charge();
        Ok(self.tables.lock().recovery.clone())
    }

    fn recovery_cut(&self, world_line: WorldLine) -> Result<Option<Cut>> {
        self.charge();
        Ok(self.tables.lock().recovery_cuts.get(&world_line).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: u32) -> ShardId {
        ShardId(i)
    }

    #[test]
    fn dpr_table_min_max() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        s.register_worker(shard(1)).unwrap();
        s.update_persisted_version(shard(0), Version(3)).unwrap();
        s.update_persisted_version(shard(1), Version(5)).unwrap();
        assert_eq!(s.min_persisted_version().unwrap(), Some(Version(3)));
        assert_eq!(s.max_persisted_version().unwrap(), Some(Version(5)));
    }

    #[test]
    fn persisted_version_never_regresses() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        s.update_persisted_version(shard(0), Version(9)).unwrap();
        s.update_persisted_version(shard(0), Version(4)).unwrap();
        assert_eq!(s.min_persisted_version().unwrap(), Some(Version(9)));
    }

    #[test]
    fn update_unregistered_worker_fails() {
        let s = SimulatedSqlStore::new();
        assert!(s.update_persisted_version(shard(9), Version(1)).is_err());
    }

    #[test]
    fn batched_update_is_one_statement() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        s.register_worker(shard(1)).unwrap();
        let before = s.statement_count();
        s.update_persisted_versions(&[(shard(0), Version(4)), (shard(1), Version(7))])
            .unwrap();
        assert_eq!(s.statement_count() - before, 1, "one round trip for 2 rows");
        assert_eq!(s.max_persisted_version().unwrap(), Some(Version(7)));
        assert_eq!(s.min_persisted_version().unwrap(), Some(Version(4)));
        // Still monotone per row.
        s.update_persisted_versions(&[(shard(1), Version(2))])
            .unwrap();
        assert_eq!(s.max_persisted_version().unwrap(), Some(Version(7)));
    }

    #[test]
    fn batched_update_aborts_atomically_on_unregistered_shard() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        assert!(s
            .update_persisted_versions(&[(shard(0), Version(4)), (shard(9), Version(1))])
            .is_err());
        // The whole transaction rolled back: shard 0 untouched.
        assert_eq!(s.min_persisted_version().unwrap(), Some(Version::ZERO));
    }

    #[test]
    fn batched_graph_insert_is_one_statement() {
        let s = SimulatedSqlStore::new();
        let t = |sh: u32, v: u64| Token::new(shard(sh), Version(v));
        let before = s.statement_count();
        s.add_graph_versions(vec![(t(0, 1), vec![]), (t(1, 1), vec![t(0, 1)])])
            .unwrap();
        assert_eq!(s.statement_count() - before, 1);
        assert_eq!(s.graph_snapshot().unwrap().len(), 2);
        // Empty batches are free.
        let before = s.statement_count();
        s.add_graph_versions(Vec::new()).unwrap();
        s.update_persisted_versions(&[]).unwrap();
        assert_eq!(s.statement_count(), before);
    }

    #[test]
    fn telemetry_frontier_is_uncharged() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        s.update_persisted_version(shard(0), Version(5)).unwrap();
        s.update_cut_atomically(Cut::from([(shard(0), Version(3))]))
            .unwrap();
        let before = s.statement_count();
        let (vmax, cut) = s.telemetry_frontier().unwrap();
        assert_eq!(s.statement_count(), before, "telemetry reads are free");
        assert_eq!(vmax, Some(Version(5)));
        assert_eq!(cut[&shard(0)], Version(3));
    }

    #[test]
    fn cut_updates_are_monotone() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        s.update_cut_atomically(Cut::from([(shard(0), Version(4))]))
            .unwrap();
        s.update_cut_atomically(Cut::from([(shard(0), Version(2))]))
            .unwrap();
        assert_eq!(s.read_cut().unwrap()[&shard(0)], Version(4));
    }

    #[test]
    fn recovery_halts_cut_progress_and_resumes() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        s.register_worker(shard(1)).unwrap();
        let rec = s.begin_recovery().unwrap();
        assert_eq!(rec.world_line, WorldLine(1));
        assert_eq!(rec.pending.len(), 2);
        assert!(matches!(
            s.update_cut_atomically(Cut::new()),
            Err(DprError::Recovering)
        ));
        let st = s.report_rollback_complete(shard(0)).unwrap();
        assert!(!st.complete());
        let st = s.report_rollback_complete(shard(1)).unwrap();
        assert!(st.complete());
        assert!(s.recovery_in_progress().unwrap().is_none());
        s.update_cut_atomically(Cut::from([(shard(0), Version(1))]))
            .unwrap();
    }

    #[test]
    fn recovery_cut_is_retained_per_world_line() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        s.update_cut_atomically(Cut::from([(shard(0), Version(4))]))
            .unwrap();
        assert_eq!(s.recovery_cut(WorldLine(0)).unwrap(), None);
        let rec = s.begin_recovery().unwrap();
        s.report_rollback_complete(shard(0)).unwrap();
        // The cut advances again after recovery...
        s.update_cut_atomically(Cut::from([(shard(0), Version(9))]))
            .unwrap();
        // ...but the transition's frozen cut stays pinned at the rollback
        // target, so late-recovering clients can still compute a sound
        // surviving prefix.
        assert_eq!(
            s.recovery_cut(rec.world_line).unwrap(),
            Some(Cut::from([(shard(0), Version(4))]))
        );
    }

    #[test]
    fn nested_failure_bumps_world_line_again() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        let r1 = s.begin_recovery().unwrap();
        // Second failure while the first recovery is still pending.
        let r2 = s.begin_recovery().unwrap();
        assert_eq!(r2.world_line, r1.world_line.next());
        assert_eq!(r2.pending.len(), 1);
    }

    #[test]
    fn graph_prune_respects_cut() {
        let s = SimulatedSqlStore::new();
        let t = |sh: u32, v: u64| Token::new(shard(sh), Version(v));
        s.add_graph_version(t(0, 1), vec![]).unwrap();
        s.add_graph_version(t(0, 2), vec![t(1, 1)]).unwrap();
        s.add_graph_version(t(1, 1), vec![]).unwrap();
        let cut = Cut::from([(shard(0), Version(1)), (shard(1), Version(1))]);
        s.prune_graph_below(&cut).unwrap();
        let g = s.graph_snapshot().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].0, t(0, 2));
    }

    #[test]
    fn membership_add_remove() {
        let s = SimulatedSqlStore::new();
        s.register_worker(shard(0)).unwrap();
        s.register_worker(shard(1)).unwrap();
        assert_eq!(s.members().unwrap().len(), 2);
        s.remove_worker(shard(0)).unwrap();
        assert_eq!(s.members().unwrap(), vec![shard(1)]);
        // min over the remaining member only
        s.update_persisted_version(shard(1), Version(2)).unwrap();
        assert_eq!(s.min_persisted_version().unwrap(), Some(Version(2)));
    }
}
