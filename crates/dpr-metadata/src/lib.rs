//! # dpr-metadata
//!
//! The fault-tolerant shared metadata store that DPR deployments coordinate
//! through (§3.3, §5.3). The paper uses an Azure SQL database; this crate
//! provides [`SimulatedSqlStore`], a linearizable in-process table store with
//! injected per-statement latency, exposing exactly the state the paper
//! keeps there:
//!
//! * the **DPR table** mapping each worker to its latest persisted version —
//!   including the two statements of Fig. 4 (`UPDATE dpr SET
//!   persistedVersion = v WHERE id = x` and `SELECT min(persistedVersion)
//!   FROM dpr`) — which doubles as the source of truth for cluster
//!   membership (§5.3);
//! * the **precedence-graph table** used by the exact cut-finding algorithm;
//! * the current guaranteed **DPR cut** (updated atomically, never partially
//!   read);
//! * **world-line / recovery state** driven by the cluster manager (§4);
//! * the **ownership table** mapping virtual partitions to workers, with
//!   leases (§5.3).
//!
//! All mutation goes through one logical lock, mirroring the serializable
//! ACID database the paper assumes; latency is charged *outside* the lock so
//! concurrent callers model independent round trips to a remote database.

#![warn(missing_docs)]

mod metrics;
pub mod ownership;
pub mod partitioned;
pub mod recovery;
pub mod store;

pub use ownership::{OwnershipEntry, OwnershipTable, Partitioner, VirtualPartition};
pub use partitioned::PartitionedSqlStore;
pub use recovery::RecoveryState;
pub use store::{Cut, MetadataStore, SimulatedSqlStore};
