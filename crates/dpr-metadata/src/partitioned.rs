//! Partitioned metadata store: [`SimulatedSqlStore`](crate::SimulatedSqlStore)'s single
//! `Mutex<Tables>` sharded into independently locked partitions.
//!
//! The paper's §6 scalability argument requires the metadata plane to stay
//! off the critical path as shard counts grow; a single mutex over every
//! table serializes all DPR-table writes, graph inserts, and cut reads
//! behind one cache line. [`PartitionedSqlStore`] keys the DPR table, the
//! precedence graph, and the published cut by `shard % partitions`, so
//! reports from disjoint shard groups touch disjoint locks (the same move
//! as a partitioned SQL table with per-partition row locks).
//!
//! Consistency is preserved where DPR needs it:
//!
//! * **Cut atomicity.** The published cut lives as per-partition slices, so
//!   a naive reader could observe partition 0's slice from a new cut and
//!   partition 1's from an old one — a *torn cut* that is not downward
//!   closed even though both source cuts were. A seqlock (`cut_seq`)
//!   prevents this: cut writers serialize on the control lock, bump the
//!   sequence to odd, write every slice, and bump it back to even; readers
//!   retry whenever the sequence is odd or changes across their scan.
//!   `read_cut` therefore always returns some cut that was wholly published.
//! * **Transactional batches.** Group-committed writes
//!   ([`MetadataStore::update_persisted_versions`],
//!   [`MetadataStore::add_graph_versions`]) lock every touched partition in
//!   ascending index order (deadlock-free), validate, then apply — an abort
//!   leaves no partition modified, exactly like the monolithic store.
//! * **Conservative aggregates.** `min`/`max`/`persisted_versions` scan
//!   partitions one lock at a time. Because persisted versions are
//!   monotone, a racing writer can only *raise* rows after the scan passed
//!   them, so the returned minimum is ≤ the true post-scan minimum — safe
//!   for cut computation, which only ever uses it as a floor.
//! * **Recovery / world-line state** is rare and global, so it stays under
//!   one small control lock; cut writers hold it too, which keeps
//!   `begin_recovery`'s frozen cut mutually exclusive with cut publication
//!   (no cut can land between the freeze and the halt).
//!
//! Statement accounting: like the monolithic store, one *charged* statement
//! per logical operation (a batch is one round trip no matter how many
//! partitions it touches). Per-partition touch counters
//! ([`PartitionedSqlStore::partition_statement_counts`]) additionally
//! record how evenly load spreads — the `meta_scaling` bench reports both.

use crate::recovery::RecoveryState;
use crate::store::{Cut, MetadataStore};
use dpr_core::{DprError, Result, ShardId, Token, Version, WorldLine};
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

#[derive(Default)]
struct PartitionTables {
    dpr: BTreeMap<ShardId, Version>,
    graph: BTreeMap<Token, Vec<Token>>,
    /// This partition's slice of the published cut. Only written under the
    /// control lock with the seqlock odd (see module docs).
    cut: Cut,
}

/// One metadata partition: its own lock, its own touch counter. Aligned to
/// two cache lines so neighbouring partitions never false-share.
#[repr(align(128))]
struct Partition {
    tables: Mutex<PartitionTables>,
    /// Logical statements that touched this partition. A cross-partition
    /// batch bumps several of these but is *charged* globally as one.
    touched: AtomicU64,
}

impl Default for Partition {
    fn default() -> Self {
        Partition {
            tables: Mutex::new(PartitionTables::default()),
            touched: AtomicU64::new(0),
        }
    }
}

/// Rare global state: world-line, in-flight recovery, frozen recovery cuts.
/// Also serializes all cut writers (see module docs).
#[derive(Default)]
struct Control {
    world_line: WorldLine,
    recovery: Option<RecoveryState>,
    recovery_cuts: BTreeMap<WorldLine, Cut>,
}

/// Partitioned in-process metadata store (see module docs).
///
/// Implements [`MetadataStore`] with identical semantics to
/// [`SimulatedSqlStore`]; the finders and cluster are oblivious to which one
/// they run against.
///
/// [`SimulatedSqlStore`]: crate::store::SimulatedSqlStore
pub struct PartitionedSqlStore {
    partitions: Box<[Partition]>,
    control: Mutex<Control>,
    /// Seqlock generation for the published cut: odd while a writer is
    /// mid-update, even otherwise. Readers retry on odd or on a change
    /// across their scan.
    cut_seq: AtomicU64,
    latency: Duration,
    statements: AtomicU64,
    dpr_rows: AtomicI64,
    graph_rows: AtomicI64,
}

impl PartitionedSqlStore {
    /// Store with `partitions` independent metadata partitions and no
    /// injected latency. `partitions` is clamped to at least 1.
    #[must_use]
    pub fn new(partitions: usize) -> Self {
        Self::with_latency(partitions, Duration::ZERO)
    }

    /// Store with `partitions` partitions, charging `latency` per statement.
    #[must_use]
    pub fn with_latency(partitions: usize, latency: Duration) -> Self {
        let n = partitions.max(1);
        PartitionedSqlStore {
            partitions: (0..n).map(|_| Partition::default()).collect(),
            control: Mutex::new(Control::default()),
            cut_seq: AtomicU64::new(0),
            latency,
            statements: AtomicU64::new(0),
            dpr_rows: AtomicI64::new(0),
            graph_rows: AtomicI64::new(0),
        }
    }

    /// Number of metadata partitions.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total charged statements — same semantics as
    /// [`SimulatedSqlStore::statement_count`]: batched operations count as
    /// one statement regardless of row or partition count.
    ///
    /// [`SimulatedSqlStore::statement_count`]:
    ///     crate::store::SimulatedSqlStore::statement_count
    #[must_use]
    pub fn statement_count(&self) -> u64 {
        self.statements.load(Ordering::Relaxed)
    }

    /// Per-partition touch counts (how many logical statements reached each
    /// partition) — the load-balance signal for the `meta_scaling` bench.
    #[must_use]
    pub fn partition_statement_counts(&self) -> Vec<u64> {
        self.partitions
            .iter()
            .map(|p| p.touched.load(Ordering::Relaxed))
            .collect()
    }

    fn part_of(&self, shard: ShardId) -> usize {
        shard.0 as usize % self.partitions.len()
    }

    fn charge(&self) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        crate::metrics::statements().inc();
        if !self.latency.is_zero() {
            let timer = crate::metrics::statement_latency().start_timer();
            std::thread::sleep(self.latency);
            drop(timer);
        }
    }

    fn touch(&self, partition: usize) {
        self.partitions[partition]
            .touched
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Lock every partition in `touched` (sorted, deduped by the caller) in
    /// ascending index order — the global lock order that keeps
    /// multi-partition transactions deadlock-free.
    fn lock_ascending<'a>(
        &'a self,
        touched: &[usize],
    ) -> BTreeMap<usize, MutexGuard<'a, PartitionTables>> {
        touched
            .iter()
            .map(|&p| (p, self.partitions[p].tables.lock()))
            .collect()
    }

    fn touched_partitions(&self, shards: impl Iterator<Item = ShardId>) -> Vec<usize> {
        let mut touched: Vec<usize> = shards.map(|s| self.part_of(s)).collect();
        touched.sort_unstable();
        touched.dedup();
        for &p in &touched {
            self.touch(p);
        }
        touched
    }

    /// Merge every partition's cut slice, one lock at a time. Callers that
    /// need cross-partition atomicity must wrap this in the seqlock reader
    /// loop or hold the control lock (which excludes all cut writers).
    fn collect_cut_slices(&self) -> Cut {
        let mut cut = Cut::new();
        for p in self.partitions.iter() {
            for (&shard, &v) in &p.tables.lock().cut {
                cut.insert(shard, v);
            }
        }
        cut
    }
}

impl MetadataStore for PartitionedSqlStore {
    fn register_worker(&self, shard: ShardId) -> Result<()> {
        self.charge();
        let p = self.part_of(shard);
        self.touch(p);
        // Membership changes write a cut slice, so they serialize with cut
        // writers (control lock) and run under the seqlock like any other
        // cut write.
        let _ctl = self.control.lock();
        self.cut_seq.fetch_add(1, Ordering::AcqRel);
        {
            let mut t = self.partitions[p].tables.lock();
            if !t.dpr.contains_key(&shard) {
                self.dpr_rows.fetch_add(1, Ordering::Relaxed);
            }
            t.dpr.entry(shard).or_insert(Version::ZERO);
            t.cut.entry(shard).or_insert(Version::ZERO);
        }
        self.cut_seq.fetch_add(1, Ordering::AcqRel);
        crate::metrics::dpr_table_rows().set(self.dpr_rows.load(Ordering::Relaxed));
        Ok(())
    }

    fn remove_worker(&self, shard: ShardId) -> Result<()> {
        self.charge();
        let p = self.part_of(shard);
        self.touch(p);
        let _ctl = self.control.lock();
        self.cut_seq.fetch_add(1, Ordering::AcqRel);
        {
            let mut t = self.partitions[p].tables.lock();
            if t.dpr.remove(&shard).is_some() {
                self.dpr_rows.fetch_sub(1, Ordering::Relaxed);
            }
            t.cut.remove(&shard);
        }
        self.cut_seq.fetch_add(1, Ordering::AcqRel);
        crate::metrics::dpr_table_rows().set(self.dpr_rows.load(Ordering::Relaxed));
        Ok(())
    }

    fn members(&self) -> Result<Vec<ShardId>> {
        self.charge();
        let mut members = Vec::new();
        for p in self.partitions.iter() {
            members.extend(p.tables.lock().dpr.keys().copied());
        }
        members.sort_unstable();
        Ok(members)
    }

    fn update_persisted_version(&self, shard: ShardId, version: Version) -> Result<()> {
        self.charge();
        let p = self.part_of(shard);
        self.touch(p);
        let mut t = self.partitions[p].tables.lock();
        match t.dpr.get_mut(&shard) {
            Some(v) => {
                *v = (*v).max(version);
                Ok(())
            }
            None => Err(DprError::Metadata(format!("{shard} not registered"))),
        }
    }

    fn update_persisted_versions(&self, updates: &[(ShardId, Version)]) -> Result<()> {
        if updates.is_empty() {
            return Ok(());
        }
        self.charge();
        let touched = self.touched_partitions(updates.iter().map(|&(s, _)| s));
        let mut guards = self.lock_ascending(&touched);
        // Validate the whole batch before touching any row: an abort must
        // leave every partition unmodified (transactional semantics).
        if let Some(&(missing, _)) = updates
            .iter()
            .find(|&&(s, _)| !guards[&self.part_of(s)].dpr.contains_key(&s))
        {
            return Err(DprError::Metadata(format!("{missing} not registered")));
        }
        for &(shard, version) in updates {
            let g = guards
                .get_mut(&self.part_of(shard))
                .expect("partition locked above");
            let v = g.dpr.get_mut(&shard).expect("checked above");
            *v = (*v).max(version);
        }
        Ok(())
    }

    fn min_persisted_version(&self) -> Result<Option<Version>> {
        self.charge();
        // Partition-at-a-time scan: conservative under races because rows
        // only ever rise (see module docs).
        let mut min = None;
        for p in self.partitions.iter() {
            if let Some(&v) = p.tables.lock().dpr.values().min() {
                min = Some(min.map_or(v, |m: Version| m.min(v)));
            }
        }
        Ok(min)
    }

    fn max_persisted_version(&self) -> Result<Option<Version>> {
        self.charge();
        let mut max = None;
        for p in self.partitions.iter() {
            if let Some(&v) = p.tables.lock().dpr.values().max() {
                max = Some(max.map_or(v, |m: Version| m.max(v)));
            }
        }
        Ok(max)
    }

    fn persisted_versions(&self) -> Result<Cut> {
        self.charge();
        let mut cut = Cut::new();
        for p in self.partitions.iter() {
            for (&shard, &v) in &p.tables.lock().dpr {
                cut.insert(shard, v);
            }
        }
        Ok(cut)
    }

    fn add_graph_version(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        self.charge();
        let p = self.part_of(token.shard);
        self.touch(p);
        let mut t = self.partitions[p].tables.lock();
        if t.graph.insert(token, deps).is_none() {
            self.graph_rows.fetch_add(1, Ordering::Relaxed);
        }
        drop(t);
        crate::metrics::graph_rows().set(self.graph_rows.load(Ordering::Relaxed));
        Ok(())
    }

    fn add_graph_versions(&self, entries: Vec<(Token, Vec<Token>)>) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        self.charge();
        let touched = self.touched_partitions(entries.iter().map(|(t, _)| t.shard));
        let mut guards = self.lock_ascending(&touched);
        let mut added = 0i64;
        for (token, deps) in entries {
            let g = guards
                .get_mut(&self.part_of(token.shard))
                .expect("partition locked above");
            if g.graph.insert(token, deps).is_none() {
                added += 1;
            }
        }
        drop(guards);
        self.graph_rows.fetch_add(added, Ordering::Relaxed);
        crate::metrics::graph_rows().set(self.graph_rows.load(Ordering::Relaxed));
        Ok(())
    }

    fn graph_snapshot(&self) -> Result<Vec<(Token, Vec<Token>)>> {
        self.charge();
        let mut snap = Vec::new();
        for p in self.partitions.iter() {
            snap.extend(p.tables.lock().graph.iter().map(|(k, v)| (*k, v.clone())));
        }
        snap.sort_unstable_by_key(|&(t, _)| t);
        Ok(snap)
    }

    fn prune_graph_below(&self, cut: &Cut) -> Result<()> {
        self.charge();
        let mut removed = 0i64;
        for p in self.partitions.iter() {
            let mut t = p.tables.lock();
            let before = t.graph.len();
            t.graph.retain(|token, _| {
                cut.get(&token.shard)
                    .is_none_or(|&committed| token.version > committed)
            });
            removed += (before - t.graph.len()) as i64;
        }
        self.graph_rows.fetch_sub(removed, Ordering::Relaxed);
        crate::metrics::graph_rows().set(self.graph_rows.load(Ordering::Relaxed));
        Ok(())
    }

    fn update_cut_atomically(&self, cut: Cut) -> Result<()> {
        self.charge();
        let ctl = self.control.lock();
        if ctl.recovery.is_some() {
            return Err(DprError::Recovering);
        }
        // Seqlock writer: readers scanning the slices while the sequence is
        // odd (or across the bump) retry, so no reader ever observes a mix
        // of this cut and the previous one.
        self.cut_seq.fetch_add(1, Ordering::AcqRel);
        let mut by_partition: BTreeMap<usize, Vec<(ShardId, Version)>> = BTreeMap::new();
        for (shard, v) in cut {
            by_partition
                .entry(self.part_of(shard))
                .or_default()
                .push((shard, v));
        }
        for (p, rows) in by_partition {
            self.touch(p);
            let mut t = self.partitions[p].tables.lock();
            for (shard, v) in rows {
                let entry = t.cut.entry(shard).or_insert(Version::ZERO);
                *entry = (*entry).max(v);
            }
        }
        self.cut_seq.fetch_add(1, Ordering::AcqRel);
        drop(ctl);
        Ok(())
    }

    fn read_cut(&self) -> Result<Cut> {
        self.charge();
        loop {
            let seq = self.cut_seq.load(Ordering::Acquire);
            if seq & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let cut = self.collect_cut_slices();
            if self.cut_seq.load(Ordering::Acquire) == seq {
                return Ok(cut);
            }
        }
    }

    fn telemetry_frontier(&self) -> Result<(Option<Version>, Cut)> {
        // Telemetry-only: no charge, no latency, no touch accounting — this
        // read does not model a protocol round trip.
        let vmax = {
            let mut max = None;
            for p in self.partitions.iter() {
                if let Some(&v) = p.tables.lock().dpr.values().max() {
                    max = Some(max.map_or(v, |m: Version| m.max(v)));
                }
            }
            max
        };
        loop {
            let seq = self.cut_seq.load(Ordering::Acquire);
            if seq & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let cut = self.collect_cut_slices();
            if self.cut_seq.load(Ordering::Acquire) == seq {
                return Ok((vmax, cut));
            }
        }
    }

    fn world_line(&self) -> Result<WorldLine> {
        self.charge();
        Ok(self.control.lock().world_line)
    }

    fn begin_recovery(&self) -> Result<RecoveryState> {
        self.charge();
        let mut ctl = self.control.lock();
        ctl.world_line = ctl.world_line.next();
        // Holding the control lock excludes every cut writer, so the
        // partition-at-a-time scans below see one frozen cut / membership.
        let cut = self.collect_cut_slices();
        let mut pending = BTreeSet::new();
        for p in self.partitions.iter() {
            pending.extend(p.tables.lock().dpr.keys().copied());
        }
        let state = RecoveryState {
            world_line: ctl.world_line,
            cut: cut.clone(),
            pending,
        };
        ctl.recovery = Some(state.clone());
        ctl.recovery_cuts.insert(state.world_line, cut);
        Ok(state)
    }

    fn report_rollback_complete(&self, shard: ShardId) -> Result<RecoveryState> {
        self.charge();
        let mut ctl = self.control.lock();
        let Some(rec) = ctl.recovery.as_mut() else {
            return Err(DprError::Metadata("no recovery in progress".into()));
        };
        rec.pending.remove(&shard);
        let state = rec.clone();
        if state.complete() {
            ctl.recovery = None;
        }
        Ok(state)
    }

    fn recovery_in_progress(&self) -> Result<Option<RecoveryState>> {
        self.charge();
        Ok(self.control.lock().recovery.clone())
    }

    fn recovery_cut(&self, world_line: WorldLine) -> Result<Option<Cut>> {
        self.charge();
        Ok(self.control.lock().recovery_cuts.get(&world_line).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: u32) -> ShardId {
        ShardId(i)
    }

    fn token(sh: u32, v: u64) -> Token {
        Token::new(shard(sh), Version(v))
    }

    #[test]
    fn routes_shards_across_partitions_and_aggregates() {
        let s = PartitionedSqlStore::new(4);
        for i in 0..8 {
            s.register_worker(shard(i)).unwrap();
        }
        for i in 0..8 {
            s.update_persisted_version(shard(i), Version(u64::from(i) + 1))
                .unwrap();
        }
        assert_eq!(s.min_persisted_version().unwrap(), Some(Version(1)));
        assert_eq!(s.max_persisted_version().unwrap(), Some(Version(8)));
        assert_eq!(s.persisted_versions().unwrap().len(), 8);
        assert_eq!(s.members().unwrap().len(), 8);
        // Every partition saw some of the traffic.
        let counts = s.partition_statement_counts();
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&c| c > 0), "unbalanced: {counts:?}");
    }

    #[test]
    fn batched_update_is_one_statement_across_partitions() {
        let s = PartitionedSqlStore::new(4);
        s.register_worker(shard(0)).unwrap();
        s.register_worker(shard(1)).unwrap();
        s.register_worker(shard(2)).unwrap();
        let before = s.statement_count();
        s.update_persisted_versions(&[
            (shard(0), Version(4)),
            (shard(1), Version(7)),
            (shard(2), Version(2)),
        ])
        .unwrap();
        assert_eq!(s.statement_count() - before, 1, "one round trip, 3 rows");
        assert_eq!(s.max_persisted_version().unwrap(), Some(Version(7)));
    }

    #[test]
    fn batched_update_aborts_atomically_across_partitions() {
        let s = PartitionedSqlStore::new(4);
        s.register_worker(shard(0)).unwrap();
        s.register_worker(shard(1)).unwrap();
        // shard 9 routes to partition 1 — a different partition from shard 0.
        assert!(s
            .update_persisted_versions(&[(shard(0), Version(4)), (shard(9), Version(1))])
            .is_err());
        assert_eq!(s.min_persisted_version().unwrap(), Some(Version::ZERO));
        assert_eq!(s.max_persisted_version().unwrap(), Some(Version::ZERO));
    }

    #[test]
    fn batched_graph_insert_spans_partitions() {
        let s = PartitionedSqlStore::new(3);
        let before = s.statement_count();
        s.add_graph_versions(vec![
            (token(0, 1), vec![]),
            (token(1, 1), vec![token(0, 1)]),
            (token(5, 2), vec![token(1, 1)]),
        ])
        .unwrap();
        assert_eq!(s.statement_count() - before, 1);
        let snap = s.graph_snapshot().unwrap();
        assert_eq!(snap.len(), 3);
        // Snapshot is token-sorted regardless of partition layout.
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn prune_respects_cut_across_partitions() {
        let s = PartitionedSqlStore::new(2);
        s.add_graph_version(token(0, 1), vec![]).unwrap();
        s.add_graph_version(token(0, 2), vec![token(1, 1)]).unwrap();
        s.add_graph_version(token(1, 1), vec![]).unwrap();
        let cut = Cut::from([(shard(0), Version(1)), (shard(1), Version(1))]);
        s.prune_graph_below(&cut).unwrap();
        let g = s.graph_snapshot().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].0, token(0, 2));
    }

    #[test]
    fn cut_updates_are_monotone_and_recovery_halts_progress() {
        let s = PartitionedSqlStore::new(2);
        s.register_worker(shard(0)).unwrap();
        s.register_worker(shard(1)).unwrap();
        s.update_cut_atomically(Cut::from([(shard(0), Version(4)), (shard(1), Version(3))]))
            .unwrap();
        s.update_cut_atomically(Cut::from([(shard(0), Version(2))]))
            .unwrap();
        assert_eq!(s.read_cut().unwrap()[&shard(0)], Version(4));

        let rec = s.begin_recovery().unwrap();
        assert_eq!(rec.world_line, WorldLine(1));
        assert_eq!(
            rec.cut,
            Cut::from([(shard(0), Version(4)), (shard(1), Version(3))])
        );
        assert!(matches!(
            s.update_cut_atomically(Cut::new()),
            Err(DprError::Recovering)
        ));
        s.report_rollback_complete(shard(0)).unwrap();
        s.report_rollback_complete(shard(1)).unwrap();
        assert!(s.recovery_in_progress().unwrap().is_none());
        s.update_cut_atomically(Cut::from([(shard(0), Version(9))]))
            .unwrap();
        assert_eq!(s.recovery_cut(rec.world_line).unwrap(), Some(rec.cut));
    }

    /// The seqlock property: readers racing a writer that publishes cuts
    /// spanning several partitions never observe a torn mix of two cuts.
    #[test]
    fn read_cut_is_never_torn_across_partitions() {
        use std::sync::Arc;
        let s = Arc::new(PartitionedSqlStore::new(4));
        const SHARDS: u32 = 8;
        for i in 0..SHARDS {
            s.register_worker(shard(i)).unwrap();
        }
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                // Each published cut has every shard at the same version, so
                // any mixed-version read is a torn one.
                for v in 1..=200u64 {
                    let cut: Cut = (0..SHARDS).map(|i| (shard(i), Version(v))).collect();
                    s.update_cut_atomically(cut).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..400 {
                        let cut = s.read_cut().unwrap();
                        let mut versions: Vec<_> = cut.values().copied().collect();
                        versions.dedup();
                        assert_eq!(versions.len(), 1, "torn cut: {cut:?}");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn telemetry_frontier_is_uncharged() {
        let s = PartitionedSqlStore::new(4);
        s.register_worker(shard(0)).unwrap();
        s.update_persisted_version(shard(0), Version(5)).unwrap();
        s.update_cut_atomically(Cut::from([(shard(0), Version(3))]))
            .unwrap();
        let before = s.statement_count();
        let (vmax, cut) = s.telemetry_frontier().unwrap();
        assert_eq!(s.statement_count(), before, "telemetry reads are free");
        assert_eq!(vmax, Some(Version(5)));
        assert_eq!(cut[&shard(0)], Version(3));
    }

    #[test]
    fn single_partition_degenerates_to_monolithic_behaviour() {
        let s = PartitionedSqlStore::new(1);
        s.register_worker(shard(0)).unwrap();
        s.register_worker(shard(7)).unwrap();
        s.update_persisted_versions(&[(shard(0), Version(2)), (shard(7), Version(6))])
            .unwrap();
        assert_eq!(s.min_persisted_version().unwrap(), Some(Version(2)));
        assert_eq!(s.partition_statement_counts().len(), 1);
    }
}
