//! Recovery state shared through the metadata store (§4).

use crate::store::Cut;
use dpr_core::{ShardId, WorldLine};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// State of an in-flight cluster recovery.
///
/// The cluster manager creates this when a failure is detected: it bumps the
/// world-line, records the DPR cut everyone must roll back to, and lists the
/// workers that have not yet reported rollback completion. DPR progress is
/// halted while this exists (§4.1: "temporarily halting DPR progress ...
/// resuming progress only after all workers have reported back").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryState {
    /// The world-line the cluster is moving to.
    pub world_line: WorldLine,
    /// The guaranteed cut being restored.
    pub cut: Cut,
    /// Workers that still need to roll back.
    pub pending: BTreeSet<ShardId>,
}

impl RecoveryState {
    /// True once every worker has rolled back.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.pending.is_empty()
    }
}
