//! Key-ownership tracking with virtual partitions and leases (§5.3).
//!
//! It is unrealistic to track ownership per key, so keys map to *virtual
//! partitions* (hash- or range-based, both supported per the paper) and the
//! ownership table maps partitions to workers. Workers validate ownership
//! against a local view and guard staleness with leases; transfers renounce
//! first, leaving the partition briefly un-owned while clients retry.

use dpr_core::{Clock, DprError, Key, Result, ShardId};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A virtual partition id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtualPartition(pub u32);

/// How keys map to virtual partitions.
///
/// "Hash- and range-based partitioning schemes are supported by default"
/// (§5.3). Range partitioning interprets 8-byte keys as big-endian integers.
///
/// ```
/// use dpr_metadata::Partitioner;
/// use dpr_core::Key;
///
/// let p = Partitioner::Range { partitions: 4, keyspace: 400 };
/// assert_eq!(p.partition_of(&Key::from_u64(150)).0, 1);
/// let h = Partitioner::Hash { partitions: 8 };
/// assert!(h.partition_of(&Key::from_u64(150)).0 < 8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Partitioner {
    /// `hash(key) % partitions`.
    Hash {
        /// Number of virtual partitions.
        partitions: u32,
    },
    /// Split a `u64` keyspace into equal contiguous ranges.
    Range {
        /// Number of virtual partitions.
        partitions: u32,
        /// Exclusive upper bound of the keyspace.
        keyspace: u64,
    },
}

impl Partitioner {
    /// Number of partitions this scheme produces.
    #[must_use]
    pub fn partitions(&self) -> u32 {
        match self {
            Partitioner::Hash { partitions } | Partitioner::Range { partitions, .. } => *partitions,
        }
    }

    /// The virtual partition owning `key`.
    #[must_use]
    pub fn partition_of(&self, key: &Key) -> VirtualPartition {
        match self {
            Partitioner::Hash { partitions } => {
                VirtualPartition((key.hash64() % u64::from(*partitions)) as u32)
            }
            Partitioner::Range {
                partitions,
                keyspace,
            } => {
                let k = key.as_u64().unwrap_or_else(|| key.hash64());
                let width = (keyspace / u64::from(*partitions)).max(1);
                VirtualPartition(((k / width).min(u64::from(*partitions) - 1)) as u32)
            }
        }
    }
}

/// One row of the ownership table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnershipEntry {
    /// Current owner; `None` mid-transfer.
    pub owner: Option<ShardId>,
    /// Lease expiry in clock nanos; owners must revalidate after this.
    pub lease_until_nanos: u64,
}

/// The ownership table, shared between workers and clients.
///
/// Workers cache a local view; in this in-process reproduction the "cache"
/// is the shared table itself, and lease checks model the staleness guard.
pub struct OwnershipTable {
    partitioner: Partitioner,
    entries: RwLock<BTreeMap<VirtualPartition, OwnershipEntry>>,
    clock: Arc<dyn Clock>,
    lease: Duration,
    /// Assignment epoch: bumped on every ownership *change* (assignment,
    /// renounce, claim) but **not** on lease renewal. Worker-side caches
    /// ([`dpr-cluster`'s `OwnershipLease`]) compare one atomic load against
    /// their cached epoch to detect a stale view; the bump happens inside
    /// the write-locked section, so a snapshot taken under the read lock is
    /// always consistent with the epoch it reads.
    ///
    /// [`dpr-cluster`'s `OwnershipLease`]: OwnershipTable::snapshot
    epoch: AtomicU64,
}

impl OwnershipTable {
    /// Build a table with the given partitioner and lease duration.
    pub fn new(partitioner: Partitioner, clock: Arc<dyn Clock>, lease: Duration) -> Self {
        OwnershipTable {
            partitioner,
            entries: RwLock::new(BTreeMap::new()),
            clock,
            lease,
            epoch: AtomicU64::new(0),
        }
    }

    /// The partitioner in use.
    #[must_use]
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The table's clock (shared with worker-side lease caches so lease
    /// expiry is judged on the same timeline).
    #[must_use]
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    /// Current assignment epoch (see the field docs). One relaxed-cost
    /// atomic load — the per-operation staleness probe for cached views.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Consistent `(epoch, entries)` snapshot for worker-side lease caches.
    /// Taken under the read lock, which excludes every epoch-bumping writer,
    /// so the entries always correspond to the returned epoch.
    #[must_use]
    pub fn snapshot(&self) -> (u64, BTreeMap<VirtualPartition, OwnershipEntry>) {
        let entries = self.entries.read();
        let epoch = self.epoch.load(Ordering::Acquire);
        (epoch, entries.clone())
    }

    /// Assign every partition round-robin across `workers` — the initial
    /// "keyspace sharded by hash value into equal chunks" layout (§7.1).
    pub fn assign_round_robin(&self, workers: &[ShardId]) {
        let now = self.clock.now_nanos();
        let mut entries = self.entries.write();
        for p in 0..self.partitioner.partitions() {
            let owner = workers[(p as usize) % workers.len()];
            entries.insert(
                VirtualPartition(p),
                OwnershipEntry {
                    owner: Some(owner),
                    lease_until_nanos: now + self.lease.as_nanos() as u64,
                },
            );
        }
        // Ownership changed: fence every cached view.
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The owner of `key`, if the partition is owned and the lease is live.
    pub fn owner_of(&self, key: &Key) -> Result<ShardId> {
        let vp = self.partitioner.partition_of(key);
        self.owner_of_partition(vp)
    }

    /// The owner of a partition.
    pub fn owner_of_partition(&self, vp: VirtualPartition) -> Result<ShardId> {
        let entries = self.entries.read();
        match entries.get(&vp).and_then(|e| e.owner) {
            Some(owner) => Ok(owner),
            None => Err(DprError::Invalid(format!("partition {vp:?} un-owned"))),
        }
    }

    /// Validate that `shard` owns `key` under a live lease — the check every
    /// worker performs before executing an operation (§5.3).
    pub fn validate(&self, shard: ShardId, key: &Key) -> bool {
        let vp = self.partitioner.partition_of(key);
        let entries = self.entries.read();
        match entries.get(&vp) {
            Some(e) => e.owner == Some(shard) && e.lease_until_nanos >= self.clock.now_nanos(),
            None => false,
        }
    }

    /// Renew the lease on every partition owned by `shard`.
    pub fn renew_leases(&self, shard: ShardId) {
        let until = self.clock.now_nanos() + self.lease.as_nanos() as u64;
        let mut entries = self.entries.write();
        for e in entries.values_mut() {
            if e.owner == Some(shard) {
                e.lease_until_nanos = until;
            }
        }
    }

    /// Begin transferring a partition: the old owner renounces locally
    /// before the table is updated, so the partition is temporarily
    /// un-owned and clients retry (§5.3).
    pub fn renounce(&self, vp: VirtualPartition, old_owner: ShardId) -> Result<()> {
        let mut entries = self.entries.write();
        let e = entries
            .get_mut(&vp)
            .ok_or_else(|| DprError::Invalid(format!("unknown partition {vp:?}")))?;
        if e.owner != Some(old_owner) {
            return Err(DprError::Invalid(format!(
                "{old_owner} does not own {vp:?}"
            )));
        }
        e.owner = None;
        // The epoch bump is what fences the old owner's cached lease: its
        // next validation sees the new epoch and refills before it can
        // accept another operation for this partition.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Complete a transfer by installing the new owner.
    pub fn claim(&self, vp: VirtualPartition, new_owner: ShardId) -> Result<()> {
        let now = self.clock.now_nanos();
        let mut entries = self.entries.write();
        let e = entries
            .get_mut(&vp)
            .ok_or_else(|| DprError::Invalid(format!("unknown partition {vp:?}")))?;
        if e.owner.is_some() {
            return Err(DprError::Invalid(format!("{vp:?} still owned")));
        }
        e.owner = Some(new_owner);
        e.lease_until_nanos = now + self.lease.as_nanos() as u64;
        self.epoch.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Partitions currently owned by `shard`.
    #[must_use]
    pub fn partitions_of(&self, shard: ShardId) -> Vec<VirtualPartition> {
        self.entries
            .read()
            .iter()
            .filter(|(_, e)| e.owner == Some(shard))
            .map(|(vp, _)| *vp)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::SimClock;

    fn table(partitions: u32) -> (OwnershipTable, SimClock) {
        let clock = SimClock::new();
        let t = OwnershipTable::new(
            Partitioner::Hash { partitions },
            Arc::new(clock.clone()),
            Duration::from_secs(10),
        );
        (t, clock)
    }

    #[test]
    fn hash_partitioning_is_stable_and_total() {
        let p = Partitioner::Hash { partitions: 8 };
        for k in 0..1000u64 {
            let key = Key::from_u64(k);
            let a = p.partition_of(&key);
            assert_eq!(a, p.partition_of(&key));
            assert!(a.0 < 8);
        }
    }

    #[test]
    fn range_partitioning_splits_keyspace() {
        let p = Partitioner::Range {
            partitions: 4,
            keyspace: 400,
        };
        assert_eq!(p.partition_of(&Key::from_u64(0)).0, 0);
        assert_eq!(p.partition_of(&Key::from_u64(150)).0, 1);
        assert_eq!(p.partition_of(&Key::from_u64(399)).0, 3);
        // Keys beyond the declared keyspace clamp to the last partition.
        assert_eq!(p.partition_of(&Key::from_u64(10_000)).0, 3);
    }

    #[test]
    fn round_robin_covers_all_partitions() {
        let (t, _) = table(16);
        let workers = [ShardId(0), ShardId(1), ShardId(2)];
        t.assign_round_robin(&workers);
        for p in 0..16 {
            let owner = t.owner_of_partition(VirtualPartition(p)).unwrap();
            assert_eq!(owner, workers[(p as usize) % 3]);
        }
    }

    #[test]
    fn validate_fails_after_lease_expiry_until_renewed() {
        let (t, clock) = table(4);
        t.assign_round_robin(&[ShardId(0)]);
        let key = Key::from_u64(1);
        assert!(t.validate(ShardId(0), &key));
        clock.advance(Duration::from_secs(11));
        assert!(!t.validate(ShardId(0), &key), "lease expired");
        t.renew_leases(ShardId(0));
        assert!(t.validate(ShardId(0), &key));
    }

    #[test]
    fn epoch_bumps_on_assignment_changes_but_not_renewal() {
        let (t, clock) = table(4);
        let e0 = t.epoch();
        t.assign_round_robin(&[ShardId(0)]);
        let e1 = t.epoch();
        assert!(e1 > e0, "assignment bumps the epoch");
        clock.advance(Duration::from_secs(1));
        t.renew_leases(ShardId(0));
        assert_eq!(t.epoch(), e1, "renewal must NOT fence cached views");
        t.renounce(VirtualPartition(2), ShardId(0)).unwrap();
        let e2 = t.epoch();
        assert!(e2 > e1, "renounce fences the old owner");
        t.claim(VirtualPartition(2), ShardId(1)).unwrap();
        assert!(t.epoch() > e2, "claim fences again");
        // Snapshot is consistent with its epoch.
        let (epoch, entries) = t.snapshot();
        assert_eq!(epoch, t.epoch());
        assert_eq!(
            entries[&VirtualPartition(2)].owner,
            Some(ShardId(1)),
            "snapshot reflects the post-claim assignment"
        );
    }

    #[test]
    fn transfer_renounce_then_claim() {
        let (t, _) = table(4);
        t.assign_round_robin(&[ShardId(0)]);
        let vp = VirtualPartition(2);
        // Wrong owner cannot renounce.
        assert!(t.renounce(vp, ShardId(9)).is_err());
        t.renounce(vp, ShardId(0)).unwrap();
        // Mid-transfer: lookups fail, clients retry.
        assert!(t.owner_of_partition(vp).is_err());
        // Cannot claim an owned partition.
        assert!(t.claim(VirtualPartition(1), ShardId(1)).is_err());
        t.claim(vp, ShardId(1)).unwrap();
        assert_eq!(t.owner_of_partition(vp).unwrap(), ShardId(1));
        assert_eq!(t.partitions_of(ShardId(1)), vec![vp]);
    }
}
