//! Metric accessors for the metadata store.
//!
//! Every metric defined here is documented (name, unit, paper
//! cross-reference) in `docs/OBSERVABILITY.md`; keep the two in sync.

use dpr_telemetry::metric_fn;

metric_fn!(
    /// Statements executed against the simulated SQL store (§5.1).
    pub(crate) fn statements() -> Counter =
        ("dpr_metadata_statements_total", Count,
         "Statements executed against the simulated metadata store")
);

metric_fn!(
    /// Injected per-statement latency actually paid (the modeled Azure SQL
    /// round trip).
    pub(crate) fn statement_latency() -> Histogram =
        ("dpr_metadata_statement_us", Micros,
         "Simulated metadata-store statement latency (injected round trip)")
);

metric_fn!(
    /// Rows in the `dpr` table (one per registered shard).
    pub(crate) fn dpr_table_rows() -> Gauge =
        ("dpr_metadata_dpr_table_rows", Count,
         "Rows in the dpr table (registered shards)")
);

metric_fn!(
    /// Rows in the precedence-graph table (committed tokens awaiting pruning).
    pub(crate) fn graph_rows() -> Gauge =
        ("dpr_metadata_graph_rows", Count,
         "Rows in the precedence-graph table (tokens not yet below the cut)")
);
