//! Concurrency stress for the striped server-side gate (§6).
//!
//! N executor threads hammer `record_batch` while a sealer thread seals
//! versions CPR-style (announce the version bump, wait for in-flight
//! batches to land, then expose the commit descriptor) and a pump thread
//! drains commits to an exact finder. Afterwards we assert the two
//! properties the lock-free rewrite must preserve:
//!
//! * **Exactly-once reporting** — every sealed version is reported to the
//!   finder exactly once, in order.
//! * **No dependency dropped** — for every dependency recorded at executed
//!   version `e`, some report with token version ≤ `e` carries that shard at
//!   an equal-or-larger version (max-per-shard compression may merge deps,
//!   never lose them), so any cut admitting `e` still enforces the
//!   dependency; and the full precedence graph plus the final cut satisfy
//!   [`libdpr::finder::cut_is_closed`].

use dpr_core::{Result, SessionId, ShardId, Token, Version, WorldLine};
use dpr_metadata::{MetadataStore, SimulatedSqlStore};
use libdpr::finder::cut_is_closed;
use libdpr::{BatchHeader, CommitDescriptor, DprFinder, DprServer, ExactFinder, StateObject};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WRITERS: usize = 8;
const BATCHES_PER_WRITER: usize = 2_000;
const DEP_SHARDS: u32 = 4;
/// In-flight slot value meaning "not executing a batch".
const IDLE: u64 = u64::MAX;

/// StateObject whose versions are sealed externally by the test's sealer.
struct StressSo {
    current: AtomicU64,
    durable: AtomicU64,
    pending: Mutex<Vec<CommitDescriptor>>,
}

impl StressSo {
    fn new() -> Self {
        StressSo {
            current: AtomicU64::new(1),
            durable: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }
}

impl StateObject for StressSo {
    fn shard(&self) -> ShardId {
        ShardId(0)
    }
    fn current_version(&self) -> Version {
        Version(self.current.load(Ordering::SeqCst))
    }
    fn durable_version(&self) -> Version {
        Version(self.durable.load(Ordering::SeqCst))
    }
    fn request_commit(&self, _target: Option<Version>) -> bool {
        false // sealing is driven by the sealer thread
    }
    fn take_commits(&self) -> Vec<CommitDescriptor> {
        std::mem::take(&mut *self.pending.lock())
    }
    fn restore(&self, version: Version) -> Result<()> {
        self.durable.store(version.0, Ordering::SeqCst);
        self.current.store(version.0 + 1, Ordering::SeqCst);
        Ok(())
    }
}

/// Forwards to an inner finder while capturing every report.
struct CapturingFinder {
    inner: ExactFinder,
    reports: Mutex<Vec<(Token, Vec<Token>)>>,
}

impl DprFinder for CapturingFinder {
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        self.reports.lock().push((token, deps.clone()));
        self.inner.report_commit(token, deps)
    }
    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        self.reports.lock().extend(reports.clone());
        self.inner.report_commits(reports)
    }
    fn refresh(&self) -> Result<()> {
        self.inner.refresh()
    }
    fn current_cut(&self) -> Result<dpr_metadata::Cut> {
        self.inner.current_cut()
    }
    fn max_version(&self) -> Result<Version> {
        self.inner.max_version()
    }
}

fn header(deps: Vec<Token>) -> BatchHeader {
    BatchHeader {
        session: SessionId(7),
        world_line: WorldLine(0),
        version_lower_bound: Version::ZERO,
        deps,
        first_serial: 0,
        op_count: 1,
    }
}

/// Seal one version CPR-style: announce the bump, wait until no writer is
/// still executing in the sealed version, then expose the descriptor.
fn seal_one(so: &StressSo, inflight: &[AtomicU64]) -> u64 {
    let sealed = so.current.fetch_add(1, Ordering::SeqCst);
    for slot in inflight {
        while {
            let v = slot.load(Ordering::SeqCst);
            v != IDLE && v <= sealed
        } {
            // Single-core friendly: the straggling writer needs the CPU.
            std::thread::yield_now();
        }
    }
    so.pending.lock().push(CommitDescriptor {
        version: Version(sealed),
    });
    sealed
}

#[test]
fn concurrent_record_and_pump_lose_nothing() {
    let meta = Arc::new(SimulatedSqlStore::new());
    meta.register_worker(ShardId(0)).unwrap();
    for s in 1..=DEP_SHARDS {
        meta.register_worker(ShardId(s)).unwrap();
    }
    let finder = Arc::new(CapturingFinder {
        inner: ExactFinder::new(meta.clone()),
        reports: Mutex::new(Vec::new()),
    });
    let server = Arc::new(DprServer::new(ShardId(0)));
    let so = Arc::new(StressSo::new());
    let inflight: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS).map(|_| AtomicU64::new(IDLE)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: record batches with random-ish deps, tracking ground truth.
    let mut writer_handles = Vec::new();
    for w in 0..WRITERS {
        let server = server.clone();
        let so = so.clone();
        let inflight = inflight.clone();
        writer_handles.push(std::thread::spawn(move || {
            let mut truth: Vec<(Token, u64)> = Vec::with_capacity(BATCHES_PER_WRITER);
            let mut rng = (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for _ in 0..BATCHES_PER_WRITER {
                // Publish the executed version, then re-read (Dekker with the
                // sealer's bump-then-check) so a version is never sealed with
                // this batch still unrecorded.
                let mut e = so.current.load(Ordering::SeqCst);
                inflight[w].store(e, Ordering::SeqCst);
                e = so.current.load(Ordering::SeqCst);
                inflight[w].store(e, Ordering::SeqCst);
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let dep_shard = ShardId(1 + (rng >> 33) as u32 % DEP_SHARDS);
                // Version-clock monotone: deps stay at or below the
                // executing version (§3.2).
                let dep_version = Version(1 + (rng >> 13) % e);
                let dep = Token::new(dep_shard, dep_version);
                server.record_batch(&header(vec![dep]), Version(e));
                truth.push((dep, e));
                inflight[w].store(IDLE, Ordering::SeqCst);
            }
            truth
        }));
    }

    // Sealer: seal versions as fast as writers allow.
    let sealer = {
        let so = so.clone();
        let inflight = inflight.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                seal_one(&so, &inflight);
                // Pace sealing so the version count stays test-sized.
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };

    // Pump: drain commits concurrently with everything else.
    let pump = {
        let server = server.clone();
        let so = so.clone();
        let finder = finder.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut reported: Vec<Version> = Vec::new();
            while !stop.load(Ordering::Acquire) {
                reported.extend(server.pump_commits(so.as_ref(), finder.as_ref()).unwrap());
                std::thread::sleep(Duration::from_micros(200));
            }
            reported
        })
    };

    let truth: Vec<(Token, u64)> = writer_handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    stop.store(true, Ordering::Release);
    sealer.join().unwrap();
    let mut reported = pump.join().unwrap();

    // Seal every version batches executed in, then drain the tail.
    let max_executed = truth.iter().map(|&(_, e)| e).max().unwrap();
    while seal_one(&so, &inflight) < max_executed {}
    reported.extend(server.pump_commits(so.as_ref(), finder.as_ref()).unwrap());

    // Exactly-once, in-order reporting of every sealed version.
    let sealed_up_to = reported.iter().max().unwrap().0;
    assert!(sealed_up_to >= max_executed);
    let expected: Vec<Version> = (1..=sealed_up_to).map(Version).collect();
    assert_eq!(reported, expected, "every version reported exactly once");

    // No dependency dropped: each recorded dep is covered by a report at or
    // below its executed version with an equal-or-larger dep version.
    let reports = finder.reports.lock().clone();
    assert_eq!(truth.len(), WRITERS * BATCHES_PER_WRITER);
    for &(dep, e) in &truth {
        let covered = reports.iter().any(|(token, deps)| {
            token.version.0 <= e
                && deps
                    .iter()
                    .any(|d| d.shard == dep.shard && d.version >= dep.version)
        });
        assert!(covered, "dep {dep:?} recorded at v{e} lost by the gate");
    }

    // Let the dependent shards commit what shard 0 depends on, then check
    // the published cut is dependency-closed over the full reported graph
    // and admits everything.
    let mut dep_max: BTreeMap<ShardId, Version> = BTreeMap::new();
    for (_, deps) in &reports {
        for d in deps {
            let m = dep_max.entry(d.shard).or_insert(Version::ZERO);
            *m = (*m).max(d.version);
        }
    }
    let mut graph: BTreeMap<Token, Vec<Token>> = BTreeMap::new();
    for (token, deps) in &reports {
        graph.insert(*token, deps.clone());
    }
    for (&shard, &v) in &dep_max {
        finder.report_commit(Token::new(shard, v), vec![]).unwrap();
        graph.insert(Token::new(shard, v), vec![]);
    }
    finder.refresh().unwrap();
    let cut = finder.current_cut().unwrap();
    assert!(cut_is_closed(&graph, &cut), "published cut not closed");
    assert_eq!(
        cut[&ShardId(0)],
        Version(sealed_up_to),
        "cut admits every reported version once deps committed"
    );
}
