//! Regression tests for the `report_commits` ↔ `refresh` race.
//!
//! The pre-delta-engine finders snapshotted the in-memory precedence graph
//! at the top of `refresh`, computed the cut, and then *rebuilt* the graph
//! from the snapshot's survivors — so any commit reported between the
//! snapshot and the rebuild was silently dropped from the in-memory graph.
//! A lost report either stalls the cut (its shard never advances) or, for
//! the hybrid finder, lets the approximate floor drag the cut past a token
//! whose dependencies were never admitted, breaking downward closure.
//!
//! The delta engine closes the window structurally: racing reports land in
//! a separately-locked mailbox and are drained into the working graph at
//! the start of the next compute pass, while `commit` (the prune after a
//! successful publish) only ever touches tokens that participated in a
//! pass. These tests race real reporter threads against a refresher thread
//! and assert, through the audit tap, that every published cut is closed
//! over the union of all reported edges and that no report is ever lost.

use dpr_core::{ShardId, Token, Version};
use dpr_metadata::{Cut, MetadataStore, SimulatedSqlStore};
use libdpr::audit::{self, AuditSink};
use libdpr::finder::cut_is_closed;
use libdpr::{DprFinder, ExactFinder, HybridFinder};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The audit sink is process-global; serialize the tests that install one.
static AUDIT_LOCK: Mutex<()> = Mutex::new(());

/// Shadow of everything the finder was told and everything it published.
#[derive(Default)]
struct Shadow {
    graph: Mutex<BTreeMap<Token, Vec<Token>>>,
    cuts: Mutex<Vec<Cut>>,
}

impl AuditSink for Shadow {
    fn commit_reported(&self, token: Token, deps: &[Token]) {
        self.graph.lock().insert(token, deps.to_vec());
    }
    fn cut_published(&self, cut: &Cut) {
        self.cuts.lock().push(cut.clone());
    }
}

const SHARDS: u32 = 4;
const VERSIONS_PER_SHARD: u64 = 300;

/// Drive one reporter thread per shard (in-order, monotone version clock,
/// cross-shard deps ≤ own version — what §3.2 guarantees) against a
/// refresher thread calling `refresh` as fast as it can.
///
/// With per-shard in-order reporting, closure over the *final* union of
/// edges is the right invariant for every intermediate cut: a cut can only
/// cover versions already reported on each shard, and later reports carry
/// strictly higher versions, so no late edge can invalidate an earlier
/// published cut — unless a report was dropped.
fn race(finder: Arc<dyn DprFinder>) {
    let _serial = AUDIT_LOCK.lock();
    let shadow = Arc::new(Shadow::default());
    audit::install(shadow.clone());

    let reporters: Vec<_> = (0..SHARDS)
        .map(|s| {
            let f = finder.clone();
            std::thread::spawn(move || {
                let mut rng: u64 = 0x9E37_79B9 ^ u64::from(s);
                for v in 1..=VERSIONS_PER_SHARD {
                    // Cheap xorshift for dep fan-out; deps stay ≤ v.
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let deps: Vec<Token> = (0..SHARDS)
                        .filter(|d| *d != s && (rng >> d) & 1 == 1)
                        .map(|d| Token::new(ShardId(d), Version(rng % v + 1)))
                        .collect();
                    let token = Token::new(ShardId(s), Version(v));
                    if v % 3 == 0 {
                        f.report_commits(vec![(token, deps)]).unwrap();
                    } else {
                        f.report_commit(token, deps).unwrap();
                    }
                }
            })
        })
        .collect();
    let refresher = {
        let f = finder.clone();
        std::thread::spawn(move || loop {
            f.refresh().unwrap();
            let cut = f.current_cut().unwrap();
            if (0..SHARDS)
                .all(|s| cut.get(&ShardId(s)).copied() >= Some(Version(VERSIONS_PER_SHARD)))
            {
                return;
            }
            std::thread::yield_now();
        })
    };
    for r in reporters {
        r.join().unwrap();
    }
    refresher.join().unwrap();
    audit::uninstall();

    let union = shadow.graph.lock();
    let cuts = shadow.cuts.lock();
    assert_eq!(
        union.len(),
        (SHARDS as usize) * (VERSIONS_PER_SHARD as usize),
        "audit tap missed reports"
    );
    assert!(!cuts.is_empty(), "refresher never published a cut");
    for cut in cuts.iter() {
        assert!(
            cut_is_closed(&union, cut),
            "published cut {cut:?} not closed over the union of reported edges"
        );
    }
    // No lost reports: the refresher only exits once the cut covers every
    // reported version on every shard, so reaching here already proves
    // progress; assert it explicitly on the last published cut anyway.
    let last = cuts.last().unwrap();
    for s in 0..SHARDS {
        assert_eq!(
            last.get(&ShardId(s)).copied(),
            Some(Version(VERSIONS_PER_SHARD)),
            "shard {s}: a racing report was dropped"
        );
    }
}

fn meta() -> Arc<SimulatedSqlStore> {
    let meta = Arc::new(SimulatedSqlStore::new());
    for s in 0..SHARDS {
        meta.register_worker(ShardId(s)).unwrap();
    }
    meta
}

#[test]
fn hybrid_refresh_never_drops_racing_reports() {
    race(Arc::new(HybridFinder::new(meta())));
}

#[test]
fn exact_refresh_never_drops_racing_reports() {
    race(Arc::new(ExactFinder::new(meta())));
}
