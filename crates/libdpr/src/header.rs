//! Wire headers piggybacked on client batches (§3.2, §6).
//!
//! DPR adds no coordination traffic of its own: the version clock and
//! dependency information ride on the messages clients were already sending,
//! and the reply carries back what the client needs to track commit status.

use dpr_core::{SessionId, Token, Version, WorldLine};
use serde::{Deserialize, Serialize};

/// Header attached to every request batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchHeader {
    /// Issuing session.
    pub session: SessionId,
    /// World-line the session believes it is on (§4.2).
    pub world_line: WorldLine,
    /// The session's version clock `Vs`: the largest version it has
    /// observed. The shard must execute this batch in a version `>= Vs`
    /// (§3.2's progress guarantee).
    pub version_lower_bound: Version,
    /// Latest version of every *other* shard this session has operated on —
    /// the dependency-by-precedence edges for the exact finder (§3.3).
    pub deps: Vec<Token>,
    /// Serial number of the first operation in the batch.
    pub first_serial: u64,
    /// Number of operations in the batch.
    pub op_count: u32,
}

/// Header attached to every reply batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchReply {
    /// Replying shard.
    pub shard: dpr_core::ShardId,
    /// World-line the shard is on; a value greater than the client's tells
    /// the client a failure happened.
    pub world_line: WorldLine,
    /// Version every operation in the batch executed in. (Batches execute
    /// under one shared latch in D-Redis; D-FASTER reports the max op
    /// version — both are safe upper bounds for dependency tracking.)
    pub version: Version,
    /// Serial number of the first op covered by this reply.
    pub first_serial: u64,
    /// Number of ops covered.
    pub op_count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::ShardId;

    #[test]
    fn headers_serialize() {
        let h = BatchHeader {
            session: SessionId(1),
            world_line: WorldLine(2),
            version_lower_bound: Version(3),
            deps: vec![Token::new(ShardId(0), Version(1))],
            first_serial: 100,
            op_count: 16,
        };
        let s = serde_json::to_string(&h).unwrap();
        let back: BatchHeader = serde_json::from_str(&s).unwrap();
        assert_eq!(back, h);
        let r = BatchReply {
            shard: ShardId(4),
            world_line: WorldLine(2),
            version: Version(5),
            first_serial: 100,
            op_count: 16,
        };
        let s = serde_json::to_string(&r).unwrap();
        let back: BatchReply = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
