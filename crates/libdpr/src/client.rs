//! Client-side session tracking.
//!
//! A [`DprClientSession`] is the client half of a SessionOrder: it stamps
//! outgoing batches with the session's version clock `Vs` and dependency
//! vector, records the version every completed operation executed in, and
//! turns the cluster's DPR cut into a *committed prefix* of the session —
//! the "prefix commits (async)" arrows of Fig. 1.

use crate::header::{BatchHeader, BatchReply};
use dpr_core::{DprError, Result, SessionId, ShardId, Token, Version, WorldLine};
use dpr_metadata::Cut;
use std::collections::BTreeMap;

/// Session status after a failure notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Operating normally.
    Active,
    /// A failure was observed; [`DprClientSession::handle_failure`] must run
    /// (with the post-recovery cut) before new operations are issued.
    NeedsRecovery {
        /// The world-line the cluster moved to.
        new_world_line: WorldLine,
    },
}

/// One completed batch's execution record: `op_count` consecutive serials
/// that all executed at `version` on `shard`.
#[derive(Debug, Clone, Copy)]
struct BatchSpan {
    op_count: u32,
    shard: ShardId,
    version: Version,
}

/// Client-side DPR state for one session.
///
/// Not `Sync`: a session is a single logical thread of execution. Clients
/// that want parallelism open multiple sessions, which also trims false
/// dependencies (§1).
///
/// ```
/// use libdpr::{BatchReply, DprClientSession};
/// use dpr_core::{SessionId, ShardId, Version, WorldLine};
///
/// let mut session = DprClientSession::new(SessionId(1));
/// // Issue a 4-op batch to shard 0 and feed back its reply.
/// let header = session.begin_batch(ShardId(0), 4).unwrap();
/// session.process_reply(&BatchReply {
///     shard: ShardId(0),
///     world_line: WorldLine::INITIAL,
///     version: Version(1),
///     first_serial: header.first_serial,
///     op_count: 4,
/// }).unwrap();
/// // Ops commit once the DPR cut covers their version.
/// let cut = [(ShardId(0), Version(1))].into_iter().collect();
/// assert_eq!(session.refresh_commit(&cut), 4);
/// ```
#[derive(Debug)]
pub struct DprClientSession {
    id: SessionId,
    world_line: WorldLine,
    /// `Vs`: the largest version observed anywhere (§3.2).
    version_clock: Version,
    /// Latest observed version per shard — the dependency vector attached
    /// to outgoing batches.
    shard_versions: BTreeMap<ShardId, Version>,
    /// Next serial number to assign.
    next_serial: u64,
    /// Completed-but-uncommitted batches, span-compressed: every op in a
    /// batch executes at one (shard, version), so tracking is per batch
    /// (first serial → span), not per op — one map insert per reply on
    /// the pipelined hot path instead of `op_count`.
    op_versions: BTreeMap<u64, BatchSpan>,
    /// All serials below this are *resolved*: committed, or aborted by a
    /// failure the application has been told about.
    committed_prefix: u64,
    /// Cumulative count of ops aborted by failures.
    aborted: u64,
    status: SessionStatus,
}

impl DprClientSession {
    /// New session on the initial world-line.
    #[must_use]
    pub fn new(id: SessionId) -> Self {
        Self::on_world_line(id, WorldLine::INITIAL)
    }

    /// New session joining a cluster already on `world_line`.
    #[must_use]
    pub fn on_world_line(id: SessionId, world_line: WorldLine) -> Self {
        DprClientSession {
            id,
            world_line,
            version_clock: Version::ZERO,
            shard_versions: BTreeMap::new(),
            next_serial: 0,
            op_versions: BTreeMap::new(),
            committed_prefix: 0,
            aborted: 0,
            status: SessionStatus::Active,
        }
    }

    /// Session id.
    #[must_use]
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Current world-line.
    #[must_use]
    pub fn world_line(&self) -> WorldLine {
        self.world_line
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> SessionStatus {
        self.status
    }

    /// Serials below this are resolved — durably committed or aborted with
    /// notice (as of the last [`DprClientSession::refresh_commit`] /
    /// [`DprClientSession::handle_failure`]).
    #[must_use]
    pub fn committed_prefix(&self) -> u64 {
        self.committed_prefix
    }

    /// Total operations aborted by failures over this session's lifetime.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Total operations durably committed (resolved minus aborted).
    #[must_use]
    pub fn committed_count(&self) -> u64 {
        self.committed_prefix - self.aborted
    }

    /// Number of operations issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next_serial
    }

    /// Build the header for a batch of `op_count` operations bound for
    /// `shard`, reserving their serial numbers.
    ///
    /// # Errors
    /// Fails if the session needs recovery first.
    pub fn begin_batch(&mut self, shard: ShardId, op_count: u32) -> Result<BatchHeader> {
        let mut header = BatchHeader {
            session: self.id,
            world_line: self.world_line,
            version_lower_bound: self.version_clock,
            deps: Vec::new(),
            first_serial: 0,
            op_count,
        };
        self.begin_batch_into(shard, op_count, &mut header)?;
        Ok(header)
    }

    /// [`DprClientSession::begin_batch`] into a caller-owned header — the
    /// dependency vector is rebuilt in place, so a header reused across
    /// batches makes issuing allocation-free in steady state.
    ///
    /// # Errors
    /// Fails if the session needs recovery first.
    pub fn begin_batch_into(
        &mut self,
        shard: ShardId,
        op_count: u32,
        header: &mut BatchHeader,
    ) -> Result<()> {
        if let SessionStatus::NeedsRecovery { new_world_line } = self.status {
            return Err(DprError::WorldLineMismatch {
                requested: self.world_line,
                current: new_world_line,
            });
        }
        header.session = self.id;
        header.world_line = self.world_line;
        header.version_lower_bound = self.version_clock;
        header.deps.clear();
        header.deps.extend(
            self.shard_versions
                .iter()
                .filter(|(s, _)| **s != shard)
                .map(|(s, v)| Token::new(*s, *v)),
        );
        header.first_serial = self.next_serial;
        header.op_count = op_count;
        self.next_serial += u64::from(op_count);
        Ok(())
    }

    /// Rebuild a header for already-allocated serials (used when a batch
    /// must be re-routed after an ownership change, §5.3). Does not advance
    /// the serial counter.
    pub fn rebatch_header(&self, shard: ShardId, first_serial: u64, op_count: u32) -> BatchHeader {
        let deps = self
            .shard_versions
            .iter()
            .filter(|(s, _)| **s != shard)
            .map(|(s, v)| Token::new(*s, *v))
            .collect();
        BatchHeader {
            session: self.id,
            world_line: self.world_line,
            version_lower_bound: self.version_clock,
            deps,
            first_serial,
            op_count,
        }
    }

    /// Ingest a reply. On success the covered ops become
    /// completed-uncommitted. Returns `WorldLineMismatch` if the shard is on
    /// a later world-line (a failure happened — fetch the cut and call
    /// [`DprClientSession::handle_failure`]), or `Recovering` if the shard
    /// is still behind this session's world-line (retry later).
    pub fn process_reply(&mut self, reply: &BatchReply) -> Result<()> {
        if reply.world_line > self.world_line {
            self.status = SessionStatus::NeedsRecovery {
                new_world_line: reply.world_line,
            };
            return Err(DprError::WorldLineMismatch {
                requested: self.world_line,
                current: reply.world_line,
            });
        }
        if reply.world_line < self.world_line {
            return Err(DprError::Recovering);
        }
        if reply.first_serial >= self.committed_prefix {
            // One span per batch (serials in a batch are consecutive and
            // share the executed version). Replays of already-committed
            // batches are dropped so they cannot re-enter the map below
            // the prefix.
            self.op_versions.insert(
                reply.first_serial,
                BatchSpan {
                    op_count: reply.op_count,
                    shard: reply.shard,
                    version: reply.version,
                },
            );
        }
        self.version_clock = self.version_clock.max(reply.version);
        let e = self
            .shard_versions
            .entry(reply.shard)
            .or_insert(Version::ZERO);
        *e = (*e).max(reply.version);
        Ok(())
    }

    /// Advance the committed prefix given the cluster's current DPR cut.
    /// Returns the new prefix (serials strictly below it are committed).
    pub fn refresh_commit(&mut self, cut: &Cut) -> u64 {
        while let Some(&span) = self.op_versions.get(&self.committed_prefix) {
            let committed = cut.get(&span.shard).copied().unwrap_or(Version::ZERO);
            if span.version > committed {
                break;
            }
            self.op_versions.remove(&self.committed_prefix);
            self.committed_prefix += u64::from(span.op_count);
        }
        self.committed_prefix
    }

    /// React to a failure: compute the surviving prefix against the
    /// post-recovery cut, drop lost operations, and move to the new
    /// world-line. Returns the number of surviving (committed) operations;
    /// everything at or above it was rolled back and the application must
    /// handle it (e.g. re-issue).
    pub fn handle_failure(&mut self, new_world_line: WorldLine, cut: &Cut) -> u64 {
        let survived = self.refresh_commit(cut);
        // Ops beyond the surviving prefix are gone; serials are not reused,
        // and the lost serials count as resolved-by-abort so the prefix
        // does not stall on the hole.
        self.op_versions.clear();
        self.aborted += self.next_serial - self.committed_prefix;
        self.committed_prefix = self.next_serial;
        self.world_line = new_world_line;
        self.status = SessionStatus::Active;
        // The dependency vector must not reference rolled-back versions.
        for (shard, v) in self.shard_versions.iter_mut() {
            let committed = cut.get(shard).copied().unwrap_or(Version::ZERO);
            if *v > committed {
                *v = committed;
            }
        }
        self.version_clock = self
            .shard_versions
            .values()
            .copied()
            .max()
            .unwrap_or(Version::ZERO);
        survived
    }

    /// Ops issued but not yet known committed (completed or in flight).
    #[must_use]
    pub fn uncommitted(&self) -> u64 {
        self.next_serial - self.committed_prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(shard: u32, wl: u64, version: u64, first: u64, count: u32) -> BatchReply {
        BatchReply {
            shard: ShardId(shard),
            world_line: WorldLine(wl),
            version: Version(version),
            first_serial: first,
            op_count: count,
        }
    }

    #[test]
    fn batch_headers_carry_version_clock_and_deps() {
        let mut s = DprClientSession::new(SessionId(1));
        let h = s.begin_batch(ShardId(0), 4).unwrap();
        assert_eq!(h.first_serial, 0);
        assert_eq!(h.version_lower_bound, Version::ZERO);
        assert!(h.deps.is_empty());
        s.process_reply(&reply(0, 0, 3, 0, 4)).unwrap();
        // Next batch to shard 1 carries Vs = 3 and a dep on shard 0.
        let h = s.begin_batch(ShardId(1), 2).unwrap();
        assert_eq!(h.first_serial, 4);
        assert_eq!(h.version_lower_bound, Version(3));
        assert_eq!(h.deps, vec![Token::new(ShardId(0), Version(3))]);
    }

    #[test]
    fn committed_prefix_respects_cut() {
        let mut s = DprClientSession::new(SessionId(1));
        s.begin_batch(ShardId(0), 2).unwrap();
        s.process_reply(&reply(0, 0, 1, 0, 2)).unwrap();
        s.begin_batch(ShardId(1), 2).unwrap();
        s.process_reply(&reply(1, 0, 2, 2, 2)).unwrap();
        // Cut covers shard 0 v1 but not shard 1 v2.
        let cut: Cut = [(ShardId(0), Version(1)), (ShardId(1), Version(1))]
            .into_iter()
            .collect();
        assert_eq!(s.refresh_commit(&cut), 2);
        // Cut catches up.
        let cut: Cut = [(ShardId(0), Version(1)), (ShardId(1), Version(2))]
            .into_iter()
            .collect();
        assert_eq!(s.refresh_commit(&cut), 4);
        assert_eq!(s.uncommitted(), 0);
    }

    #[test]
    fn in_flight_gap_stops_prefix() {
        let mut s = DprClientSession::new(SessionId(1));
        s.begin_batch(ShardId(0), 1).unwrap(); // serial 0, reply delayed
        s.begin_batch(ShardId(1), 1).unwrap(); // serial 1
        s.process_reply(&reply(1, 0, 1, 1, 1)).unwrap();
        let cut: Cut = [(ShardId(0), Version(9)), (ShardId(1), Version(9))]
            .into_iter()
            .collect();
        assert_eq!(s.refresh_commit(&cut), 0, "serial 0 still in flight");
        s.process_reply(&reply(0, 0, 1, 0, 1)).unwrap();
        assert_eq!(s.refresh_commit(&cut), 2);
    }

    #[test]
    fn world_line_bump_forces_recovery() {
        let mut s = DprClientSession::new(SessionId(1));
        s.begin_batch(ShardId(0), 2).unwrap();
        s.process_reply(&reply(0, 0, 1, 0, 2)).unwrap();
        s.begin_batch(ShardId(0), 2).unwrap();
        // The shard replies on world-line 1: failure happened.
        let err = s.process_reply(&reply(0, 1, 2, 2, 2)).unwrap_err();
        assert!(matches!(err, DprError::WorldLineMismatch { .. }));
        assert!(matches!(s.status(), SessionStatus::NeedsRecovery { .. }));
        // New batches are refused until the failure is handled.
        assert!(s.begin_batch(ShardId(0), 1).is_err());
        // Recovery: cut says shard 0 committed v1 — first 2 ops survive.
        let cut: Cut = [(ShardId(0), Version(1))].into_iter().collect();
        let survived = s.handle_failure(WorldLine(1), &cut);
        assert_eq!(survived, 2);
        assert_eq!(s.world_line(), WorldLine(1));
        assert_eq!(s.status(), SessionStatus::Active);
        // Operations resume on the new world-line.
        let h = s.begin_batch(ShardId(0), 1).unwrap();
        assert_eq!(h.world_line, WorldLine(1));
        assert_eq!(
            h.version_lower_bound,
            Version(1),
            "clock rolled back to cut"
        );
    }

    #[test]
    fn reply_from_lagging_shard_is_retryable() {
        let mut s = DprClientSession::on_world_line(SessionId(1), WorldLine(2));
        s.begin_batch(ShardId(0), 1).unwrap();
        let err = s.process_reply(&reply(0, 1, 1, 0, 1)).unwrap_err();
        assert!(matches!(err, DprError::Recovering));
        assert_eq!(s.status(), SessionStatus::Active, "no recovery needed");
    }

    #[test]
    fn dependency_vector_tracks_max_per_shard() {
        let mut s = DprClientSession::new(SessionId(1));
        s.begin_batch(ShardId(0), 1).unwrap();
        s.process_reply(&reply(0, 0, 5, 0, 1)).unwrap();
        s.begin_batch(ShardId(0), 1).unwrap();
        s.process_reply(&reply(0, 0, 3, 1, 1)).unwrap(); // stale lower version
        let h = s.begin_batch(ShardId(1), 1).unwrap();
        assert_eq!(h.deps, vec![Token::new(ShardId(0), Version(5))]);
        assert_eq!(h.version_lower_bound, Version(5));
    }
}
