//! DPR-cut finding (§3.3–3.4, Fig. 4).
//!
//! Three algorithms with an accuracy/scalability trade-off:
//!
//! * [`ExactFinder`] persists the full precedence graph in the metadata
//!   store and computes maximal transitive closures — precise, but the graph
//!   write traffic can bottleneck very large clusters.
//! * [`ApproximateFinder`] persists only committed version numbers; the cut
//!   is everything at or below the cluster-wide minimum version (`Vmin`),
//!   correct because the version clock makes dependencies monotone (§3.2).
//!   `Vmax` lets lagging shards fast-forward and catch up in bounded time.
//! * [`HybridFinder`] keeps the exact graph *in memory only* and uses the
//!   approximate algorithm as its fault-tolerant floor: after a coordinator
//!   crash, the cut keeps advancing at approximate precision until it passes
//!   the lost subgraph, then exact precision resumes.

use dpr_core::{Result, ShardId, Token, Version};
use dpr_metadata::{Cut, MetadataStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Record the cut lag (`Vmax - min(Vsafe)`, the §3.4 fast-forward
/// pressure): how far the persisted frontier has run ahead of the published
/// cut. Sampled at the *start* of each refresh, against the cut the previous
/// refresh published — i.e. the gap this refresh is about to close, which is
/// the lag clients actually observe between refreshes. Goes through the
/// store's **uncharged** [`MetadataStore::telemetry_frontier`] path, so
/// enabling telemetry never inflates the `statements/version` protocol-cost
/// metric; errors are swallowed — the metric is best-effort.
fn observe_cut_lag(meta: &dyn MetadataStore) {
    if !dpr_telemetry::enabled() {
        return;
    }
    let Ok((vmax, cut)) = meta.telemetry_frontier() else {
        return;
    };
    let vmax = vmax.unwrap_or(Version::ZERO);
    let vsafe = cut.values().min().copied().unwrap_or(Version::ZERO);
    let lag = vmax.0.saturating_sub(vsafe.0);
    crate::metrics::cut_lag().record(lag);
}

/// The cut-finding service interface.
///
/// Shards call [`DprFinder::report_commit`] after each local commit; a
/// periodic [`DprFinder::refresh`] advances the durable cut; clients and
/// workers read it with [`DprFinder::current_cut`].
pub trait DprFinder: Send + Sync {
    /// Report a locally committed version and its cross-shard dependencies.
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()>;

    /// Report a *group* of locally committed versions in one shot.
    ///
    /// This is the batched-metadata half of the scalable gate (§6): when the
    /// server drain has several sealed versions queued, reporting them
    /// together costs O(1) metadata round trips instead of one per version.
    /// The default implementation falls back to per-commit reporting for
    /// finders without a batched path.
    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        for (token, deps) in reports {
            self.report_commit(token, deps)?;
        }
        Ok(())
    }

    /// Recompute and persist the DPR cut (the coordinator pass). A no-op
    /// while cluster recovery has progress halted.
    fn refresh(&self) -> Result<()>;

    /// The current guaranteed cut.
    fn current_cut(&self) -> Result<Cut>;

    /// The largest committed version in the cluster (`Vmax`), used to
    /// fast-forward lagging shards (§3.4).
    fn max_version(&self) -> Result<Version>;
}

/// Collapse a group of commit reports to one DPR-table row per shard (the
/// max committed version), the payload of the single batched
/// `update_persisted_versions` statement. Per-shard max is lossless here
/// because persisted versions are monotone.
fn max_versions_per_shard(reports: &[(Token, Vec<Token>)]) -> Vec<(ShardId, Version)> {
    let mut rows: BTreeMap<ShardId, Version> = BTreeMap::new();
    for (token, _) in reports {
        let e = rows.entry(token.shard).or_insert(Version::ZERO);
        *e = (*e).max(token.version);
    }
    rows.into_iter().collect()
}

/// Compute the maximal dependency-closed cut from a precedence graph.
///
/// `floor` is a known-valid cut (never regressed below); `graph` maps each
/// committed token to its dependency tokens. A token may be included iff all
/// its dependencies are at or below the chosen cut; the fixpoint lowers each
/// shard's candidate until closure holds.
///
/// Shards whose floor has not yet passed `lost_ceiling` are pinned at the
/// floor: the graph may be missing entries for their versions at or below
/// the ceiling (a crashed coordinator, §3.4), so their dependency sets
/// cannot be trusted. Pass an empty ceiling for the uncapped closure.
///
/// This is the reference ("full recompute") algorithm — the property-test
/// oracle that [`CutEngine`] in [`CutEngineMode::Delta`] must agree with.
#[must_use]
pub fn compute_closure_cut_capped(
    graph: &BTreeMap<Token, Vec<Token>>,
    floor: &Cut,
    lost_ceiling: &Cut,
) -> Cut {
    use std::ops::Bound;
    let mut cut = floor.clone();
    // Candidates start at each shard's max committed version — except
    // shards with a possibly-lost subgraph, which stay at the floor. Tokens
    // sort shard-major, so each shard's entries are contiguous: a skip-scan
    // visits one `range` per *shard* (O(shards · log n)) instead of every
    // token, and the floor/ceiling pin check runs once per shard rather
    // than once per token.
    let mut next = graph.keys().next().copied();
    while let Some(first) = next {
        let shard = first.shard;
        let shard_max = Token::new(shard, Version(u64::MAX));
        let last = *graph
            .range(first..=shard_max)
            .next_back()
            .expect("range contains `first`")
            .0;
        next = graph
            .range((Bound::Excluded(shard_max), Bound::Unbounded))
            .next()
            .map(|(t, _)| *t);
        let floor_v = floor.get(&shard).copied().unwrap_or(Version::ZERO);
        let ceiling = lost_ceiling.get(&shard).copied().unwrap_or(Version::ZERO);
        if floor_v < ceiling {
            continue;
        }
        let e = cut.entry(shard).or_insert(Version::ZERO);
        *e = (*e).max(last.version);
    }
    loop {
        let mut changed = false;
        for (token, deps) in graph {
            let current = cut.get(&token.shard).copied().unwrap_or(Version::ZERO);
            let floor_v = floor.get(&token.shard).copied().unwrap_or(Version::ZERO);
            if token.version <= floor_v || token.version > current {
                continue;
            }
            let unsatisfied = deps
                .iter()
                .any(|d| d.version > cut.get(&d.shard).copied().unwrap_or(Version::ZERO));
            if unsatisfied {
                // Exclude this token (and implicitly everything above it on
                // this shard).
                let lowered = Version(token.version.0 - 1).max(floor_v);
                if lowered < current {
                    cut.insert(token.shard, lowered);
                    changed = true;
                }
            }
        }
        if !changed {
            return cut;
        }
    }
}

/// How a [`CutEngine`] computes cuts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CutEngineMode {
    /// Incremental delta closure (the default): the engine keeps only the
    /// *pending* subgraph — tokens above the last committed cut — and runs
    /// the lowering fixpoint over it in place, with **zero full-graph
    /// clones** on the refresh hot path. Work per refresh is bounded by the
    /// cut lag, not by history.
    #[default]
    Delta,
    /// Full recompute over the complete reported history: the engine never
    /// prunes its graph and clones it for every pass (the legacy cost
    /// model). Retained behind this flag as the property-test **oracle**
    /// the delta engine must agree with, and as the bench baseline.
    FullRecompute,
}

/// The shared cut-computation core of [`ExactFinder`] and [`HybridFinder`].
///
/// Two structural properties matter beyond raw speed:
///
/// * **No lost reports.** Commit reports land in a *mailbox* (its own
///   lock), never directly in the closure graph. A compute pass drains the
///   mailbox into the graph and runs the fixpoint under one graph-lock
///   hold; [`CutEngine::commit`] prunes only tokens that participated in a
///   pass. A report racing a refresh therefore either joins this pass or
///   waits intact in the mailbox for the next one — the
///   snapshot-then-retain window of the old `HybridFinder::refresh`
///   (where a racing report could be pruned without ever being
///   closure-checked) no longer exists.
/// * **Delta ≡ full recompute.** Pruning tokens at or below a *published*
///   cut `C` preserves the fixpoint: the store's cut is monotone, so every
///   later floor satisfies `floor ≥ read_cut ≥ C`, which means (a) a pruned
///   token's own closure check is skipped anyway (`version ≤ floor`), and
///   (b) its contribution to candidate seeding is dominated by the floor.
///   Note an *incremental admission* scheme would **not** be equivalent:
///   mutually dependent same-version tokens (A:1 ⇄ B:1) are admitted
///   atomically by the lowering fixpoint but never one-at-a-time — which is
///   why the delta engine re-runs the fixpoint over the pending subgraph
///   instead of raising the cut edge by edge. `tests/cut_properties.rs`
///   checks the equivalence against [`compute_closure_cut_capped`] over
///   random graphs, prune interleavings, and lost-ceiling caps.
pub struct CutEngine {
    mode: CutEngineMode,
    /// Incoming reports; appended by the report hot path without ever
    /// contending with a running closure pass.
    mailbox: Mutex<Vec<(Token, Vec<Token>)>>,
    /// The closure graph: pending-only in [`CutEngineMode::Delta`], the
    /// complete history in [`CutEngineMode::FullRecompute`].
    graph: Mutex<BTreeMap<Token, Vec<Token>>>,
    /// Whole-graph clones performed by compute passes — always `0` in
    /// [`CutEngineMode::Delta`]; the `meta_scaling` bench asserts that.
    clones: AtomicU64,
}

impl CutEngine {
    /// An empty engine.
    #[must_use]
    pub fn new(mode: CutEngineMode) -> Self {
        CutEngine {
            mode,
            mailbox: Mutex::new(Vec::new()),
            graph: Mutex::new(BTreeMap::new()),
            clones: AtomicU64::new(0),
        }
    }

    /// The engine's compute mode.
    #[must_use]
    pub fn mode(&self) -> CutEngineMode {
        self.mode
    }

    /// Enqueue one commit report.
    pub fn ingest_one(&self, token: Token, deps: Vec<Token>) {
        self.mailbox.lock().push((token, deps));
    }

    /// Enqueue a group of commit reports.
    pub fn ingest(&self, reports: Vec<(Token, Vec<Token>)>) {
        self.mailbox.lock().extend(reports);
    }

    /// Load entries straight into the closure graph (initial seeding from a
    /// durable snapshot; a restarted coordinator resumes from what the
    /// store kept).
    pub fn seed(&self, entries: Vec<(Token, Vec<Token>)>) {
        self.graph.lock().extend(entries);
    }

    /// Drain the mailbox and compute the maximal closed cut over the graph,
    /// capped by `lost_ceiling` (see [`compute_closure_cut_capped`]).
    #[must_use]
    pub fn compute(&self, floor: &Cut, lost_ceiling: &Cut) -> Cut {
        let mut graph = self.graph.lock();
        {
            let mut mailbox = self.mailbox.lock();
            if !mailbox.is_empty() {
                for (token, deps) in mailbox.drain(..) {
                    graph.insert(token, deps);
                }
            }
        }
        crate::metrics::delta_pending_tokens().set(graph.len() as i64);
        match self.mode {
            CutEngineMode::Delta => compute_closure_cut_capped(&graph, floor, lost_ceiling),
            CutEngineMode::FullRecompute => {
                // Legacy cost model: snapshot the whole graph, compute on
                // the clone.
                self.clones.fetch_add(1, Ordering::Relaxed);
                let snapshot = graph.clone();
                drop(graph);
                compute_closure_cut_capped(&snapshot, floor, lost_ceiling)
            }
        }
    }

    /// Acknowledge a **published** cut: drop graph tokens at or below it.
    /// Only sound for cuts that actually reached the store (publication
    /// makes every later floor dominate them — see the type docs); callers
    /// must skip this when `update_cut_atomically` fails.
    pub fn commit(&self, cut: &Cut) {
        if self.mode == CutEngineMode::FullRecompute {
            return; // the oracle keeps the complete history
        }
        let mut graph = self.graph.lock();
        graph.retain(|t, _| cut.get(&t.shard).copied().unwrap_or(Version::ZERO) < t.version);
        crate::metrics::delta_pending_tokens().set(graph.len() as i64);
    }

    /// Forget everything (coordinator crash: the in-memory graph is lost).
    pub fn clear(&self) {
        self.mailbox.lock().clear();
        self.graph.lock().clear();
        crate::metrics::delta_pending_tokens().set(0);
    }

    /// Tokens currently held (graph + undrained mailbox) — the delta
    /// engine's working-set size, bounded by cut lag in
    /// [`CutEngineMode::Delta`].
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.graph.lock().len() + self.mailbox.lock().len()
    }

    /// Whole-graph clones performed so far (refresh hot-path cost witness:
    /// [`CutEngineMode::Delta`] never clones).
    #[must_use]
    pub fn full_graph_clones(&self) -> u64 {
        self.clones.load(Ordering::Relaxed)
    }
}

/// The exact algorithm: durable precedence graph + coordinator traversal.
pub struct ExactFinder {
    meta: Arc<dyn MetadataStore>,
    engine: CutEngine,
}

impl ExactFinder {
    /// Finder over the shared metadata store, with the incremental
    /// delta-closure engine.
    pub fn new(meta: Arc<dyn MetadataStore>) -> Self {
        Self::with_mode(meta, CutEngineMode::Delta)
    }

    /// Finder with an explicit [`CutEngineMode`] (tests and benches pick
    /// [`CutEngineMode::FullRecompute`] as the oracle/baseline).
    pub fn with_mode(meta: Arc<dyn MetadataStore>, mode: CutEngineMode) -> Self {
        let engine = CutEngine::new(mode);
        // One durable snapshot at construction seeds the in-memory mirror;
        // afterwards the refresh path never re-reads the graph table.
        if let Ok(snapshot) = meta.graph_snapshot() {
            engine.seed(snapshot);
        }
        ExactFinder { meta, engine }
    }
}

impl DprFinder for ExactFinder {
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        // Also maintain the DPR table so Vmax and membership stay accurate.
        crate::metrics::graph_dep_tokens().add(deps.len() as u64);
        crate::audit::commit_reported(token, &deps);
        self.meta
            .update_persisted_version(token.shard, token.version)?;
        self.meta.add_graph_version(token, deps.clone())?;
        self.engine.ingest_one(token, deps);
        Ok(())
    }

    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        if reports.is_empty() {
            return Ok(());
        }
        crate::metrics::graph_dep_tokens().add(reports.iter().map(|(_, d)| d.len() as u64).sum());
        if crate::audit::enabled() {
            for (token, deps) in &reports {
                crate::audit::commit_reported(*token, deps);
            }
        }
        // One DPR-table statement (max version per shard) + one graph insert.
        self.meta
            .update_persisted_versions(&max_versions_per_shard(&reports))?;
        self.meta.add_graph_versions(reports.clone())?;
        self.engine.ingest(reports);
        Ok(())
    }

    fn refresh(&self) -> Result<()> {
        let _timer = crate::metrics::finder_refresh().start_timer();
        observe_cut_lag(&*self.meta);
        let floor = self.meta.read_cut()?;
        let cut = self.engine.compute(&floor, &Cut::new());
        match self.meta.update_cut_atomically(cut.clone()) {
            Ok(()) => {
                crate::audit::cut_published(&cut);
                self.engine.commit(&cut);
                self.meta.prune_graph_below(&cut)?;
                Ok(())
            }
            Err(dpr_core::DprError::Recovering) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn current_cut(&self) -> Result<Cut> {
        self.meta.read_cut()
    }

    fn max_version(&self) -> Result<Version> {
        Ok(self.meta.max_persisted_version()?.unwrap_or(Version::ZERO))
    }
}

/// The approximate algorithm: `SELECT min(persistedVersion) FROM dpr`.
///
/// ```
/// use libdpr::{ApproximateFinder, DprFinder};
/// use dpr_metadata::{MetadataStore, SimulatedSqlStore};
/// use dpr_core::{ShardId, Token, Version};
/// use std::sync::Arc;
///
/// let meta = Arc::new(SimulatedSqlStore::new());
/// meta.register_worker(ShardId(0)).unwrap();
/// meta.register_worker(ShardId(1)).unwrap();
/// let finder = ApproximateFinder::new(meta);
/// finder.report_commit(Token::new(ShardId(0), Version(3)), vec![]).unwrap();
/// finder.report_commit(Token::new(ShardId(1), Version(5)), vec![]).unwrap();
/// finder.refresh().unwrap();
/// // The cut is Vmin for everyone; Vmax drives fast-forwarding.
/// assert_eq!(finder.current_cut().unwrap()[&ShardId(1)], Version(3));
/// assert_eq!(finder.max_version().unwrap(), Version(5));
/// ```
pub struct ApproximateFinder {
    meta: Arc<dyn MetadataStore>,
}

impl ApproximateFinder {
    /// Finder over the shared metadata store.
    pub fn new(meta: Arc<dyn MetadataStore>) -> Self {
        ApproximateFinder { meta }
    }

    fn min_cut(&self) -> Result<Cut> {
        let vmin = self.meta.min_persisted_version()?.unwrap_or(Version::ZERO);
        Ok(self
            .meta
            .members()?
            .into_iter()
            .map(|s| (s, vmin))
            .collect())
    }
}

impl DprFinder for ApproximateFinder {
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        // Dependency information is discarded — monotonicity makes Vmin
        // safe — but the audit tap still sees it so the chaos checker can
        // verify the published cut is closed under the *real* dependencies.
        crate::audit::commit_reported(token, &deps);
        self.meta
            .update_persisted_version(token.shard, token.version)
    }

    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        if reports.is_empty() {
            return Ok(());
        }
        if crate::audit::enabled() {
            for (token, deps) in &reports {
                crate::audit::commit_reported(*token, deps);
            }
        }
        self.meta
            .update_persisted_versions(&max_versions_per_shard(&reports))
    }

    fn refresh(&self) -> Result<()> {
        let _timer = crate::metrics::finder_refresh().start_timer();
        observe_cut_lag(&*self.meta);
        let cut = self.min_cut()?;
        let audited = crate::audit::enabled().then(|| cut.clone());
        match self.meta.update_cut_atomically(cut) {
            Ok(()) => {
                if let Some(cut) = audited {
                    crate::audit::cut_published(&cut);
                }
                Ok(())
            }
            Err(dpr_core::DprError::Recovering) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn current_cut(&self) -> Result<Cut> {
        self.meta.read_cut()
    }

    fn max_version(&self) -> Result<Version> {
        Ok(self.meta.max_persisted_version()?.unwrap_or(Version::ZERO))
    }
}

/// The hybrid: exact precision from an in-memory graph, approximate floor
/// for fault tolerance (§3.4).
pub struct HybridFinder {
    meta: Arc<dyn MetadataStore>,
    approx: ApproximateFinder,
    engine: CutEngine,
    /// Per shard, the highest version whose graph entry may have been lost
    /// (coordinator crash/restart). The exact component may not advance a
    /// shard past its floor until the floor passes this ceiling — the
    /// coordinator "cannot be certain of its dependency set in the lost
    /// subgraph" (§3.4).
    lost_ceiling: Mutex<Cut>,
}

impl HybridFinder {
    /// Finder over the shared metadata store, with the incremental
    /// delta-closure engine. A freshly constructed coordinator treats
    /// everything already persisted as possibly-lost (it has no graph for
    /// it), so a restarted coordinator is safe by construction.
    pub fn new(meta: Arc<dyn MetadataStore>) -> Self {
        Self::with_mode(meta, CutEngineMode::Delta)
    }

    /// Finder with an explicit [`CutEngineMode`] (tests and benches pick
    /// [`CutEngineMode::FullRecompute`] as the oracle/baseline).
    pub fn with_mode(meta: Arc<dyn MetadataStore>, mode: CutEngineMode) -> Self {
        let lost_ceiling = meta.persisted_versions().unwrap_or_default();
        HybridFinder {
            approx: ApproximateFinder::new(meta.clone()),
            meta,
            engine: CutEngine::new(mode),
            lost_ceiling: Mutex::new(lost_ceiling),
        }
    }

    /// Simulate a coordinator crash: the in-memory precedence graph is lost.
    /// The cut keeps advancing via the approximate floor, and exact
    /// precision resumes per shard once the floor passes the lost region.
    pub fn simulate_coordinator_crash(&self) {
        self.engine.clear();
        *self.lost_ceiling.lock() = self.meta.persisted_versions().unwrap_or_default();
    }

    /// Tokens the delta engine currently holds (graph + mailbox) — exposed
    /// for the `meta_scaling` bench's working-set report.
    #[must_use]
    pub fn pending_tokens(&self) -> usize {
        self.engine.pending_len()
    }

    /// Whole-graph clones the engine has performed (see
    /// [`CutEngine::full_graph_clones`]).
    #[must_use]
    pub fn full_graph_clones(&self) -> u64 {
        self.engine.full_graph_clones()
    }
}

impl DprFinder for HybridFinder {
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        // In-memory graph only, but the write volume is still the signal the
        // hybrid exists to reduce durably (§3.4).
        crate::metrics::graph_dep_tokens().add(deps.len() as u64);
        crate::audit::commit_reported(token, &deps);
        self.meta
            .update_persisted_version(token.shard, token.version)?;
        self.engine.ingest_one(token, deps);
        Ok(())
    }

    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        if reports.is_empty() {
            return Ok(());
        }
        crate::metrics::graph_dep_tokens().add(reports.iter().map(|(_, d)| d.len() as u64).sum());
        if crate::audit::enabled() {
            for (token, deps) in &reports {
                crate::audit::commit_reported(*token, deps);
            }
        }
        // One durable statement for the whole group; the graph is in-memory.
        self.meta
            .update_persisted_versions(&max_versions_per_shard(&reports))?;
        self.engine.ingest(reports);
        Ok(())
    }

    fn refresh(&self) -> Result<()> {
        let _timer = crate::metrics::finder_refresh().start_timer();
        observe_cut_lag(&*self.meta);
        // Approximate floor first (durable, crash-safe)...
        let approx_floor = self.approx.min_cut()?;
        let mut floor = self.meta.read_cut()?;
        for (s, v) in approx_floor {
            let e = floor.entry(s).or_insert(Version::ZERO);
            *e = (*e).max(v);
        }
        // ...then exact refinement over the engine's pending subgraph,
        // holding back shards whose lost subgraph the floor has not yet
        // cleared. Commit reporting (the per-batch hot path) lands in the
        // engine mailbox and is never blocked behind the fixpoint; a report
        // racing this pass either joins it or waits intact for the next —
        // nothing is pruned without being closure-checked.
        let ceiling = self.lost_ceiling.lock().clone();
        let cut = self.engine.compute(&floor, &ceiling);
        let audited = crate::audit::enabled().then(|| cut.clone());
        match self.meta.update_cut_atomically(cut.clone()) {
            Ok(()) => {
                if let Some(cut) = audited {
                    crate::audit::cut_published(&cut);
                }
                self.engine.commit(&cut);
                Ok(())
            }
            Err(dpr_core::DprError::Recovering) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn current_cut(&self) -> Result<Cut> {
        self.meta.read_cut()
    }

    fn max_version(&self) -> Result<Version> {
        Ok(self.meta.max_persisted_version()?.unwrap_or(Version::ZERO))
    }
}

/// Check that `cut` is closed under the dependency relation of `graph` —
/// the defining property of a DPR cut (Definition 3.1). Exposed for tests
/// and property checks.
#[must_use]
pub fn cut_is_closed(graph: &BTreeMap<Token, Vec<Token>>, cut: &Cut) -> bool {
    graph.iter().all(|(token, deps)| {
        let included = token.version <= cut.get(&token.shard).copied().unwrap_or(Version::ZERO);
        !included
            || deps
                .iter()
                .all(|d| d.version <= cut.get(&d.shard).copied().unwrap_or(Version::ZERO))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::ShardId;
    use dpr_metadata::SimulatedSqlStore;

    fn t(s: u32, v: u64) -> Token {
        Token::new(ShardId(s), Version(v))
    }

    fn setup(shards: u32) -> (Arc<SimulatedSqlStore>, Vec<ShardId>) {
        let meta = Arc::new(SimulatedSqlStore::new());
        let ids: Vec<ShardId> = (0..shards).map(ShardId).collect();
        for &s in &ids {
            meta.register_worker(s).unwrap();
        }
        (meta, ids)
    }

    #[test]
    fn fig3_staggered_commits_never_form_a_cut() {
        // The Fig. 3 counter-example: every token depends on a future token
        // of the other shard, so no non-trivial cut exists.
        let (meta, _) = setup(2);
        let finder = ExactFinder::new(meta);
        finder.report_commit(t(0, 1), vec![t(1, 1)]).unwrap();
        finder.report_commit(t(1, 1), vec![t(0, 2)]).unwrap();
        finder.report_commit(t(0, 2), vec![t(1, 2)]).unwrap();
        finder.report_commit(t(1, 2), vec![t(0, 3)]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version::ZERO);
        assert_eq!(cut[&ShardId(1)], Version::ZERO);
    }

    #[test]
    fn monotone_dependencies_allow_progress() {
        // With the §3.2 version clock, dependencies never point upward, so
        // the cut advances.
        let (meta, _) = setup(2);
        let finder = ExactFinder::new(meta);
        finder.report_commit(t(0, 1), vec![]).unwrap();
        finder.report_commit(t(1, 1), vec![t(0, 1)]).unwrap();
        finder.report_commit(t(0, 2), vec![t(1, 1)]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(2));
        assert_eq!(cut[&ShardId(1)], Version(1));
    }

    #[test]
    fn exact_excludes_tokens_with_uncommitted_deps() {
        let (meta, _) = setup(2);
        let finder = ExactFinder::new(meta);
        // Shard 0 committed v1, v2; v2 depends on shard 1's v1 which has
        // NOT committed yet.
        finder.report_commit(t(0, 1), vec![]).unwrap();
        finder.report_commit(t(0, 2), vec![t(1, 1)]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(1), "v2 held back");
        assert_eq!(cut[&ShardId(1)], Version::ZERO);
        // Once shard 1 commits, v2 is admitted.
        finder.report_commit(t(1, 1), vec![]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(2));
        assert_eq!(cut[&ShardId(1)], Version(1));
    }

    #[test]
    fn exact_prunes_graph_below_cut() {
        let (meta, _) = setup(1);
        let finder = ExactFinder::new(meta.clone());
        finder.report_commit(t(0, 1), vec![]).unwrap();
        finder.report_commit(t(0, 2), vec![]).unwrap();
        finder.refresh().unwrap();
        assert!(
            meta.graph_snapshot().unwrap().is_empty(),
            "all committed → pruned"
        );
    }

    #[test]
    fn approximate_cut_is_vmin_everywhere() {
        let (meta, _) = setup(3);
        let finder = ApproximateFinder::new(meta);
        finder.report_commit(t(0, 3), vec![]).unwrap();
        finder.report_commit(t(1, 5), vec![]).unwrap();
        finder.report_commit(t(2, 4), vec![]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        for s in 0..3 {
            assert_eq!(cut[&ShardId(s)], Version(3));
        }
        assert_eq!(finder.max_version().unwrap(), Version(5));
    }

    #[test]
    fn approximate_false_dependency_holds_back_fast_shard() {
        // The §3.4 caveat: a slow shard drags everyone to its pace.
        let (meta, _) = setup(2);
        let finder = ApproximateFinder::new(meta);
        finder.report_commit(t(0, 10), vec![]).unwrap();
        // Shard 1 never commits (version 0).
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version::ZERO, "held hostage by shard 1");
    }

    #[test]
    fn hybrid_survives_coordinator_crash_via_approximate_floor() {
        let (meta, _) = setup(2);
        let finder = HybridFinder::new(meta);
        finder.report_commit(t(0, 1), vec![]).unwrap();
        finder.report_commit(t(1, 1), vec![t(0, 1)]).unwrap();
        finder.refresh().unwrap();
        assert_eq!(finder.current_cut().unwrap()[&ShardId(1)], Version(1));
        // Coordinator crashes; the in-memory graph is lost.
        finder.simulate_coordinator_crash();
        // New commits arrive whose deps reference the lost subgraph region.
        finder.report_commit(t(0, 3), vec![t(1, 2)]).unwrap();
        finder.report_commit(t(1, 2), vec![t(0, 2)]).unwrap();
        // t(0,2)'s graph entry was lost before ever being reported — but
        // shard 0's persisted version (3) floors Vmin handling.
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        // Approximate floor: Vmin = min(3, 2) = 2 → both shards at ≥ 2.
        assert!(cut[&ShardId(0)] >= Version(2));
        assert!(cut[&ShardId(1)] >= Version(2));
    }

    #[test]
    fn hybrid_is_exact_in_failure_free_operation() {
        let (meta, _) = setup(2);
        let finder = HybridFinder::new(meta);
        // Shard 0 is far ahead; approximate alone would hold it at Vmin=1,
        // but the exact graph shows no dependencies, so it advances.
        finder.report_commit(t(0, 5), vec![]).unwrap();
        finder.report_commit(t(1, 1), vec![]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(5), "exact precision preserved");
        assert_eq!(cut[&ShardId(1)], Version(1));
    }

    #[test]
    fn grouped_reports_match_sequential_reports_for_every_finder() {
        // The batched path must produce the same cut the per-commit path
        // would; Exact/Hybrid keep dependency precision, Approximate keeps
        // Vmin semantics.
        let reports = vec![
            (t(0, 1), vec![]),
            (t(1, 1), vec![t(0, 1)]),
            (t(0, 2), vec![t(1, 1)]),
        ];
        type MakeFinder = fn(Arc<SimulatedSqlStore>) -> Box<dyn DprFinder>;
        // (constructor, expected shard-0 cut: Approximate stays at Vmin=1,
        // the graph-bearing finders reach the exact 2).
        let make: [(MakeFinder, Version); 3] = [
            (|m| Box::new(ExactFinder::new(m)), Version(2)),
            (|m| Box::new(ApproximateFinder::new(m)), Version(1)),
            (|m| Box::new(HybridFinder::new(m)), Version(2)),
        ];
        for (mk, expected) in make {
            let (meta_seq, _) = setup(2);
            let seq = mk(meta_seq);
            for (tok, deps) in reports.clone() {
                seq.report_commit(tok, deps).unwrap();
            }
            seq.refresh().unwrap();

            let (meta_grp, _) = setup(2);
            let grp = mk(meta_grp.clone());
            let before = meta_grp.statement_count();
            grp.report_commits(reports.clone()).unwrap();
            assert!(
                meta_grp.statement_count() - before <= 2,
                "a grouped report is O(1) statements, not one per commit"
            );
            grp.refresh().unwrap();

            assert_eq!(seq.current_cut().unwrap(), grp.current_cut().unwrap());
            assert_eq!(grp.current_cut().unwrap()[&ShardId(0)], expected);
        }
    }

    #[test]
    fn grouped_report_held_back_like_sequential_when_dep_missing() {
        let (meta, _) = setup(2);
        let finder = ExactFinder::new(meta);
        // v2 depends on shard 1's v1, which never arrives in this group.
        finder
            .report_commits(vec![(t(0, 1), vec![]), (t(0, 2), vec![t(1, 1)])])
            .unwrap();
        finder.refresh().unwrap();
        assert_eq!(finder.current_cut().unwrap()[&ShardId(0)], Version(1));
    }

    /// Satellite fix: the seeding pass pins a shard at the floor while the
    /// floor is below its lost ceiling, and releases it the moment the
    /// floor passes the ceiling mid-refresh-cycle — with the pin check now
    /// hoisted to once per shard, both sides must still hold.
    #[test]
    fn capped_seeding_pins_until_floor_passes_lost_ceiling() {
        let graph: BTreeMap<Token, Vec<Token>> =
            [(t(0, 5), vec![]), (t(0, 6), vec![]), (t(1, 4), vec![])]
                .into_iter()
                .collect();
        let ceiling: Cut = [(ShardId(0), Version(4))].into_iter().collect();

        // Floor below the ceiling: shard 0 pinned at its floor even though
        // the graph reaches v6; shard 1 (no ceiling) seeds freely.
        let floor: Cut = [(ShardId(0), Version(2)), (ShardId(1), Version(1))]
            .into_iter()
            .collect();
        let cut = compute_closure_cut_capped(&graph, &floor, &ceiling);
        assert_eq!(cut[&ShardId(0)], Version(2), "pinned at the floor");
        assert_eq!(cut[&ShardId(1)], Version(4));

        // The floor passes the ceiling (the approximate component caught
        // up between refreshes): the pin releases and exact precision
        // resumes from the graph.
        let floor: Cut = [(ShardId(0), Version(4)), (ShardId(1), Version(1))]
            .into_iter()
            .collect();
        let cut = compute_closure_cut_capped(&graph, &floor, &ceiling);
        assert_eq!(cut[&ShardId(0)], Version(6), "exact precision resumed");
    }

    /// Satellite fix: telemetry reads ride the uncharged
    /// `telemetry_frontier` path, so enabling telemetry must not change the
    /// charged statement count of a refresh (the `statements/version`
    /// headline number).
    #[test]
    fn telemetry_does_not_inflate_charged_statements() {
        let run = |telemetry: bool| -> u64 {
            let (meta, _) = setup(2);
            let finder = HybridFinder::new(meta.clone());
            finder.report_commit(t(0, 1), vec![]).unwrap();
            finder.report_commit(t(1, 1), vec![t(0, 1)]).unwrap();
            let before = meta.statement_count();
            let was = dpr_telemetry::enabled();
            dpr_telemetry::set_enabled(telemetry);
            finder.refresh().unwrap();
            dpr_telemetry::set_enabled(was);
            meta.statement_count() - before
        };
        assert_eq!(
            run(false),
            run(true),
            "telemetry-enabled refresh must charge the same statements"
        );
    }

    /// Delta and full-recompute engines publish identical cuts across
    /// report → refresh → report → refresh cycles (the unit-sized version
    /// of the property test in tests/cut_properties.rs).
    #[test]
    fn delta_and_full_recompute_modes_agree() {
        let rounds: [Vec<(Token, Vec<Token>)>; 3] = [
            vec![(t(0, 1), vec![]), (t(1, 1), vec![t(0, 1)])],
            // Mutually dependent same-version pair: only the lowering
            // fixpoint admits these atomically.
            vec![(t(0, 2), vec![t(1, 2)]), (t(1, 2), vec![t(0, 2)])],
            vec![(t(0, 3), vec![t(1, 2)])],
        ];
        let (meta_d, _) = setup(2);
        let delta = HybridFinder::with_mode(meta_d, CutEngineMode::Delta);
        let (meta_f, _) = setup(2);
        let full = HybridFinder::with_mode(meta_f, CutEngineMode::FullRecompute);
        for round in rounds {
            delta.report_commits(round.clone()).unwrap();
            full.report_commits(round).unwrap();
            delta.refresh().unwrap();
            full.refresh().unwrap();
            assert_eq!(delta.current_cut().unwrap(), full.current_cut().unwrap());
        }
        // The delta engine pruned what it published; the oracle keeps all.
        assert_eq!(delta.pending_tokens(), 0);
    }

    /// The engine never loses a report that races a refresh: a token
    /// sitting in the mailbox during a compute pass survives (un-pruned)
    /// into the next pass and is closure-checked there.
    #[test]
    fn mailbox_report_during_refresh_is_not_lost() {
        let engine = CutEngine::new(CutEngineMode::Delta);
        engine.ingest_one(t(0, 1), vec![]);
        let floor = Cut::new();
        let cut = engine.compute(&floor, &Cut::new());
        // Report lands after the pass but before commit — the old
        // snapshot-then-retain window.
        engine.ingest_one(t(1, 1), vec![t(0, 2)]);
        engine.commit(&cut);
        assert_eq!(cut[&ShardId(0)], Version(1));
        // The racing report is intact and held back by its unmet dep.
        let cut2 = engine.compute(&cut, &Cut::new());
        assert_eq!(cut2.get(&ShardId(1)).copied(), Some(Version::ZERO));
        engine.ingest_one(t(0, 2), vec![]);
        let cut3 = engine.compute(&cut2, &Cut::new());
        assert_eq!(cut3[&ShardId(1)], Version(1));
    }

    /// `ExactFinder` must keep exact semantics on non-monotone graphs with
    /// the delta engine: a restarted coordinator re-seeds its mirror from
    /// the durable graph.
    #[test]
    fn exact_finder_reseeds_mirror_from_durable_graph() {
        let (meta, _) = setup(2);
        {
            let finder = ExactFinder::new(meta.clone());
            finder.report_commit(t(0, 1), vec![]).unwrap();
            finder.report_commit(t(0, 2), vec![t(1, 1)]).unwrap();
            // No refresh: the durable graph still holds both tokens.
        }
        // A new coordinator instance over the same store.
        let finder = ExactFinder::new(meta);
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(1), "v2 held back by unmet dep");
        finder.report_commit(t(1, 1), vec![]).unwrap();
        finder.refresh().unwrap();
        assert_eq!(finder.current_cut().unwrap()[&ShardId(0)], Version(2));
    }

    #[test]
    fn closure_checker_accepts_and_rejects() {
        let graph: BTreeMap<Token, Vec<Token>> = [
            (t(0, 1), vec![]),
            (t(1, 1), vec![t(0, 1)]),
            (t(0, 2), vec![t(1, 2)]),
        ]
        .into_iter()
        .collect();
        let good: Cut = [(ShardId(0), Version(1)), (ShardId(1), Version(1))]
            .into_iter()
            .collect();
        assert!(cut_is_closed(&graph, &good));
        let bad: Cut = [(ShardId(0), Version(2)), (ShardId(1), Version(1))]
            .into_iter()
            .collect();
        assert!(
            !cut_is_closed(&graph, &bad),
            "includes t(0,2) with unmet dep"
        );
    }
}
