//! DPR-cut finding (§3.3–3.4, Fig. 4).
//!
//! Three algorithms with an accuracy/scalability trade-off:
//!
//! * [`ExactFinder`] persists the full precedence graph in the metadata
//!   store and computes maximal transitive closures — precise, but the graph
//!   write traffic can bottleneck very large clusters.
//! * [`ApproximateFinder`] persists only committed version numbers; the cut
//!   is everything at or below the cluster-wide minimum version (`Vmin`),
//!   correct because the version clock makes dependencies monotone (§3.2).
//!   `Vmax` lets lagging shards fast-forward and catch up in bounded time.
//! * [`HybridFinder`] keeps the exact graph *in memory only* and uses the
//!   approximate algorithm as its fault-tolerant floor: after a coordinator
//!   crash, the cut keeps advancing at approximate precision until it passes
//!   the lost subgraph, then exact precision resumes.

use dpr_core::{Result, ShardId, Token, Version};
use dpr_metadata::{Cut, MetadataStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Record the cut lag (`Vmax - min(Vsafe)`, the §3.4 fast-forward
/// pressure): how far the persisted frontier has run ahead of the published
/// cut. Sampled at the *start* of each refresh, against the cut the previous
/// refresh published — i.e. the gap this refresh is about to close, which is
/// the lag clients actually observe between refreshes. The extra metadata
/// reads only happen while telemetry is enabled; errors are swallowed — the
/// metric is best-effort.
fn observe_cut_lag(meta: &dyn MetadataStore) {
    if !dpr_telemetry::enabled() {
        return;
    }
    let vmax = meta
        .max_persisted_version()
        .ok()
        .flatten()
        .unwrap_or(Version::ZERO);
    let vsafe = meta
        .read_cut()
        .ok()
        .and_then(|cut| cut.values().min().copied())
        .unwrap_or(Version::ZERO);
    let lag = vmax.0.saturating_sub(vsafe.0);
    crate::metrics::cut_lag().record(lag);
}

/// The cut-finding service interface.
///
/// Shards call [`DprFinder::report_commit`] after each local commit; a
/// periodic [`DprFinder::refresh`] advances the durable cut; clients and
/// workers read it with [`DprFinder::current_cut`].
pub trait DprFinder: Send + Sync {
    /// Report a locally committed version and its cross-shard dependencies.
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()>;

    /// Report a *group* of locally committed versions in one shot.
    ///
    /// This is the batched-metadata half of the scalable gate (§6): when the
    /// server drain has several sealed versions queued, reporting them
    /// together costs O(1) metadata round trips instead of one per version.
    /// The default implementation falls back to per-commit reporting for
    /// finders without a batched path.
    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        for (token, deps) in reports {
            self.report_commit(token, deps)?;
        }
        Ok(())
    }

    /// Recompute and persist the DPR cut (the coordinator pass). A no-op
    /// while cluster recovery has progress halted.
    fn refresh(&self) -> Result<()>;

    /// The current guaranteed cut.
    fn current_cut(&self) -> Result<Cut>;

    /// The largest committed version in the cluster (`Vmax`), used to
    /// fast-forward lagging shards (§3.4).
    fn max_version(&self) -> Result<Version>;
}

/// Collapse a group of commit reports to one DPR-table row per shard (the
/// max committed version), the payload of the single batched
/// `update_persisted_versions` statement. Per-shard max is lossless here
/// because persisted versions are monotone.
fn max_versions_per_shard(reports: &[(Token, Vec<Token>)]) -> Vec<(ShardId, Version)> {
    let mut rows: BTreeMap<ShardId, Version> = BTreeMap::new();
    for (token, _) in reports {
        let e = rows.entry(token.shard).or_insert(Version::ZERO);
        *e = (*e).max(token.version);
    }
    rows.into_iter().collect()
}

/// Compute the maximal dependency-closed cut from a precedence graph.
///
/// `floor` is a known-valid cut (never regressed below); `graph` maps each
/// committed token to its dependency tokens. A token may be included iff all
/// its dependencies are at or below the chosen cut; the fixpoint lowers each
/// shard's candidate until closure holds.
fn compute_closure_cut(graph: &BTreeMap<Token, Vec<Token>>, floor: &Cut) -> Cut {
    compute_closure_cut_capped(graph, floor, &Cut::new())
}

/// Like [`compute_closure_cut`], but shards whose floor has not yet passed
/// `lost_ceiling` are pinned at the floor: the graph may be missing entries
/// for their versions at or below the ceiling (a crashed coordinator, §3.4),
/// so their dependency sets cannot be trusted.
fn compute_closure_cut_capped(
    graph: &BTreeMap<Token, Vec<Token>>,
    floor: &Cut,
    lost_ceiling: &Cut,
) -> Cut {
    let mut cut = floor.clone();
    // Candidates start at each shard's max committed version — except
    // shards with a possibly-lost subgraph, which stay at the floor.
    for token in graph.keys() {
        let floor_v = floor.get(&token.shard).copied().unwrap_or(Version::ZERO);
        let ceiling = lost_ceiling
            .get(&token.shard)
            .copied()
            .unwrap_or(Version::ZERO);
        if floor_v < ceiling {
            continue;
        }
        let e = cut.entry(token.shard).or_insert(Version::ZERO);
        *e = (*e).max(token.version);
    }
    loop {
        let mut changed = false;
        for (token, deps) in graph {
            let current = cut.get(&token.shard).copied().unwrap_or(Version::ZERO);
            let floor_v = floor.get(&token.shard).copied().unwrap_or(Version::ZERO);
            if token.version <= floor_v || token.version > current {
                continue;
            }
            let unsatisfied = deps
                .iter()
                .any(|d| d.version > cut.get(&d.shard).copied().unwrap_or(Version::ZERO));
            if unsatisfied {
                // Exclude this token (and implicitly everything above it on
                // this shard).
                let lowered = Version(token.version.0 - 1).max(floor_v);
                if lowered < current {
                    cut.insert(token.shard, lowered);
                    changed = true;
                }
            }
        }
        if !changed {
            return cut;
        }
    }
}

/// The exact algorithm: durable precedence graph + coordinator traversal.
pub struct ExactFinder {
    meta: Arc<dyn MetadataStore>,
}

impl ExactFinder {
    /// Finder over the shared metadata store.
    pub fn new(meta: Arc<dyn MetadataStore>) -> Self {
        ExactFinder { meta }
    }
}

impl DprFinder for ExactFinder {
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        // Also maintain the DPR table so Vmax and membership stay accurate.
        crate::metrics::graph_dep_tokens().add(deps.len() as u64);
        crate::audit::commit_reported(token, &deps);
        self.meta
            .update_persisted_version(token.shard, token.version)?;
        self.meta.add_graph_version(token, deps)
    }

    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        if reports.is_empty() {
            return Ok(());
        }
        crate::metrics::graph_dep_tokens().add(reports.iter().map(|(_, d)| d.len() as u64).sum());
        if crate::audit::enabled() {
            for (token, deps) in &reports {
                crate::audit::commit_reported(*token, deps);
            }
        }
        // One DPR-table statement (max version per shard) + one graph insert.
        self.meta
            .update_persisted_versions(&max_versions_per_shard(&reports))?;
        self.meta.add_graph_versions(reports)
    }

    fn refresh(&self) -> Result<()> {
        let _timer = crate::metrics::finder_refresh().start_timer();
        observe_cut_lag(&*self.meta);
        let floor = self.meta.read_cut()?;
        let graph: BTreeMap<Token, Vec<Token>> = self.meta.graph_snapshot()?.into_iter().collect();
        let cut = compute_closure_cut(&graph, &floor);
        match self.meta.update_cut_atomically(cut.clone()) {
            Ok(()) => {
                crate::audit::cut_published(&cut);
                self.meta.prune_graph_below(&cut)?;
                Ok(())
            }
            Err(dpr_core::DprError::Recovering) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn current_cut(&self) -> Result<Cut> {
        self.meta.read_cut()
    }

    fn max_version(&self) -> Result<Version> {
        Ok(self.meta.max_persisted_version()?.unwrap_or(Version::ZERO))
    }
}

/// The approximate algorithm: `SELECT min(persistedVersion) FROM dpr`.
///
/// ```
/// use libdpr::{ApproximateFinder, DprFinder};
/// use dpr_metadata::{MetadataStore, SimulatedSqlStore};
/// use dpr_core::{ShardId, Token, Version};
/// use std::sync::Arc;
///
/// let meta = Arc::new(SimulatedSqlStore::new());
/// meta.register_worker(ShardId(0)).unwrap();
/// meta.register_worker(ShardId(1)).unwrap();
/// let finder = ApproximateFinder::new(meta);
/// finder.report_commit(Token::new(ShardId(0), Version(3)), vec![]).unwrap();
/// finder.report_commit(Token::new(ShardId(1), Version(5)), vec![]).unwrap();
/// finder.refresh().unwrap();
/// // The cut is Vmin for everyone; Vmax drives fast-forwarding.
/// assert_eq!(finder.current_cut().unwrap()[&ShardId(1)], Version(3));
/// assert_eq!(finder.max_version().unwrap(), Version(5));
/// ```
pub struct ApproximateFinder {
    meta: Arc<dyn MetadataStore>,
}

impl ApproximateFinder {
    /// Finder over the shared metadata store.
    pub fn new(meta: Arc<dyn MetadataStore>) -> Self {
        ApproximateFinder { meta }
    }

    fn min_cut(&self) -> Result<Cut> {
        let vmin = self.meta.min_persisted_version()?.unwrap_or(Version::ZERO);
        Ok(self
            .meta
            .members()?
            .into_iter()
            .map(|s| (s, vmin))
            .collect())
    }
}

impl DprFinder for ApproximateFinder {
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        // Dependency information is discarded — monotonicity makes Vmin
        // safe — but the audit tap still sees it so the chaos checker can
        // verify the published cut is closed under the *real* dependencies.
        crate::audit::commit_reported(token, &deps);
        self.meta
            .update_persisted_version(token.shard, token.version)
    }

    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        if reports.is_empty() {
            return Ok(());
        }
        if crate::audit::enabled() {
            for (token, deps) in &reports {
                crate::audit::commit_reported(*token, deps);
            }
        }
        self.meta
            .update_persisted_versions(&max_versions_per_shard(&reports))
    }

    fn refresh(&self) -> Result<()> {
        let _timer = crate::metrics::finder_refresh().start_timer();
        observe_cut_lag(&*self.meta);
        let cut = self.min_cut()?;
        let audited = crate::audit::enabled().then(|| cut.clone());
        match self.meta.update_cut_atomically(cut) {
            Ok(()) => {
                if let Some(cut) = audited {
                    crate::audit::cut_published(&cut);
                }
                Ok(())
            }
            Err(dpr_core::DprError::Recovering) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn current_cut(&self) -> Result<Cut> {
        self.meta.read_cut()
    }

    fn max_version(&self) -> Result<Version> {
        Ok(self.meta.max_persisted_version()?.unwrap_or(Version::ZERO))
    }
}

/// The hybrid: exact precision from an in-memory graph, approximate floor
/// for fault tolerance (§3.4).
pub struct HybridFinder {
    meta: Arc<dyn MetadataStore>,
    approx: ApproximateFinder,
    graph: Mutex<BTreeMap<Token, Vec<Token>>>,
    /// Per shard, the highest version whose graph entry may have been lost
    /// (coordinator crash/restart). The exact component may not advance a
    /// shard past its floor until the floor passes this ceiling — the
    /// coordinator "cannot be certain of its dependency set in the lost
    /// subgraph" (§3.4).
    lost_ceiling: Mutex<Cut>,
}

impl HybridFinder {
    /// Finder over the shared metadata store. A freshly constructed
    /// coordinator treats everything already persisted as possibly-lost
    /// (it has no graph for it), so a restarted coordinator is safe by
    /// construction.
    pub fn new(meta: Arc<dyn MetadataStore>) -> Self {
        let lost_ceiling = meta.persisted_versions().unwrap_or_default();
        HybridFinder {
            approx: ApproximateFinder::new(meta.clone()),
            meta,
            graph: Mutex::new(BTreeMap::new()),
            lost_ceiling: Mutex::new(lost_ceiling),
        }
    }

    /// Simulate a coordinator crash: the in-memory precedence graph is lost.
    /// The cut keeps advancing via the approximate floor, and exact
    /// precision resumes per shard once the floor passes the lost region.
    pub fn simulate_coordinator_crash(&self) {
        self.graph.lock().clear();
        *self.lost_ceiling.lock() = self.meta.persisted_versions().unwrap_or_default();
    }
}

impl DprFinder for HybridFinder {
    fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()> {
        // In-memory graph only, but the write volume is still the signal the
        // hybrid exists to reduce durably (§3.4).
        crate::metrics::graph_dep_tokens().add(deps.len() as u64);
        crate::audit::commit_reported(token, &deps);
        self.meta
            .update_persisted_version(token.shard, token.version)?;
        self.graph.lock().insert(token, deps);
        Ok(())
    }

    fn report_commits(&self, reports: Vec<(Token, Vec<Token>)>) -> Result<()> {
        if reports.is_empty() {
            return Ok(());
        }
        crate::metrics::graph_dep_tokens().add(reports.iter().map(|(_, d)| d.len() as u64).sum());
        if crate::audit::enabled() {
            for (token, deps) in &reports {
                crate::audit::commit_reported(*token, deps);
            }
        }
        // One durable statement for the whole group; the graph is in-memory.
        self.meta
            .update_persisted_versions(&max_versions_per_shard(&reports))?;
        self.graph.lock().extend(reports);
        Ok(())
    }

    fn refresh(&self) -> Result<()> {
        let _timer = crate::metrics::finder_refresh().start_timer();
        observe_cut_lag(&*self.meta);
        // Approximate floor first (durable, crash-safe)...
        let approx_floor = self.approx.min_cut()?;
        let mut floor = self.meta.read_cut()?;
        for (s, v) in approx_floor {
            let e = floor.entry(s).or_insert(Version::ZERO);
            *e = (*e).max(v);
        }
        // ...then exact refinement from whatever graph is in memory, holding
        // back shards whose lost subgraph the floor has not yet cleared.
        // The closure fixpoint runs on a *snapshot* so commit reporting (the
        // per-batch hot path) is never blocked behind it; only the final
        // retain — O(graph) with no fixpoint — holds the lock.
        let ceiling = self.lost_ceiling.lock().clone();
        let snapshot = self.graph.lock().clone();
        let cut = compute_closure_cut_capped(&snapshot, &floor, &ceiling);
        self.graph
            .lock()
            .retain(|t, _| cut.get(&t.shard).copied().unwrap_or(Version::ZERO) < t.version);
        let audited = crate::audit::enabled().then(|| cut.clone());
        match self.meta.update_cut_atomically(cut) {
            Ok(()) => {
                if let Some(cut) = audited {
                    crate::audit::cut_published(&cut);
                }
                Ok(())
            }
            Err(dpr_core::DprError::Recovering) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn current_cut(&self) -> Result<Cut> {
        self.meta.read_cut()
    }

    fn max_version(&self) -> Result<Version> {
        Ok(self.meta.max_persisted_version()?.unwrap_or(Version::ZERO))
    }
}

/// Check that `cut` is closed under the dependency relation of `graph` —
/// the defining property of a DPR cut (Definition 3.1). Exposed for tests
/// and property checks.
#[must_use]
pub fn cut_is_closed(graph: &BTreeMap<Token, Vec<Token>>, cut: &Cut) -> bool {
    graph.iter().all(|(token, deps)| {
        let included = token.version <= cut.get(&token.shard).copied().unwrap_or(Version::ZERO);
        !included
            || deps
                .iter()
                .all(|d| d.version <= cut.get(&d.shard).copied().unwrap_or(Version::ZERO))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::ShardId;
    use dpr_metadata::SimulatedSqlStore;

    fn t(s: u32, v: u64) -> Token {
        Token::new(ShardId(s), Version(v))
    }

    fn setup(shards: u32) -> (Arc<SimulatedSqlStore>, Vec<ShardId>) {
        let meta = Arc::new(SimulatedSqlStore::new());
        let ids: Vec<ShardId> = (0..shards).map(ShardId).collect();
        for &s in &ids {
            meta.register_worker(s).unwrap();
        }
        (meta, ids)
    }

    #[test]
    fn fig3_staggered_commits_never_form_a_cut() {
        // The Fig. 3 counter-example: every token depends on a future token
        // of the other shard, so no non-trivial cut exists.
        let (meta, _) = setup(2);
        let finder = ExactFinder::new(meta);
        finder.report_commit(t(0, 1), vec![t(1, 1)]).unwrap();
        finder.report_commit(t(1, 1), vec![t(0, 2)]).unwrap();
        finder.report_commit(t(0, 2), vec![t(1, 2)]).unwrap();
        finder.report_commit(t(1, 2), vec![t(0, 3)]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version::ZERO);
        assert_eq!(cut[&ShardId(1)], Version::ZERO);
    }

    #[test]
    fn monotone_dependencies_allow_progress() {
        // With the §3.2 version clock, dependencies never point upward, so
        // the cut advances.
        let (meta, _) = setup(2);
        let finder = ExactFinder::new(meta);
        finder.report_commit(t(0, 1), vec![]).unwrap();
        finder.report_commit(t(1, 1), vec![t(0, 1)]).unwrap();
        finder.report_commit(t(0, 2), vec![t(1, 1)]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(2));
        assert_eq!(cut[&ShardId(1)], Version(1));
    }

    #[test]
    fn exact_excludes_tokens_with_uncommitted_deps() {
        let (meta, _) = setup(2);
        let finder = ExactFinder::new(meta);
        // Shard 0 committed v1, v2; v2 depends on shard 1's v1 which has
        // NOT committed yet.
        finder.report_commit(t(0, 1), vec![]).unwrap();
        finder.report_commit(t(0, 2), vec![t(1, 1)]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(1), "v2 held back");
        assert_eq!(cut[&ShardId(1)], Version::ZERO);
        // Once shard 1 commits, v2 is admitted.
        finder.report_commit(t(1, 1), vec![]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(2));
        assert_eq!(cut[&ShardId(1)], Version(1));
    }

    #[test]
    fn exact_prunes_graph_below_cut() {
        let (meta, _) = setup(1);
        let finder = ExactFinder::new(meta.clone());
        finder.report_commit(t(0, 1), vec![]).unwrap();
        finder.report_commit(t(0, 2), vec![]).unwrap();
        finder.refresh().unwrap();
        assert!(
            meta.graph_snapshot().unwrap().is_empty(),
            "all committed → pruned"
        );
    }

    #[test]
    fn approximate_cut_is_vmin_everywhere() {
        let (meta, _) = setup(3);
        let finder = ApproximateFinder::new(meta);
        finder.report_commit(t(0, 3), vec![]).unwrap();
        finder.report_commit(t(1, 5), vec![]).unwrap();
        finder.report_commit(t(2, 4), vec![]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        for s in 0..3 {
            assert_eq!(cut[&ShardId(s)], Version(3));
        }
        assert_eq!(finder.max_version().unwrap(), Version(5));
    }

    #[test]
    fn approximate_false_dependency_holds_back_fast_shard() {
        // The §3.4 caveat: a slow shard drags everyone to its pace.
        let (meta, _) = setup(2);
        let finder = ApproximateFinder::new(meta);
        finder.report_commit(t(0, 10), vec![]).unwrap();
        // Shard 1 never commits (version 0).
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version::ZERO, "held hostage by shard 1");
    }

    #[test]
    fn hybrid_survives_coordinator_crash_via_approximate_floor() {
        let (meta, _) = setup(2);
        let finder = HybridFinder::new(meta);
        finder.report_commit(t(0, 1), vec![]).unwrap();
        finder.report_commit(t(1, 1), vec![t(0, 1)]).unwrap();
        finder.refresh().unwrap();
        assert_eq!(finder.current_cut().unwrap()[&ShardId(1)], Version(1));
        // Coordinator crashes; the in-memory graph is lost.
        finder.simulate_coordinator_crash();
        // New commits arrive whose deps reference the lost subgraph region.
        finder.report_commit(t(0, 3), vec![t(1, 2)]).unwrap();
        finder.report_commit(t(1, 2), vec![t(0, 2)]).unwrap();
        // t(0,2)'s graph entry was lost before ever being reported — but
        // shard 0's persisted version (3) floors Vmin handling.
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        // Approximate floor: Vmin = min(3, 2) = 2 → both shards at ≥ 2.
        assert!(cut[&ShardId(0)] >= Version(2));
        assert!(cut[&ShardId(1)] >= Version(2));
    }

    #[test]
    fn hybrid_is_exact_in_failure_free_operation() {
        let (meta, _) = setup(2);
        let finder = HybridFinder::new(meta);
        // Shard 0 is far ahead; approximate alone would hold it at Vmin=1,
        // but the exact graph shows no dependencies, so it advances.
        finder.report_commit(t(0, 5), vec![]).unwrap();
        finder.report_commit(t(1, 1), vec![]).unwrap();
        finder.refresh().unwrap();
        let cut = finder.current_cut().unwrap();
        assert_eq!(cut[&ShardId(0)], Version(5), "exact precision preserved");
        assert_eq!(cut[&ShardId(1)], Version(1));
    }

    #[test]
    fn grouped_reports_match_sequential_reports_for_every_finder() {
        // The batched path must produce the same cut the per-commit path
        // would; Exact/Hybrid keep dependency precision, Approximate keeps
        // Vmin semantics.
        let reports = vec![
            (t(0, 1), vec![]),
            (t(1, 1), vec![t(0, 1)]),
            (t(0, 2), vec![t(1, 1)]),
        ];
        type MakeFinder = fn(Arc<SimulatedSqlStore>) -> Box<dyn DprFinder>;
        // (constructor, expected shard-0 cut: Approximate stays at Vmin=1,
        // the graph-bearing finders reach the exact 2).
        let make: [(MakeFinder, Version); 3] = [
            (|m| Box::new(ExactFinder::new(m)), Version(2)),
            (|m| Box::new(ApproximateFinder::new(m)), Version(1)),
            (|m| Box::new(HybridFinder::new(m)), Version(2)),
        ];
        for (mk, expected) in make {
            let (meta_seq, _) = setup(2);
            let seq = mk(meta_seq);
            for (tok, deps) in reports.clone() {
                seq.report_commit(tok, deps).unwrap();
            }
            seq.refresh().unwrap();

            let (meta_grp, _) = setup(2);
            let grp = mk(meta_grp.clone());
            let before = meta_grp.statement_count();
            grp.report_commits(reports.clone()).unwrap();
            assert!(
                meta_grp.statement_count() - before <= 2,
                "a grouped report is O(1) statements, not one per commit"
            );
            grp.refresh().unwrap();

            assert_eq!(seq.current_cut().unwrap(), grp.current_cut().unwrap());
            assert_eq!(grp.current_cut().unwrap()[&ShardId(0)], expected);
        }
    }

    #[test]
    fn grouped_report_held_back_like_sequential_when_dep_missing() {
        let (meta, _) = setup(2);
        let finder = ExactFinder::new(meta);
        // v2 depends on shard 1's v1, which never arrives in this group.
        finder
            .report_commits(vec![(t(0, 1), vec![]), (t(0, 2), vec![t(1, 1)])])
            .unwrap();
        finder.refresh().unwrap();
        assert_eq!(finder.current_cut().unwrap()[&ShardId(0)], Version(1));
    }

    #[test]
    fn closure_checker_accepts_and_rejects() {
        let graph: BTreeMap<Token, Vec<Token>> = [
            (t(0, 1), vec![]),
            (t(1, 1), vec![t(0, 1)]),
            (t(0, 2), vec![t(1, 2)]),
        ]
        .into_iter()
        .collect();
        let good: Cut = [(ShardId(0), Version(1)), (ShardId(1), Version(1))]
            .into_iter()
            .collect();
        assert!(cut_is_closed(&graph, &good));
        let bad: Cut = [(ShardId(0), Version(2)), (ShardId(1), Version(1))]
            .into_iter()
            .collect();
        assert!(
            !cut_is_closed(&graph, &bad),
            "includes t(0,2) with unmet dep"
        );
    }
}
