//! # libdpr
//!
//! The DPR protocol library (§3, §4, §6): everything needed to add
//! *distributed prefix recovery* to a sharded deployment of cache-stores,
//! independent of the store implementation.
//!
//! * [`StateObject`] — the paper's shard abstraction: `Op()` executes
//!   uncommitted, `Commit()` seals a version asynchronously, `Restore()`
//!   returns to a committed version (§3).
//! * [`DprClientSession`] — client-side session tracking: the Lamport-style
//!   version clock `Vs` that guarantees finder progress (§3.2), dependency
//!   headers for the exact finder, world-line tracking (§4.2), and committed
//!   prefix computation against the current DPR cut.
//! * [`DprServer`] — server-side batch gate: world-line validation, version
//!   lower-bound enforcement (triggering commits when a client is ahead),
//!   and dependency accumulation per version (§6).
//! * [`finder`] — the DPR-cut finding algorithms of §3.3–3.4 (Fig. 4):
//!   exact (durable precedence graph + maximal transitive closure),
//!   approximate (min persisted version with `Vmax` fast-forward), and the
//!   hybrid of both.

#![warn(missing_docs)]

pub mod audit;
pub mod client;
pub mod finder;
pub mod header;
mod metrics;
pub mod server;
pub mod state_object;

pub use client::{DprClientSession, SessionStatus};
pub use dpr_metadata::Cut;
pub use finder::{
    ApproximateFinder, CutEngine, CutEngineMode, DprFinder, ExactFinder, HybridFinder,
};
pub use header::{BatchHeader, BatchReply};
pub use server::{BatchDisposition, DprServer};
pub use state_object::{CommitDescriptor, StateObject};
