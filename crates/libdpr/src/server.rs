//! Server-side batch gate (§6).
//!
//! `libDPR is invoked before and after each request batch is processed`: the
//! *before* hook ([`DprServer::validate`]) checks world-lines and the
//! version lower bound (triggering a commit when a client is ahead, the
//! §3.2 progress rule); the *after* hook ([`DprServer::record_batch`] +
//! [`DprServer::make_reply`]) accumulates dependency edges for the version
//! the batch executed in and builds the reply header.

use crate::finder::DprFinder;
use crate::header::{BatchHeader, BatchReply};
use crate::state_object::StateObject;
use dpr_core::{DprError, Result, ShardId, Token, Version, WorldLine};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What to do with an incoming batch.
#[derive(Debug)]
pub enum BatchDisposition {
    /// Safe to execute now.
    Execute,
    /// The client is on a later version than the shard; a commit has been
    /// requested — re-validate after it completes.
    Delay,
    /// The batch must be rejected (world-line problems).
    Reject(DprError),
}

/// Per-shard server-side DPR state.
pub struct DprServer {
    shard: ShardId,
    world_line: AtomicU64,
    /// Dependency tokens accumulated per (open) version.
    deps: Mutex<BTreeMap<Version, BTreeSet<Token>>>,
    /// Telemetry only: when each open version first executed a batch, so
    /// `pump_commits` can measure execute-to-commit-report latency.
    /// Populated only while `dpr_telemetry::enabled()`.
    first_executed: Mutex<BTreeMap<Version, Instant>>,
}

impl DprServer {
    /// Server state for `shard`, starting on the initial world-line.
    #[must_use]
    pub fn new(shard: ShardId) -> Self {
        DprServer {
            shard,
            world_line: AtomicU64::new(WorldLine::INITIAL.0),
            deps: Mutex::new(BTreeMap::new()),
            first_executed: Mutex::new(BTreeMap::new()),
        }
    }

    /// This shard's id.
    #[must_use]
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The world-line this shard is on.
    #[must_use]
    pub fn world_line(&self) -> WorldLine {
        WorldLine(self.world_line.load(Ordering::Acquire))
    }

    /// Advance the world-line after a restore (§4.2: "a StateObject
    /// advances its world-line by calling Restore()").
    pub fn set_world_line(&self, wl: WorldLine) {
        self.world_line.fetch_max(wl.0, Ordering::AcqRel);
    }

    /// The *before* hook: decide whether a batch may execute.
    pub fn validate(&self, header: &BatchHeader, so: &dyn StateObject) -> BatchDisposition {
        let ours = self.world_line();
        if header.world_line < ours {
            // Client is behind a failure it has not seen yet.
            crate::metrics::validate_reject().inc();
            return BatchDisposition::Reject(DprError::WorldLineMismatch {
                requested: header.world_line,
                current: ours,
            });
        }
        if header.world_line > ours {
            // We are still recovering; the client must retry.
            crate::metrics::validate_reject().inc();
            return BatchDisposition::Reject(DprError::Recovering);
        }
        if header.version_lower_bound > so.current_version() {
            // §3.2: execute only once our version has caught up; trigger a
            // commit that fast-forwards to the client's clock.
            so.request_commit(Some(header.version_lower_bound));
            crate::metrics::validate_delay().inc();
            return BatchDisposition::Delay;
        }
        crate::metrics::validate_execute().inc();
        BatchDisposition::Execute
    }

    /// Convenience for in-process deployments: validate, waiting out any
    /// `Delay` by ticking the store's commit machinery.
    pub fn validate_blocking(
        &self,
        header: &BatchHeader,
        so: &dyn StateObject,
        timeout: Duration,
    ) -> Result<()> {
        let start = Instant::now();
        loop {
            match self.validate(header, so) {
                BatchDisposition::Execute => return Ok(()),
                BatchDisposition::Reject(e) => return Err(e),
                BatchDisposition::Delay => {
                    if start.elapsed() > timeout {
                        return Err(DprError::Timeout);
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// The *after* hook: record the batch's dependency edges against the
    /// version it executed in.
    pub fn record_batch(&self, header: &BatchHeader, executed_version: Version) {
        if dpr_telemetry::enabled() {
            self.first_executed
                .lock()
                .entry(executed_version)
                .or_insert_with(Instant::now);
        }
        if header.deps.is_empty() {
            return;
        }
        let mut deps = self.deps.lock();
        let set = deps.entry(executed_version).or_default();
        for d in &header.deps {
            if d.shard != self.shard && d.version > Version::ZERO {
                set.insert(*d);
            }
        }
    }

    /// Build the reply header for a batch executed at `version`.
    #[must_use]
    pub fn make_reply(&self, header: &BatchHeader, version: Version) -> BatchReply {
        BatchReply {
            shard: self.shard,
            world_line: self.world_line(),
            version,
            first_serial: header.first_serial,
            op_count: header.op_count,
        }
    }

    /// Drain completed local commits to the finder, attaching accumulated
    /// dependencies. Call periodically (background thread). Returns the
    /// versions reported.
    pub fn pump_commits(
        &self,
        so: &dyn StateObject,
        finder: &dyn DprFinder,
    ) -> Result<Vec<Version>> {
        let commits = so.take_commits();
        if commits.is_empty() {
            return Ok(Vec::new());
        }
        let mut reported = Vec::with_capacity(commits.len());
        for desc in commits {
            // Everything accumulated at or below this version belongs to it
            // (versions are sealed in order).
            let dep_tokens: Vec<Token> = {
                let mut deps = self.deps.lock();
                let mut below = deps.split_off(&desc.version.next());
                std::mem::swap(&mut below, &mut deps);
                below.into_values().flatten().collect()
            };
            finder.report_commit(Token::new(self.shard, desc.version), dep_tokens)?;
            crate::metrics::commit_reports().inc();
            if dpr_telemetry::enabled() {
                // Every version sealed by this report has now reached its
                // commit point: record how long it trailed execution.
                let mut stamps = self.first_executed.lock();
                let mut sealed = stamps.split_off(&desc.version.next());
                std::mem::swap(&mut sealed, &mut stamps);
                for started in sealed.into_values() {
                    crate::metrics::commit_latency().record_micros(started.elapsed());
                }
            }
            reported.push(desc.version);
        }
        Ok(reported)
    }

    /// Discard dependency state for versions rolled back by a restore.
    pub fn on_restore(&self, v_safe: Version) {
        let mut deps = self.deps.lock();
        deps.split_off(&v_safe.next());
        self.first_executed.lock().split_off(&v_safe.next());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::ApproximateFinder;
    use crate::state_object::CommitDescriptor;
    use dpr_core::SessionId;
    use dpr_metadata::{MetadataStore, SimulatedSqlStore};
    use std::sync::Arc;

    /// Minimal StateObject mock.
    struct MockSo {
        shard: ShardId,
        current: AtomicU64,
        durable: AtomicU64,
        pending_commits: Mutex<Vec<CommitDescriptor>>,
    }

    impl MockSo {
        fn new(shard: u32) -> Self {
            MockSo {
                shard: ShardId(shard),
                current: AtomicU64::new(1),
                durable: AtomicU64::new(0),
                pending_commits: Mutex::new(Vec::new()),
            }
        }

        fn complete_commit(&self) {
            let v = self.current.fetch_add(1, Ordering::SeqCst);
            self.durable.store(v, Ordering::SeqCst);
            self.pending_commits.lock().push(CommitDescriptor {
                version: Version(v),
            });
        }
    }

    impl StateObject for MockSo {
        fn shard(&self) -> ShardId {
            self.shard
        }
        fn current_version(&self) -> Version {
            Version(self.current.load(Ordering::SeqCst))
        }
        fn durable_version(&self) -> Version {
            Version(self.durable.load(Ordering::SeqCst))
        }
        fn request_commit(&self, target: Option<Version>) -> bool {
            // Complete instantly, jumping to the target.
            let v = self.current.load(Ordering::SeqCst);
            self.durable.store(v, Ordering::SeqCst);
            self.pending_commits.lock().push(CommitDescriptor {
                version: Version(v),
            });
            let next = target.map_or(v + 1, |t| t.0.max(v + 1));
            self.current.store(next, Ordering::SeqCst);
            true
        }
        fn take_commits(&self) -> Vec<CommitDescriptor> {
            std::mem::take(&mut *self.pending_commits.lock())
        }
        fn restore(&self, version: Version) -> Result<()> {
            self.durable.store(version.0, Ordering::SeqCst);
            self.current.store(version.0 + 1, Ordering::SeqCst);
            Ok(())
        }
    }

    fn header(wl: u64, lb: u64, deps: Vec<Token>) -> BatchHeader {
        BatchHeader {
            session: SessionId(1),
            world_line: WorldLine(wl),
            version_lower_bound: Version(lb),
            deps,
            first_serial: 0,
            op_count: 1,
        }
    }

    #[test]
    fn validate_world_lines() {
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        server.set_world_line(WorldLine(2));
        // Stale client.
        match server.validate(&header(1, 0, vec![]), &so) {
            BatchDisposition::Reject(DprError::WorldLineMismatch { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Client ahead of a recovering shard.
        match server.validate(&header(3, 0, vec![]), &so) {
            BatchDisposition::Reject(DprError::Recovering) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Matching world-line.
        match server.validate(&header(2, 0, vec![]), &so) {
            BatchDisposition::Execute => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn version_lower_bound_triggers_commit_and_delay() {
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        assert_eq!(so.current_version(), Version(1));
        match server.validate(&header(0, 5, vec![]), &so) {
            BatchDisposition::Delay => {}
            other => panic!("unexpected {other:?}"),
        }
        // The mock commit fast-forwarded to 5; validation now passes.
        assert!(so.current_version() >= Version(5));
        match server.validate(&header(0, 5, vec![]), &so) {
            BatchDisposition::Execute => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validate_blocking_waits_out_delay() {
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        server
            .validate_blocking(&header(0, 3, vec![]), &so, Duration::from_secs(1))
            .unwrap();
        assert!(so.current_version() >= Version(3));
    }

    #[test]
    fn pump_commits_reports_accumulated_deps() {
        let meta = Arc::new(SimulatedSqlStore::new());
        meta.register_worker(ShardId(0)).unwrap();
        meta.register_worker(ShardId(1)).unwrap();
        let finder = ApproximateFinder::new(meta.clone());
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        server.record_batch(
            &header(0, 0, vec![Token::new(ShardId(1), Version(2))]),
            Version(1),
        );
        so.complete_commit();
        let reported = server.pump_commits(&so, &finder).unwrap();
        assert_eq!(reported, vec![Version(1)]);
        assert_eq!(meta.persisted_versions().unwrap()[&ShardId(0)], Version(1));
        // Deps for version 1 were drained.
        assert!(server.deps.lock().is_empty());
    }

    #[test]
    fn self_and_zero_deps_filtered() {
        let server = DprServer::new(ShardId(0));
        server.record_batch(
            &header(
                0,
                0,
                vec![
                    Token::new(ShardId(0), Version(9)),    // self
                    Token::new(ShardId(1), Version::ZERO), // trivial
                    Token::new(ShardId(2), Version(1)),
                ],
            ),
            Version(1),
        );
        let deps = server.deps.lock();
        let set = &deps[&Version(1)];
        assert_eq!(set.len(), 1);
        assert!(set.contains(&Token::new(ShardId(2), Version(1))));
    }

    #[test]
    fn restore_drops_dependency_state_above_safe_point() {
        let server = DprServer::new(ShardId(0));
        for v in 1..=5u64 {
            server.record_batch(
                &header(0, 0, vec![Token::new(ShardId(1), Version(v))]),
                Version(v),
            );
        }
        server.on_restore(Version(2));
        let deps = server.deps.lock();
        assert!(deps.contains_key(&Version(1)));
        assert!(deps.contains_key(&Version(2)));
        assert!(!deps.contains_key(&Version(3)));
    }
}
