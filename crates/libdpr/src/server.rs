//! Server-side batch gate (§6).
//!
//! `libDPR is invoked before and after each request batch is processed`: the
//! *before* hook ([`DprServer::validate`]) checks world-lines and the
//! version lower bound (triggering a commit when a client is ahead, the
//! §3.2 progress rule); the *after* hook ([`DprServer::record_batch`] +
//! [`DprServer::make_reply`]) accumulates dependency edges for the version
//! the batch executed in and builds the reply header.
//!
//! ## Scalability (§6: "implemented scalably")
//!
//! Both hooks run on **every** batch, so their cross-thread footprint caps
//! cluster throughput. Dependency accumulation is therefore striped and
//! lock-free on the write side:
//!
//! * [`DprServer::record_batch`] publishes into one of N cache-padded
//!   *stripes*, selected by a per-thread index, using only atomic
//!   compare-and-swap / `fetch_max` — no locks, no allocation.
//! * Each stripe keeps only the **max version per dependent shard**.
//!   Prefix semantics make this lossless for safety: a cut that admits a
//!   token `(s, v)` admits every `(s, v' ≤ v)`, so the largest dependency
//!   per shard subsumes all smaller ones (and the whole accumulator stays a
//!   few cache lines regardless of batch volume).
//! * The drain side ([`DprServer::pump_commits`], [`DprServer::on_restore`])
//!   is guarded by a [`LightEpoch`]: the drainer bumps the epoch and waits
//!   for in-flight writers to pass, so writers never block on the drain
//!   (they only ever touch their own stripe's atomics).
//! * A drain attaches the merged dependency set to the **lowest** version
//!   being reported. This is conservative but safe: if the cut admits any
//!   higher version of this shard it also admits the lowest one, so the
//!   merged dependencies are always enforced.
//!
//! Queued commit reports leave the drain as **one** grouped
//! [`DprFinder::report_commits`] call — O(1) metadata round trips per pump
//! instead of one per version (the §3.4 metadata-write bottleneck).

use crate::finder::DprFinder;
use crate::header::{BatchHeader, BatchReply};
use crate::state_object::StateObject;
use dpr_core::{Backoff, DprError, LightEpoch, Result, ShardId, Token, Version, WorldLine};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Dependency slots per stripe (open-addressed; distinct dependent shards
/// beyond this spill to the stripe's locked side map).
const STRIPE_SLOTS: usize = 32;

/// Default stripe count (power of two). Executor threads map onto stripes by
/// a per-thread index, so this bounds hot-path sharing, not correctness.
const DEFAULT_STRIPES: usize = 16;

/// Epoch-table capacity: max threads concurrently inside `record_batch`.
const MAX_GATE_THREADS: usize = 256;

/// What to do with an incoming batch.
#[derive(Debug)]
pub enum BatchDisposition {
    /// Safe to execute now.
    Execute,
    /// The client is on a later version than the shard; a commit has been
    /// requested — re-validate after it completes.
    Delay,
    /// The batch must be rejected (world-line problems).
    Reject(DprError),
}

/// Process-wide executor numbering: each thread that ever records a batch
/// gets a stable small id, used both for stripe selection and as the epoch
/// slot hint so a thread's gate traffic stays on its own cache lines.
static NEXT_GATE_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static GATE_THREAD_ID: usize = NEXT_GATE_THREAD.fetch_add(1, Ordering::Relaxed);
}

fn gate_thread_id() -> usize {
    GATE_THREAD_ID.with(|id| *id)
}

/// One cache-padded dependency accumulator.
///
/// `keys[i]` is `0` (empty) or `shard.0 + 1`; once claimed, a key is never
/// removed, so `vers[i]` is owned by exactly one dependent shard for the
/// stripe's lifetime and plain `fetch_max` / `swap` suffice — a dependency
/// published concurrently with a drain lands either in this drain or the
/// next, never nowhere.
#[repr(align(128))]
struct Stripe {
    keys: [AtomicU64; STRIPE_SLOTS],
    vers: [AtomicU64; STRIPE_SLOTS],
    /// Rare path: more distinct dependent shards than slots.
    overflow: Mutex<BTreeMap<ShardId, Version>>,
    /// Telemetry only: micros-since-server-start (+1; 0 = unset) of the
    /// first batch recorded since the last drain, for commit latency.
    first_exec_us: AtomicU64,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            keys: std::array::from_fn(|_| AtomicU64::new(0)),
            vers: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: Mutex::new(BTreeMap::new()),
            first_exec_us: AtomicU64::new(0),
        }
    }

    /// Lock-free max-merge of one dependency into this stripe.
    fn note_dep(&self, shard: ShardId, version: Version) {
        let key = u64::from(shard.0) + 1;
        // Cheap multiplicative hash so consecutive shard ids spread out.
        let mut idx = (shard.0 as usize).wrapping_mul(0x9E37_79B1) & (STRIPE_SLOTS - 1);
        for _ in 0..STRIPE_SLOTS {
            match self.keys[idx].load(Ordering::Acquire) {
                k if k == key => {
                    self.vers[idx].fetch_max(version.0, Ordering::AcqRel);
                    return;
                }
                0 => {
                    match self.keys[idx].compare_exchange(
                        0,
                        key,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            self.vers[idx].fetch_max(version.0, Ordering::AcqRel);
                            return;
                        }
                        Err(actual) if actual == key => {
                            // Another thread registered the same shard first.
                            self.vers[idx].fetch_max(version.0, Ordering::AcqRel);
                            return;
                        }
                        Err(_) => { /* claimed for a different shard — probe on */ }
                    }
                }
                _ => {}
            }
            idx = (idx + 1) & (STRIPE_SLOTS - 1);
        }
        // Every slot owned by some other shard: spill (bounded lock, rare).
        crate::metrics::gate_dep_spills().inc();
        let mut of = self.overflow.lock();
        let e = of.entry(shard).or_insert(Version::ZERO);
        *e = (*e).max(version);
    }

    /// Take (and reset) this stripe's accumulated deps, appending raw
    /// `(shard, version)` pairs to `pairs` (the caller max-merges). Caller
    /// must have quiesced in-flight writers via the epoch.
    fn drain_into(&self, pairs: &mut Vec<(ShardId, Version)>) {
        for i in 0..STRIPE_SLOTS {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == 0 {
                continue;
            }
            let v = self.vers[i].swap(0, Ordering::AcqRel);
            if v > 0 {
                pairs.push((ShardId((k - 1) as u32), Version(v)));
            }
        }
        let spilled = std::mem::take(&mut *self.overflow.lock());
        for (shard, v) in spilled {
            pairs.push((shard, v));
        }
    }

    /// Non-destructive read of the accumulated deps (tests/diagnostics).
    fn peek_into(&self, merged: &mut BTreeMap<ShardId, Version>) {
        for i in 0..STRIPE_SLOTS {
            let k = self.keys[i].load(Ordering::Acquire);
            if k == 0 {
                continue;
            }
            let v = self.vers[i].load(Ordering::Acquire);
            if v > 0 {
                let shard = ShardId((k - 1) as u32);
                let e = merged.entry(shard).or_insert(Version::ZERO);
                *e = (*e).max(Version(v));
            }
        }
        for (&shard, &v) in self.overflow.lock().iter() {
            let e = merged.entry(shard).or_insert(Version::ZERO);
            *e = (*e).max(v);
        }
    }
}

/// Reusable drain-side buffers. Living inside the drain mutex, they are
/// reused across pumps, so a steady-state drain allocates only the report
/// vectors handed off to the finder — no per-pump map churn.
#[derive(Default)]
struct DrainScratch {
    /// Raw `(shard, version)` pairs drained from the stripes.
    pairs: Vec<(ShardId, Version)>,
    /// Max-merged dependency tokens built from `pairs`.
    tokens: Vec<Token>,
}

/// Per-shard server-side DPR state.
pub struct DprServer {
    shard: ShardId,
    world_line: AtomicU64,
    /// Striped lock-free dependency accumulator (max version per dependent
    /// shard, per stripe).
    stripes: Box<[Stripe]>,
    /// Protects the drain: writers publish under an epoch guard; drains
    /// bump-and-wait so they observe no mid-flight writer.
    epoch: LightEpoch,
    /// Serializes drains against each other (pump vs. restore) — never
    /// touched by `record_batch` — and holds the drain's reusable scratch.
    drain: Mutex<DrainScratch>,
    /// Timestamp base for the lock-free commit-latency tracking.
    started: Instant,
}

impl DprServer {
    /// Server state for `shard`, starting on the initial world-line.
    #[must_use]
    pub fn new(shard: ShardId) -> Self {
        Self::with_stripes(shard, DEFAULT_STRIPES)
    }

    /// Server state with an explicit stripe count (rounded up to a power of
    /// two; benchmarks and tests).
    #[must_use]
    pub fn with_stripes(shard: ShardId, stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        DprServer {
            shard,
            world_line: AtomicU64::new(WorldLine::INITIAL.0),
            stripes: (0..n).map(|_| Stripe::new()).collect(),
            epoch: LightEpoch::new(MAX_GATE_THREADS),
            drain: Mutex::new(DrainScratch::default()),
            started: Instant::now(),
        }
    }

    /// This shard's id.
    #[must_use]
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Number of dependency stripes.
    #[must_use]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The world-line this shard is on.
    #[must_use]
    pub fn world_line(&self) -> WorldLine {
        WorldLine(self.world_line.load(Ordering::Acquire))
    }

    /// Advance the world-line after a restore (§4.2: "a StateObject
    /// advances its world-line by calling Restore()").
    pub fn set_world_line(&self, wl: WorldLine) {
        self.world_line.fetch_max(wl.0, Ordering::AcqRel);
    }

    /// The *before* hook: decide whether a batch may execute.
    pub fn validate(&self, header: &BatchHeader, so: &dyn StateObject) -> BatchDisposition {
        let ours = self.world_line();
        if header.world_line < ours {
            // Client is behind a failure it has not seen yet.
            crate::metrics::validate_reject().inc();
            return BatchDisposition::Reject(DprError::WorldLineMismatch {
                requested: header.world_line,
                current: ours,
            });
        }
        if header.world_line > ours {
            // We are still recovering; the client must retry.
            crate::metrics::validate_reject().inc();
            return BatchDisposition::Reject(DprError::Recovering);
        }
        if header.version_lower_bound > so.current_version() {
            // §3.2: execute only once our version has caught up; trigger a
            // commit that fast-forwards to the client's clock.
            so.request_commit(Some(header.version_lower_bound));
            crate::metrics::validate_delay().inc();
            return BatchDisposition::Delay;
        }
        crate::metrics::validate_execute().inc();
        BatchDisposition::Execute
    }

    /// Convenience for in-process deployments: validate, waiting out any
    /// `Delay` by ticking the store's commit machinery. The wait escalates
    /// spin → yield → short sleep ([`Backoff`]) so a delayed batch does not
    /// burn a core while the fast-forward commit completes.
    pub fn validate_blocking(
        &self,
        header: &BatchHeader,
        so: &dyn StateObject,
        timeout: Duration,
    ) -> Result<()> {
        let start = Instant::now();
        let mut backoff = Backoff::new();
        loop {
            match self.validate(header, so) {
                BatchDisposition::Execute => return Ok(()),
                BatchDisposition::Reject(e) => return Err(e),
                BatchDisposition::Delay => {
                    if start.elapsed() > timeout {
                        return Err(DprError::Timeout);
                    }
                    backoff.snooze();
                }
            }
        }
    }

    /// The *after* hook: record the batch's dependency edges against the
    /// version it executed in.
    ///
    /// Lock-free: an epoch guard plus a handful of atomic max-merges into
    /// this thread's stripe. `executed_version` no longer keys the storage —
    /// prefix compression (see the module docs) attaches dependencies to the
    /// lowest version of the next drain, which is always at or below the
    /// executing version.
    pub fn record_batch(&self, header: &BatchHeader, executed_version: Version) {
        let tid = gate_thread_id();
        let _guard = self.epoch.protect_hinted(tid);
        let stripe = &self.stripes[tid & (self.stripes.len() - 1)];
        if dpr_telemetry::enabled() && stripe.first_exec_us.load(Ordering::Relaxed) == 0 {
            let now = self.started.elapsed().as_micros() as u64 + 1;
            let _ =
                stripe
                    .first_exec_us
                    .compare_exchange(0, now, Ordering::AcqRel, Ordering::Relaxed);
        }
        let _ = executed_version;
        for d in &header.deps {
            if d.shard != self.shard && d.version > Version::ZERO {
                stripe.note_dep(d.shard, d.version);
            }
        }
    }

    /// Build the reply header for a batch executed at `version`.
    #[must_use]
    pub fn make_reply(&self, header: &BatchHeader, version: Version) -> BatchReply {
        BatchReply {
            shard: self.shard,
            world_line: self.world_line(),
            version,
            first_serial: header.first_serial,
            op_count: header.op_count,
        }
    }

    /// Quiesce in-flight writers, then take everything the stripes have
    /// accumulated into the drain scratch: the max-merged dependency
    /// tokens land in `scratch.tokens`, and the earliest first-execution
    /// timestamp (telemetry) is returned. Resets both stripe sides.
    fn quiesce_and_drain(&self, scratch: &mut DrainScratch) -> Option<u64> {
        // Writers protected at the pre-bump epoch may still be publishing
        // into stripes; wait them out. New writers (post-bump) may land
        // concurrently — their deps go to this drain or the next, either is
        // safe. The drainer waits on writers; writers never wait on it.
        self.epoch.quiesce();
        scratch.pairs.clear();
        scratch.tokens.clear();
        let mut earliest: Option<u64> = None;
        for stripe in self.stripes.iter() {
            stripe.drain_into(&mut scratch.pairs);
            let t = stripe.first_exec_us.swap(0, Ordering::AcqRel);
            if t > 0 {
                earliest = Some(earliest.map_or(t, |e| e.min(t)));
            }
        }
        scratch.pairs.sort_unstable_by_key(|&(s, _)| s);
        for &(s, v) in &scratch.pairs {
            match scratch.tokens.last_mut() {
                Some(t) if t.shard == s => t.version = t.version.max(v),
                _ => scratch.tokens.push(Token::new(s, v)),
            }
        }
        scratch.pairs.clear();
        earliest
    }

    /// Drain completed local commits to the finder, attaching accumulated
    /// dependencies. Call periodically (background thread). Returns the
    /// versions reported.
    ///
    /// All queued commits leave as **one** [`DprFinder::report_commits`]
    /// group; the merged dependency set rides on the lowest version (safe —
    /// prefix cuts admitting any reported version admit the lowest, so the
    /// dependencies stay enforced).
    pub fn pump_commits(
        &self,
        so: &dyn StateObject,
        finder: &dyn DprFinder,
    ) -> Result<Vec<Version>> {
        let mut commits = so.take_commits();
        if commits.is_empty() {
            return Ok(Vec::new());
        }
        let mut scratch = self.drain.lock();
        commits.sort_by_key(|d| d.version);
        let first_exec_us = self.quiesce_and_drain(&mut scratch);
        // The finder takes ownership of the deps; hand over the merged
        // tokens and let the scratch vector refill next pump.
        let mut dep_tokens = Some(std::mem::take(&mut scratch.tokens));
        let reports: Vec<(Token, Vec<Token>)> = commits
            .iter()
            .map(|desc| {
                let deps = dep_tokens.take().unwrap_or_default();
                (Token::new(self.shard, desc.version), deps)
            })
            .collect();
        finder.report_commits(reports)?;
        crate::metrics::commit_reports().add(commits.len() as u64);
        if dpr_telemetry::enabled() {
            if let Some(us) = first_exec_us {
                // Every version sealed by this drain has reached its commit
                // point: record how long it trailed its first execution.
                let elapsed = (self.started.elapsed().as_micros() as u64 + 1).saturating_sub(us);
                for _ in &commits {
                    crate::metrics::commit_latency().record(elapsed);
                }
            }
        }
        Ok(commits.into_iter().map(|d| d.version).collect())
    }

    /// Discard accumulated dependency state after a restore.
    ///
    /// Everything still pending belongs to versions above the guaranteed cut
    /// (versions at or below it were reported — and their dependencies
    /// drained — before the cut could include them), so the whole
    /// accumulator is dropped. `v_safe` is kept for interface clarity and
    /// debug assertions at call sites.
    pub fn on_restore(&self, v_safe: Version) {
        let _ = v_safe;
        let mut scratch = self.drain.lock();
        let _ = self.quiesce_and_drain(&mut scratch);
        scratch.tokens.clear();
    }

    /// Snapshot of the accumulated (max-per-shard compressed) dependency
    /// tokens awaiting the next drain — diagnostics and tests; does not
    /// drain.
    #[must_use]
    pub fn pending_deps(&self) -> Vec<Token> {
        let mut merged: BTreeMap<ShardId, Version> = BTreeMap::new();
        for stripe in self.stripes.iter() {
            stripe.peek_into(&mut merged);
        }
        merged.into_iter().map(|(s, v)| Token::new(s, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::ApproximateFinder;
    use crate::state_object::CommitDescriptor;
    use dpr_core::SessionId;
    use dpr_metadata::{MetadataStore, SimulatedSqlStore};
    use std::sync::Arc;

    /// Minimal StateObject mock.
    struct MockSo {
        shard: ShardId,
        current: AtomicU64,
        durable: AtomicU64,
        pending_commits: Mutex<Vec<CommitDescriptor>>,
    }

    impl MockSo {
        fn new(shard: u32) -> Self {
            MockSo {
                shard: ShardId(shard),
                current: AtomicU64::new(1),
                durable: AtomicU64::new(0),
                pending_commits: Mutex::new(Vec::new()),
            }
        }

        fn complete_commit(&self) {
            let v = self.current.fetch_add(1, Ordering::SeqCst);
            self.durable.store(v, Ordering::SeqCst);
            self.pending_commits.lock().push(CommitDescriptor {
                version: Version(v),
            });
        }
    }

    impl StateObject for MockSo {
        fn shard(&self) -> ShardId {
            self.shard
        }
        fn current_version(&self) -> Version {
            Version(self.current.load(Ordering::SeqCst))
        }
        fn durable_version(&self) -> Version {
            Version(self.durable.load(Ordering::SeqCst))
        }
        fn request_commit(&self, target: Option<Version>) -> bool {
            // Complete instantly, jumping to the target.
            let v = self.current.load(Ordering::SeqCst);
            self.durable.store(v, Ordering::SeqCst);
            self.pending_commits.lock().push(CommitDescriptor {
                version: Version(v),
            });
            let next = target.map_or(v + 1, |t| t.0.max(v + 1));
            self.current.store(next, Ordering::SeqCst);
            true
        }
        fn take_commits(&self) -> Vec<CommitDescriptor> {
            std::mem::take(&mut *self.pending_commits.lock())
        }
        fn restore(&self, version: Version) -> Result<()> {
            self.durable.store(version.0, Ordering::SeqCst);
            self.current.store(version.0 + 1, Ordering::SeqCst);
            Ok(())
        }
    }

    /// Finder that records every report it receives.
    #[derive(Default)]
    struct CapturingFinder {
        reports: Mutex<Vec<(Token, Vec<Token>)>>,
    }

    impl DprFinder for CapturingFinder {
        fn report_commit(&self, token: Token, deps: Vec<Token>) -> Result<()> {
            self.reports.lock().push((token, deps));
            Ok(())
        }
        fn refresh(&self) -> Result<()> {
            Ok(())
        }
        fn current_cut(&self) -> Result<dpr_metadata::Cut> {
            Ok(dpr_metadata::Cut::new())
        }
        fn max_version(&self) -> Result<Version> {
            Ok(Version::ZERO)
        }
    }

    fn header(wl: u64, lb: u64, deps: Vec<Token>) -> BatchHeader {
        BatchHeader {
            session: SessionId(1),
            world_line: WorldLine(wl),
            version_lower_bound: Version(lb),
            deps,
            first_serial: 0,
            op_count: 1,
        }
    }

    #[test]
    fn validate_world_lines() {
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        server.set_world_line(WorldLine(2));
        // Stale client.
        match server.validate(&header(1, 0, vec![]), &so) {
            BatchDisposition::Reject(DprError::WorldLineMismatch { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Client ahead of a recovering shard.
        match server.validate(&header(3, 0, vec![]), &so) {
            BatchDisposition::Reject(DprError::Recovering) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Matching world-line.
        match server.validate(&header(2, 0, vec![]), &so) {
            BatchDisposition::Execute => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn version_lower_bound_triggers_commit_and_delay() {
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        assert_eq!(so.current_version(), Version(1));
        match server.validate(&header(0, 5, vec![]), &so) {
            BatchDisposition::Delay => {}
            other => panic!("unexpected {other:?}"),
        }
        // The mock commit fast-forwarded to 5; validation now passes.
        assert!(so.current_version() >= Version(5));
        match server.validate(&header(0, 5, vec![]), &so) {
            BatchDisposition::Execute => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validate_blocking_waits_out_delay() {
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        server
            .validate_blocking(&header(0, 3, vec![]), &so, Duration::from_secs(1))
            .unwrap();
        assert!(so.current_version() >= Version(3));
    }

    #[test]
    fn pump_commits_reports_accumulated_deps() {
        let meta = Arc::new(SimulatedSqlStore::new());
        meta.register_worker(ShardId(0)).unwrap();
        meta.register_worker(ShardId(1)).unwrap();
        let finder = ApproximateFinder::new(meta.clone());
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        server.record_batch(
            &header(0, 0, vec![Token::new(ShardId(1), Version(2))]),
            Version(1),
        );
        so.complete_commit();
        let reported = server.pump_commits(&so, &finder).unwrap();
        assert_eq!(reported, vec![Version(1)]);
        assert_eq!(meta.persisted_versions().unwrap()[&ShardId(0)], Version(1));
        // Deps for version 1 were drained.
        assert!(server.pending_deps().is_empty());
    }

    #[test]
    fn self_and_zero_deps_filtered() {
        let server = DprServer::new(ShardId(0));
        server.record_batch(
            &header(
                0,
                0,
                vec![
                    Token::new(ShardId(0), Version(9)),    // self
                    Token::new(ShardId(1), Version::ZERO), // trivial
                    Token::new(ShardId(2), Version(1)),
                ],
            ),
            Version(1),
        );
        let pending = server.pending_deps();
        assert_eq!(pending, vec![Token::new(ShardId(2), Version(1))]);
    }

    #[test]
    fn deps_compress_to_max_version_per_shard() {
        let server = DprServer::new(ShardId(0));
        for v in [3u64, 7, 5] {
            server.record_batch(
                &header(0, 0, vec![Token::new(ShardId(1), Version(v))]),
                Version(1),
            );
        }
        server.record_batch(
            &header(0, 0, vec![Token::new(ShardId(2), Version(4))]),
            Version(2),
        );
        let pending = server.pending_deps();
        assert_eq!(
            pending,
            vec![
                Token::new(ShardId(1), Version(7)),
                Token::new(ShardId(2), Version(4)),
            ],
            "only the max per dependent shard is kept"
        );
    }

    #[test]
    fn grouped_pump_attaches_deps_to_lowest_version() {
        let server = DprServer::new(ShardId(0));
        let so = MockSo::new(0);
        let finder = CapturingFinder::default();
        server.record_batch(
            &header(0, 0, vec![Token::new(ShardId(1), Version(2))]),
            Version(1),
        );
        so.complete_commit();
        so.complete_commit();
        let reported = server.pump_commits(&so, &finder).unwrap();
        assert_eq!(reported, vec![Version(1), Version(2)]);
        let reports = finder.reports.lock();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].0, Token::new(ShardId(0), Version(1)));
        assert_eq!(reports[0].1, vec![Token::new(ShardId(1), Version(2))]);
        assert_eq!(reports[1].0, Token::new(ShardId(0), Version(2)));
        assert!(reports[1].1.is_empty(), "merged deps ride the lowest token");
    }

    #[test]
    fn more_dependent_shards_than_slots_spill_losslessly() {
        // A single stripe forces every dep through one slot array.
        let server = DprServer::with_stripes(ShardId(0), 1);
        let n = (STRIPE_SLOTS * 2) as u32;
        for s in 1..=n {
            server.record_batch(
                &header(0, 0, vec![Token::new(ShardId(s), Version(u64::from(s)))]),
                Version(1),
            );
        }
        let pending = server.pending_deps();
        assert_eq!(pending.len(), n as usize, "no dependency dropped on spill");
        for t in pending {
            assert_eq!(t.version.0, u64::from(t.shard.0));
        }
    }

    #[test]
    fn restore_discards_pending_dependency_state() {
        let server = DprServer::new(ShardId(0));
        for v in 1..=5u64 {
            server.record_batch(
                &header(0, 0, vec![Token::new(ShardId(1), Version(v))]),
                Version(v),
            );
        }
        server.on_restore(Version(2));
        // Anything pending belonged to versions above the guaranteed cut
        // (committed versions drained at report time), so the accumulator
        // empties entirely.
        assert!(server.pending_deps().is_empty());
        // The gate keeps working after the restore.
        server.record_batch(
            &header(0, 0, vec![Token::new(ShardId(1), Version(9))]),
            Version(3),
        );
        assert_eq!(
            server.pending_deps(),
            vec![Token::new(ShardId(1), Version(9))]
        );
    }
}
