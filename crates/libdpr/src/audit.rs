//! Observation tap for online invariant checking.
//!
//! The chaos harness (`dpr-chaos`) needs to see the *inputs* of the
//! cut-finding service — every commit report with its dependency set, and
//! every cut the finder publishes — to maintain its own shadow precedence
//! graph and assert Definition 3.1's properties (downward closure, cut
//! monotonicity, prefix recoverability) independently of the finder under
//! test. Polling the metadata store alone cannot reconstruct dependency
//! sets (the approximate and hybrid finders discard or keep them only in
//! memory), so the finders feed this process-global sink directly.
//!
//! The tap is disabled by default and costs one relaxed atomic load per
//! report while off; it is not a general-purpose event bus — install a
//! sink only for checking/debugging, never on a measured benchmark path.

use dpr_core::Token;
use dpr_metadata::Cut;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Receiver of finder observations. Implementations must be cheap and
/// non-blocking: calls happen on the finder's commit-report path.
pub trait AuditSink: Send + Sync {
    /// A shard reported `token` locally committed with `deps` as its
    /// cross-shard dependency set.
    fn commit_reported(&self, token: Token, deps: &[Token]);
    /// The finder published `cut` to the metadata store (after a
    /// successful `update_cut_atomically`).
    fn cut_published(&self, cut: &Cut);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn AuditSink>>> = RwLock::new(None);

/// Install the process-global audit sink (replacing any previous one).
pub fn install(sink: Arc<dyn AuditSink>) {
    *SINK.write() = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the audit sink; subsequent finder activity is unobserved.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *SINK.write() = None;
}

/// Whether a sink is installed (guards loops over batched reports).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

#[inline]
pub(crate) fn commit_reported(token: Token, deps: &[Token]) {
    if enabled() {
        if let Some(sink) = SINK.read().clone() {
            sink.commit_reported(token, deps);
        }
    }
}

#[inline]
pub(crate) fn cut_published(cut: &Cut) {
    if enabled() {
        if let Some(sink) = SINK.read().clone() {
            sink.cut_published(cut);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::{ShardId, Version};
    use parking_lot::Mutex;

    struct Recorder {
        commits: Mutex<Vec<Token>>,
        cuts: Mutex<Vec<Cut>>,
    }

    impl AuditSink for Recorder {
        fn commit_reported(&self, token: Token, _deps: &[Token]) {
            self.commits.lock().push(token);
        }
        fn cut_published(&self, cut: &Cut) {
            self.cuts.lock().push(cut.clone());
        }
    }

    #[test]
    fn sink_sees_reports_only_while_installed() {
        let rec = Arc::new(Recorder {
            commits: Mutex::new(Vec::new()),
            cuts: Mutex::new(Vec::new()),
        });
        let token = Token::new(ShardId(0), Version(1));
        commit_reported(token, &[]);
        assert!(rec.commits.lock().is_empty(), "not yet installed");
        install(rec.clone());
        assert!(enabled());
        commit_reported(token, &[]);
        cut_published(&Cut::from([(ShardId(0), Version(1))]));
        uninstall();
        commit_reported(token, &[]);
        assert_eq!(rec.commits.lock().len(), 1);
        assert_eq!(rec.cuts.lock().len(), 1);
        assert!(!enabled());
    }
}
