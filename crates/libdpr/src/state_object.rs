//! The `StateObject` abstraction (§3).

use dpr_core::{Result, ShardId, Version};

/// Description of one completed `Commit()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitDescriptor {
    /// The version the commit sealed (the token is `(shard, version)`).
    pub version: Version,
}

/// A shard of the distributed cache-store, as DPR sees it (§3):
///
/// * `Op()` — executing operations is the *embedding system's* job (the
///   worker forwards request bodies straight to its store); DPR only needs
///   the version each op executed in, which the store reports per op or per
///   batch.
/// * `Commit()` — [`StateObject::request_commit`] starts an asynchronous
///   group commit; completed commits are drained with
///   [`StateObject::take_commits`].
/// * `Restore()` — [`StateObject::restore`] returns the shard to a committed
///   version, discarding everything after it.
///
/// Implementations in this workspace: the FASTER adapter (deep integration,
/// non-blocking restore) and the Redis adapter (wrapped, restart-based
/// restore) in `dpr-cluster`.
pub trait StateObject: Send + Sync {
    /// This shard's id.
    fn shard(&self) -> ShardId;

    /// The version currently assigned to new operations.
    fn current_version(&self) -> Version;

    /// The latest locally durable (committed) version.
    fn durable_version(&self) -> Version;

    /// Request an asynchronous commit. With `target`, the shard
    /// fast-forwards its next version to at least `target` (§3.4 `Vmax`
    /// catch-up). Returns false if a commit is already in flight and the
    /// request was absorbed.
    fn request_commit(&self, target: Option<Version>) -> bool;

    /// Drain commits completed since the last call, oldest first.
    fn take_commits(&self) -> Vec<CommitDescriptor>;

    /// Restore the shard to `version`, discarding all later state. May be
    /// asynchronous; `durable_version`/`current_version` reflect completion.
    fn restore(&self, version: Version) -> Result<()>;
}
