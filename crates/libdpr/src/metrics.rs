//! Metric accessors for the protocol library.
//!
//! Every metric defined here is documented (name, unit, paper
//! cross-reference) in `docs/OBSERVABILITY.md`; keep the two in sync.

use dpr_telemetry::metric_fn;

metric_fn!(
    /// Batches admitted for execution by the before-batch hook (§6).
    pub(crate) fn validate_execute() -> Counter =
        ("dpr_server_validate_execute_total", Count,
         "Batches admitted for execution by DprServer::validate")
);

metric_fn!(
    /// Batches delayed by the §3.2 version lower bound (commit triggered).
    pub(crate) fn validate_delay() -> Counter =
        ("dpr_server_validate_delay_total", Count,
         "Batches delayed because the client version clock was ahead (a commit was requested)")
);

metric_fn!(
    /// Batches rejected for world-line mismatch or in-progress recovery (§4.2).
    pub(crate) fn validate_reject() -> Counter =
        ("dpr_server_validate_reject_total", Count,
         "Batches rejected for world-line mismatch or because the shard is recovering")
);

metric_fn!(
    /// Batch execution to commit report — how far commit trails completion (§1, §6).
    /// Measured lock-free per drain window: first batch recorded since the
    /// last drain → the drain that reports the sealed versions.
    pub(crate) fn commit_latency() -> Histogram =
        ("dpr_server_commit_latency_us", Micros,
         "Time from the first executed batch of a drain window to its commit report to the finder")
);

metric_fn!(
    /// Dependency-stripe overflow: distinct dependent shards exceeded a
    /// stripe's lock-free slots and spilled to its locked side map (§6).
    pub(crate) fn gate_dep_spills() -> Counter =
        ("dpr_server_gate_dep_spills_total", Count,
         "Dependencies routed to a stripe's locked overflow map because all lock-free slots were taken")
);

metric_fn!(
    /// Committed versions reported to the cut finder.
    pub(crate) fn commit_reports() -> Counter =
        ("dpr_server_commit_reports_total", Count,
         "Committed versions reported to the cut finder by pump_commits")
);

metric_fn!(
    /// Dependency tokens persisted into the precedence graph (§3.3 write volume).
    pub(crate) fn graph_dep_tokens() -> Counter =
        ("dpr_finder_graph_dep_tokens_total", Count,
         "Dependency tokens written to the precedence graph by report_commit")
);

metric_fn!(
    /// Duration of one finder refresh pass (§3.3-3.4, Fig. 4).
    pub(crate) fn finder_refresh() -> Histogram =
        ("dpr_finder_refresh_us", Micros,
         "Duration of one DprFinder::refresh (cut recompute + persist)")
);

metric_fn!(
    /// Cut lag observed at each refresh: `Vmax` minus the slowest shard's safe
    /// version (§3.4 fast-forward pressure). A histogram rather than a gauge so
    /// the peak lag survives in the report after the cut catches up.
    pub(crate) fn cut_lag() -> Histogram =
        ("dpr_finder_cut_lag_versions", Versions,
         "Vmax minus the minimum cut version, observed at each finder refresh")
);

metric_fn!(
    /// Tokens held by the delta-closure engine's pending graph, sampled at
    /// each compute/commit. Bounded by cut lag in delta mode; grows with
    /// history in full-recompute (oracle) mode.
    pub(crate) fn delta_pending_tokens() -> Gauge =
        ("dpr_finder_delta_pending_tokens", Count,
         "Tokens in the cut engine's pending closure graph (delta working set)")
);
