//! Light epoch protection, after FASTER's `LightEpoch`.
//!
//! Threads working on a shared structure *protect* themselves by publishing
//! the global epoch into a per-thread slot. Maintenance that must wait for
//! all in-flight threads (e.g. freeing a log page, or firing a checkpoint
//! phase transition) bumps the global epoch and registers a *drain action*
//! that runs once every protected thread has advanced past the bump — i.e.
//! once the bumped epoch becomes *safe*.
//!
//! This is the substrate on which the CPR/DPR state machines (checkpoint,
//! rollback) coordinate threads "loosely" without blocking them (§5.5).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel meaning "slot unused / thread not protected".
const UNPROTECTED: u64 = 0;

/// A drain action: runs exactly once, when its trigger epoch becomes safe.
type DrainAction = Box<dyn FnOnce() + Send>;

struct Drain {
    epoch: u64,
    action: DrainAction,
}

/// Epoch table sized for `max_threads` concurrent participants.
pub struct LightEpoch {
    current: AtomicU64,
    slots: Box<[AtomicU64]>,
    drains: Mutex<Vec<Drain>>,
    /// Number of drain actions executed (observable for tests/metrics).
    drained: AtomicU64,
}

impl std::fmt::Debug for LightEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LightEpoch")
            .field("current", &self.current.load(Ordering::Relaxed))
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// Guard for a protected thread; drops protection when dropped.
pub struct EpochGuard<'a> {
    epoch: &'a LightEpoch,
    slot: usize,
}

impl LightEpoch {
    /// Create an epoch table with capacity for `max_threads` simultaneous
    /// participants.
    #[must_use]
    pub fn new(max_threads: usize) -> Self {
        let slots = (0..max_threads.max(1))
            .map(|_| AtomicU64::new(UNPROTECTED))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LightEpoch {
            current: AtomicU64::new(1),
            slots,
            drains: Mutex::new(Vec::new()),
            drained: AtomicU64::new(0),
        }
    }

    /// The current global epoch.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// Number of drain actions that have fired.
    #[must_use]
    pub fn drained_count(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }

    /// Protect the calling thread in an unused slot; the returned guard keeps
    /// the protection alive. Also drains any ready actions.
    ///
    /// # Panics
    /// Panics if all slots are occupied — size the table for your thread
    /// count.
    pub fn protect(&self) -> EpochGuard<'_> {
        let e = self.current.load(Ordering::Acquire);
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.load(Ordering::Relaxed) == UNPROTECTED
                && slot
                    .compare_exchange(UNPROTECTED, e, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.try_drain();
                return EpochGuard {
                    epoch: self,
                    slot: i,
                };
            }
        }
        panic!("LightEpoch: no free slot ({} threads)", self.slots.len());
    }

    /// Refresh an existing guard to the current epoch and drain ready
    /// actions. Threads in long-running loops call this periodically.
    pub fn refresh(&self, guard: &EpochGuard<'_>) {
        let e = self.current.load(Ordering::Acquire);
        self.slots[guard.slot].store(e, Ordering::Release);
        self.try_drain();
    }

    /// Bump the global epoch and return the *new* epoch value.
    pub fn bump(&self) -> u64 {
        self.current.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Bump the global epoch and register `action` to run once every thread
    /// protected at the pre-bump epoch has moved on (i.e. the pre-bump epoch
    /// is safe). Returns the new epoch.
    pub fn bump_with(&self, action: impl FnOnce() + Send + 'static) -> u64 {
        let prior = self.current.fetch_add(1, Ordering::AcqRel);
        self.drains.lock().push(Drain {
            epoch: prior,
            action: Box::new(action),
        });
        self.try_drain();
        prior + 1
    }

    /// The largest epoch `e` such that no thread is still protected at an
    /// epoch `<= e`.
    #[must_use]
    pub fn safe_epoch(&self) -> u64 {
        let mut min = self.current.load(Ordering::Acquire);
        for slot in self.slots.iter() {
            let v = slot.load(Ordering::Acquire);
            if v != UNPROTECTED && v <= min {
                min = v - 1;
            }
        }
        min
    }

    /// Run any drain actions whose epoch is now safe.
    pub fn try_drain(&self) {
        if self.drains.lock().is_empty() {
            return;
        }
        let safe = self.safe_epoch();
        let mut ready = Vec::new();
        {
            let mut drains = self.drains.lock();
            let mut i = 0;
            while i < drains.len() {
                if drains[i].epoch <= safe {
                    ready.push(drains.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for d in ready {
            (d.action)();
            self.drained.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True if no thread is currently protected.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.load(Ordering::Acquire) == UNPROTECTED)
    }
}

impl EpochGuard<'_> {
    /// Refresh this guard's published epoch to the current global epoch.
    pub fn refresh(&self) {
        self.epoch.refresh(self);
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        self.epoch.slots[self.slot].store(UNPROTECTED, Ordering::Release);
        self.epoch.try_drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn drain_fires_only_after_all_threads_pass() {
        let epoch = LightEpoch::new(4);
        let fired = Arc::new(AtomicBool::new(false));

        let g1 = epoch.protect();
        let g2 = epoch.protect();

        let f = fired.clone();
        epoch.bump_with(move || f.store(true, Ordering::SeqCst));
        assert!(!fired.load(Ordering::SeqCst), "g1/g2 still in old epoch");

        g1.refresh();
        epoch.try_drain();
        assert!(!fired.load(Ordering::SeqCst), "g2 still in old epoch");

        g2.refresh();
        epoch.try_drain();
        assert!(fired.load(Ordering::SeqCst), "all threads advanced");
    }

    #[test]
    fn drain_fires_on_drop() {
        let epoch = LightEpoch::new(2);
        let fired = Arc::new(AtomicBool::new(false));
        let g = epoch.protect();
        let f = fired.clone();
        epoch.bump_with(move || f.store(true, Ordering::SeqCst));
        assert!(!fired.load(Ordering::SeqCst));
        drop(g);
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn drain_fires_immediately_when_quiescent() {
        let epoch = LightEpoch::new(2);
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        epoch.bump_with(move || f.store(true, Ordering::SeqCst));
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn safe_epoch_tracks_min_protected() {
        let epoch = LightEpoch::new(4);
        let g = epoch.protect(); // protected at epoch 1
        epoch.bump(); // current = 2
        epoch.bump(); // current = 3
        assert_eq!(epoch.safe_epoch(), 0, "g pins epoch 1");
        g.refresh(); // now at 3
        assert_eq!(epoch.safe_epoch(), 2);
        drop(g);
        assert_eq!(epoch.safe_epoch(), 3);
    }

    #[test]
    fn concurrent_protect_refresh() {
        let epoch = Arc::new(LightEpoch::new(32));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ep = epoch.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let g = ep.protect();
                    g.refresh();
                    drop(g);
                }
            }));
        }
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let c = counter.clone();
            epoch.bump_with(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        for h in handles {
            h.join().unwrap();
        }
        epoch.try_drain();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(epoch.drained_count(), 50);
    }
}
