//! Light epoch protection, after FASTER's `LightEpoch`.
//!
//! Threads working on a shared structure *protect* themselves by publishing
//! the global epoch into a per-thread slot. Maintenance that must wait for
//! all in-flight threads (e.g. freeing a log page, or firing a checkpoint
//! phase transition) bumps the global epoch and registers a *drain action*
//! that runs once every protected thread has advanced past the bump — i.e.
//! once the bumped epoch becomes *safe*.
//!
//! This is the substrate on which the CPR/DPR state machines (checkpoint,
//! rollback) coordinate threads "loosely" without blocking them (§5.5).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel meaning "slot unused / thread not protected".
const UNPROTECTED: u64 = 0;

/// A drain action: runs exactly once, when its trigger epoch becomes safe.
type DrainAction = Box<dyn FnOnce() + Send>;

struct Drain {
    epoch: u64,
    action: DrainAction,
}

/// One epoch slot, padded to its own cache line so threads publishing their
/// epoch (the per-batch hot path) never false-share with neighbours.
#[repr(align(128))]
#[derive(Default)]
struct Slot(AtomicU64);

/// Epoch table sized for `max_threads` concurrent participants.
pub struct LightEpoch {
    current: AtomicU64,
    slots: Box<[Slot]>,
    drains: Mutex<Vec<Drain>>,
    /// Registered-but-unfired drain actions, kept as a relaxed counter so the
    /// hot path can skip the `drains` mutex entirely when nothing is pending.
    pending: AtomicU64,
    /// Number of drain actions executed (observable for tests/metrics).
    drained: AtomicU64,
}

impl std::fmt::Debug for LightEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LightEpoch")
            .field("current", &self.current.load(Ordering::Relaxed))
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// Guard for a protected thread; drops protection when dropped.
pub struct EpochGuard<'a> {
    epoch: &'a LightEpoch,
    slot: usize,
}

impl LightEpoch {
    /// Create an epoch table with capacity for `max_threads` simultaneous
    /// participants.
    #[must_use]
    pub fn new(max_threads: usize) -> Self {
        let slots = (0..max_threads.max(1))
            .map(|_| Slot::default())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LightEpoch {
            current: AtomicU64::new(1),
            slots,
            drains: Mutex::new(Vec::new()),
            pending: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// The current global epoch.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// Number of drain actions that have fired.
    #[must_use]
    pub fn drained_count(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }

    /// Protect the calling thread in an unused slot; the returned guard keeps
    /// the protection alive. Also drains any ready actions.
    ///
    /// # Panics
    /// Panics if all slots are occupied — size the table for your thread
    /// count.
    pub fn protect(&self) -> EpochGuard<'_> {
        self.protect_hinted(0)
    }

    /// Like [`LightEpoch::protect`], but starts probing at `hint % slots`.
    ///
    /// Threads that pass a stable per-thread hint (e.g. an executor index)
    /// re-acquire "their" padded slot on every call, so the acquisition CAS
    /// stays on a core-local cache line instead of every thread fighting
    /// over the lowest free slots.
    ///
    /// # Panics
    /// Panics if all slots are occupied — size the table for your thread
    /// count.
    pub fn protect_hinted(&self, hint: usize) -> EpochGuard<'_> {
        let e = self.current.load(Ordering::Acquire);
        let n = self.slots.len();
        let start = hint % n;
        for off in 0..n {
            let i = (start + off) % n;
            let slot = &self.slots[i].0;
            if slot.load(Ordering::Relaxed) == UNPROTECTED
                && slot
                    .compare_exchange(UNPROTECTED, e, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.try_drain();
                return EpochGuard {
                    epoch: self,
                    slot: i,
                };
            }
        }
        panic!("LightEpoch: no free slot ({} threads)", self.slots.len());
    }

    /// Refresh an existing guard to the current epoch and drain ready
    /// actions. Threads in long-running loops call this periodically.
    pub fn refresh(&self, guard: &EpochGuard<'_>) {
        let e = self.current.load(Ordering::Acquire);
        self.slots[guard.slot].0.store(e, Ordering::Release);
        self.try_drain();
    }

    /// Bump the global epoch and return the *new* epoch value.
    pub fn bump(&self) -> u64 {
        self.current.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Bump the global epoch and register `action` to run once every thread
    /// protected at the pre-bump epoch has moved on (i.e. the pre-bump epoch
    /// is safe). Returns the new epoch.
    pub fn bump_with(&self, action: impl FnOnce() + Send + 'static) -> u64 {
        let prior = self.current.fetch_add(1, Ordering::AcqRel);
        self.drains.lock().push(Drain {
            epoch: prior,
            action: Box::new(action),
        });
        self.pending.fetch_add(1, Ordering::Release);
        self.try_drain();
        prior + 1
    }

    /// Bump the global epoch and *wait* (bounded backoff) until every thread
    /// protected at the pre-bump epoch has released or refreshed — i.e. all
    /// writers that could still be mid-flight against pre-bump state are
    /// gone. Readers of that state can then proceed without ever having
    /// blocked the writers.
    pub fn quiesce(&self) {
        let target = self.bump();
        let mut backoff = crate::backoff::Backoff::new();
        while self.safe_epoch() < target - 1 {
            self.try_drain();
            backoff.snooze();
        }
    }

    /// The largest epoch `e` such that no thread is still protected at an
    /// epoch `<= e`.
    #[must_use]
    pub fn safe_epoch(&self) -> u64 {
        let mut min = self.current.load(Ordering::Acquire);
        for slot in self.slots.iter() {
            let v = slot.0.load(Ordering::Acquire);
            if v != UNPROTECTED && v <= min {
                min = v - 1;
            }
        }
        min
    }

    /// Run any drain actions whose epoch is now safe.
    ///
    /// The common case — nothing registered — is a single relaxed load, so
    /// per-batch hot paths can call this unconditionally.
    pub fn try_drain(&self) {
        if self.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        let safe = self.safe_epoch();
        let mut ready = Vec::new();
        {
            let mut drains = self.drains.lock();
            let mut i = 0;
            while i < drains.len() {
                if drains[i].epoch <= safe {
                    ready.push(drains.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for d in ready {
            (d.action)();
            self.pending.fetch_sub(1, Ordering::Release);
            self.drained.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True if no thread is currently protected.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.0.load(Ordering::Acquire) == UNPROTECTED)
    }
}

impl EpochGuard<'_> {
    /// Refresh this guard's published epoch to the current global epoch.
    pub fn refresh(&self) {
        self.epoch.refresh(self);
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        self.epoch.slots[self.slot]
            .0
            .store(UNPROTECTED, Ordering::Release);
        self.epoch.try_drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn drain_fires_only_after_all_threads_pass() {
        let epoch = LightEpoch::new(4);
        let fired = Arc::new(AtomicBool::new(false));

        let g1 = epoch.protect();
        let g2 = epoch.protect();

        let f = fired.clone();
        epoch.bump_with(move || f.store(true, Ordering::SeqCst));
        assert!(!fired.load(Ordering::SeqCst), "g1/g2 still in old epoch");

        g1.refresh();
        epoch.try_drain();
        assert!(!fired.load(Ordering::SeqCst), "g2 still in old epoch");

        g2.refresh();
        epoch.try_drain();
        assert!(fired.load(Ordering::SeqCst), "all threads advanced");
    }

    #[test]
    fn drain_fires_on_drop() {
        let epoch = LightEpoch::new(2);
        let fired = Arc::new(AtomicBool::new(false));
        let g = epoch.protect();
        let f = fired.clone();
        epoch.bump_with(move || f.store(true, Ordering::SeqCst));
        assert!(!fired.load(Ordering::SeqCst));
        drop(g);
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn drain_fires_immediately_when_quiescent() {
        let epoch = LightEpoch::new(2);
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        epoch.bump_with(move || f.store(true, Ordering::SeqCst));
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn safe_epoch_tracks_min_protected() {
        let epoch = LightEpoch::new(4);
        let g = epoch.protect(); // protected at epoch 1
        epoch.bump(); // current = 2
        epoch.bump(); // current = 3
        assert_eq!(epoch.safe_epoch(), 0, "g pins epoch 1");
        g.refresh(); // now at 3
        assert_eq!(epoch.safe_epoch(), 2);
        drop(g);
        assert_eq!(epoch.safe_epoch(), 3);
    }

    #[test]
    fn hinted_protect_prefers_the_hinted_slot() {
        let epoch = LightEpoch::new(8);
        let g = epoch.protect_hinted(5);
        assert_eq!(g.slot, 5);
        // Occupied hint probes onward (wrapping).
        let g2 = epoch.protect_hinted(5);
        assert_eq!(g2.slot, 6);
        let g3 = epoch.protect_hinted(7);
        assert_eq!(g3.slot, 7);
        let g4 = epoch.protect_hinted(7);
        assert_eq!(g4.slot, 0, "wraps past the end");
    }

    #[test]
    fn quiesce_waits_for_inflight_guards() {
        let epoch = Arc::new(LightEpoch::new(4));
        let release = Arc::new(AtomicBool::new(false));
        let ep = epoch.clone();
        let rel = release.clone();
        let writer = std::thread::spawn(move || {
            let g = ep.protect();
            while !rel.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            drop(g);
        });
        // Give the writer time to protect, then ask it to release shortly
        // after quiesce starts waiting.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let ep = epoch.clone();
        let waiter = std::thread::spawn(move || ep.quiesce());
        std::thread::sleep(std::time::Duration::from_millis(10));
        release.store(true, Ordering::Release);
        writer.join().unwrap();
        waiter.join().unwrap();
        assert!(epoch.quiescent());
    }

    #[test]
    fn concurrent_protect_refresh() {
        let epoch = Arc::new(LightEpoch::new(32));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ep = epoch.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let g = ep.protect();
                    g.refresh();
                    drop(g);
                }
            }));
        }
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let c = counter.clone();
            epoch.bump_with(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        for h in handles {
            h.join().unwrap();
        }
        epoch.try_drain();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(epoch.drained_count(), 50);
    }
}
