//! Bounded exponential backoff for short waits.
//!
//! The protocol has a handful of places where a thread must wait for
//! progress made elsewhere — a delayed batch waiting for a fast-forward
//! commit, a synchronous-recoverability batch waiting for durability, the
//! gate drain waiting for in-flight writers to leave the epoch. A bare
//! `yield_now` loop burns a full core for the whole wait; a fixed sleep adds
//! latency to waits that would have resolved in nanoseconds. [`Backoff`]
//! escalates through three regimes instead: spin (cheapest, for waits that
//! resolve within a few cache misses), yield (give the scheduler a chance on
//! oversubscribed machines), then short bounded sleeps (stop burning the
//! core entirely, capped so wakeup latency stays small).

use std::time::Duration;

/// Spin-loop iterations before escalating to `yield_now`.
const SPIN_LIMIT: u32 = 6;
/// Yields before escalating to sleeping.
const YIELD_LIMIT: u32 = 10;
/// First sleep duration; doubles per step up to [`MAX_SLEEP`].
const BASE_SLEEP: Duration = Duration::from_micros(50);
/// Sleep cap — bounds worst-case wakeup latency once a wait goes long.
const MAX_SLEEP: Duration = Duration::from_millis(1);

/// Bounded exponential backoff: spin → yield → short sleep.
///
/// ```
/// use dpr_core::backoff::Backoff;
/// let mut backoff = Backoff::new();
/// let mut tries = 0;
/// while tries < 3 {
///     tries += 1; // ... check the condition being waited on ...
///     backoff.snooze();
/// }
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh backoff in the spinning regime.
    #[must_use]
    pub fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Back to the spinning regime (call after the awaited condition made
    /// progress, so the next wait starts cheap again).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// True once the backoff has escalated past spinning — the hint that a
    /// wait is no longer "momentary" (useful for deadline checks that are
    /// too expensive to evaluate every spin).
    #[must_use]
    pub fn is_waiting_long(&self) -> bool {
        self.step > YIELD_LIMIT
    }

    /// Wait one escalating step: `2^n` spin-loop hints while in the spin
    /// regime, then `yield_now`, then exponentially growing sleeps capped at
    /// 1 ms.
    pub fn snooze(&mut self) {
        if self.step < SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            let exp = (self.step - YIELD_LIMIT).min(10);
            let sleep = BASE_SLEEP.saturating_mul(1 << exp).min(MAX_SLEEP);
            std::thread::sleep(sleep);
        }
        self.step = self.step.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn escalates_through_regimes() {
        let mut b = Backoff::new();
        assert!(!b.is_waiting_long());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_waiting_long());
        b.reset();
        assert!(!b.is_waiting_long());
    }

    #[test]
    fn sleep_steps_stay_bounded() {
        let mut b = Backoff::new();
        // Drive well past the cap; each step must stay ~1 ms.
        for _ in 0..30 {
            b.snooze();
        }
        let t = Instant::now();
        b.snooze();
        assert!(
            t.elapsed() < Duration::from_millis(50),
            "sleep cap exceeded"
        );
    }

    #[test]
    fn early_steps_are_cheap() {
        let mut b = Backoff::new();
        let t = Instant::now();
        for _ in 0..SPIN_LIMIT {
            b.snooze();
        }
        // Pure spinning: far below a scheduler quantum.
        assert!(t.elapsed() < Duration::from_millis(10));
    }
}
