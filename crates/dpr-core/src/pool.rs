//! Tiered buffer pool for the zero-copy hot path.
//!
//! The paper requires the DPR gates to be "implemented scalably" (§6); PR 3
//! striped the server-side gate, and this module carries the same
//! philosophy up into the network plane: the steady-state request path must
//! not touch the global allocator. Two kinds of buffers circulate:
//!
//! * **Scratch buffers** ([`ScratchLease`]) — exclusively owned `Vec<u8>`s
//!   used for connection read/write buffers and frame-encode staging. They
//!   return to the pool when the lease drops.
//! * **Shared buffers** ([`SharedLease`]) — `Arc<[u8]>` allocations that a
//!   decoded frame body is copied into once and then *sliced* zero-copy
//!   ([`bytes::Bytes::from_shared`]): keys and values handed to a shard are
//!   views of the pooled allocation, not fresh `Vec`s. A shared buffer is
//!   recycled only once every outstanding view has dropped, observed via
//!   `Arc::strong_count == 1` at acquire time — the lock-free analogue of a
//!   reference-counted slab. Small slices (≤ `bytes::INLINE_CAP`) inline
//!   and take no claim, so the paper's 8-byte keys/values (§7.1) never pin
//!   a pooled body.
//!
//! Buffers are size-classed (powers of four from 1 KiB to 1 MiB) and each
//! class keeps cache-line-padded per-stripe free lists indexed by a
//! thread-affine stripe id, mirroring the gate's stripe design: distinct
//! I/O threads hit distinct free lists and never contend.
//!
//! Telemetry: `dpr_pool_hits_total` / `dpr_pool_misses_total` count acquire
//! outcomes; `dpr_pool_retained_total` counts shared buffers that were
//! still referenced when probed (e.g. a > [`bytes::INLINE_CAP`]-byte value
//! retained by a shard) and therefore dropped from the free list instead of
//! being reused. See `docs/OBSERVABILITY.md`.

use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use dpr_telemetry::metric_fn;
use parking_lot::Mutex;

metric_fn!(
    /// Pool acquires satisfied from a free list (no heap allocation).
    pub fn pool_hits() -> Counter =
        ("dpr_pool_hits_total", Count, "Buffer-pool acquires served from a free list")
);
metric_fn!(
    /// Pool acquires that had to allocate (cold pool, oversize request, or
    /// every probed shared buffer still referenced).
    pub fn pool_misses() -> Counter =
        ("dpr_pool_misses_total", Count, "Buffer-pool acquires that allocated fresh")
);
metric_fn!(
    /// Shared buffers found still-referenced at acquire time and evicted
    /// from the free list (their memory frees when the last view drops).
    pub fn pool_retained() -> Counter =
        ("dpr_pool_retained_total", Count, "Pooled shared buffers evicted while still referenced")
);

/// Size classes: 1 KiB, 4 KiB, 16 KiB, 64 KiB, 256 KiB, 1 MiB.
///
/// Typical netload frame bodies (batch of 8 ops, 8-byte keys/values) are a
/// few hundred bytes and land in the first class; `MAX_FRAME_BODY`-sized
/// bodies overflow the largest class and fall back to plain allocation.
const CLASSES: [usize; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20];

/// Free-list capacity per stripe per class. Bounds pool memory at
/// `Σ class_size × stripes × PER_STRIPE_CAP` if every list fills (≈ tens of
/// MiB at 8 stripes), while comfortably covering a pipelined window.
const PER_STRIPE_CAP: usize = 32;

/// How many shared candidates one acquire inspects before giving up and
/// allocating. Still-referenced candidates are evicted (not re-queued), so
/// the list self-cleans instead of accumulating pinned buffers.
const SHARED_PROBES: usize = 4;

/// One per-thread-stripe free list; padded so stripes on adjacent indices
/// do not false-share.
#[repr(align(128))]
struct Stripe {
    scratch: Mutex<Vec<Vec<u8>>>,
    shared: Mutex<Vec<Arc<[u8]>>>,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            scratch: Mutex::new(Vec::new()),
            shared: Mutex::new(Vec::new()),
        }
    }
}

struct SizeClass {
    capacity: usize,
    stripes: Box<[Stripe]>,
}

/// A tiered (size-classed, striped) pool of reusable byte buffers.
///
/// All methods are `&self` and thread-safe. The process-wide instance is
/// [`BufferPool::global`]; tests can build isolated instances with
/// [`BufferPool::leaked`].
pub struct BufferPool {
    classes: Box<[SizeClass]>,
}

/// Thread-affine stripe id, assigned round-robin on first use per thread —
/// the same scheme the striped gate uses for its dependency stripes.
fn stripe_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ID: Cell<Option<usize>> = const { Cell::new(None) };
    }
    ID.with(|id| match id.get() {
        Some(v) => v,
        None => {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            id.set(Some(v));
            v
        }
    })
}

impl BufferPool {
    /// Build a pool with the default size classes and `stripes` free lists
    /// per class, leaked to `'static` so leases can reference it.
    #[must_use]
    pub fn leaked(stripes: usize) -> &'static BufferPool {
        let stripes = stripes.max(1);
        let classes = CLASSES
            .iter()
            .map(|&capacity| SizeClass {
                capacity,
                stripes: (0..stripes).map(|_| Stripe::new()).collect(),
            })
            .collect();
        Box::leak(Box::new(BufferPool { classes }))
    }

    /// The process-wide pool, sized to the machine's parallelism.
    #[must_use]
    pub fn global() -> &'static BufferPool {
        static GLOBAL: OnceLock<&'static BufferPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let stripes = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .next_power_of_two()
                .min(16);
            BufferPool::leaked(stripes)
        })
    }

    /// Index of the smallest class with `capacity >= min`, or `None` when
    /// the request overflows the largest class (caller allocates unpooled).
    fn class_for(&self, min: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.capacity >= min)
    }

    fn stripe(&self, class: usize) -> &Stripe {
        let stripes = &self.classes[class].stripes;
        &stripes[stripe_id() % stripes.len()]
    }

    /// Acquire an exclusively owned scratch buffer with
    /// `capacity >= min_capacity` and length 0.
    #[must_use]
    pub fn acquire_scratch(&'static self, min_capacity: usize) -> ScratchLease {
        let Some(class) = self.class_for(min_capacity) else {
            pool_misses().inc();
            return ScratchLease {
                vec: Vec::with_capacity(min_capacity),
                class: None,
                pool: self,
            };
        };
        if let Some(vec) = self.stripe(class).scratch.lock().pop() {
            pool_hits().inc();
            debug_assert!(vec.is_empty());
            return ScratchLease {
                vec,
                class: Some(class),
                pool: self,
            };
        }
        pool_misses().inc();
        ScratchLease {
            vec: Vec::with_capacity(self.classes[class].capacity),
            class: Some(class),
            pool: self,
        }
    }

    /// Acquire a shared buffer with `capacity >= min_capacity`, guaranteed
    /// unique (safe to write through [`SharedLease::data_mut`]).
    ///
    /// Probes up to `SHARED_PROBES` recycled candidates; ones still
    /// referenced by outstanding [`Bytes`] views are evicted and counted in
    /// `dpr_pool_retained_total`.
    #[must_use]
    pub fn acquire_shared(&'static self, min_capacity: usize) -> SharedLease {
        let Some(class) = self.class_for(min_capacity) else {
            pool_misses().inc();
            return SharedLease {
                buf: Arc::from(vec![0u8; min_capacity].into_boxed_slice()),
                class: None,
                pool: self,
            };
        };
        {
            let mut list = self.stripe(class).shared.lock();
            for _ in 0..SHARED_PROBES {
                let Some(buf) = list.pop() else { break };
                if Arc::strong_count(&buf) == 1 {
                    drop(list);
                    pool_hits().inc();
                    return SharedLease {
                        buf,
                        class: Some(class),
                        pool: self,
                    };
                }
                // Still viewed (e.g. a large value now owned by a shard):
                // drop our claim; the allocation frees with its last view.
                pool_retained().inc();
            }
        }
        pool_misses().inc();
        SharedLease {
            buf: Arc::from(vec![0u8; self.classes[class].capacity].into_boxed_slice()),
            class: Some(class),
            pool: self,
        }
    }

    fn release_scratch(&self, mut vec: Vec<u8>, class: usize) {
        // A lease that grew past twice its class would distort the class's
        // footprint; let the allocator have it back.
        if vec.capacity() > self.classes[class].capacity * 2 {
            return;
        }
        vec.clear();
        let mut list = self.classes[class].stripes[stripe_id() % self.classes[class].stripes.len()]
            .scratch
            .lock();
        if list.len() < PER_STRIPE_CAP {
            list.push(vec);
        }
    }

    fn release_shared(&self, buf: Arc<[u8]>, class: usize) {
        let mut list = self.classes[class].stripes[stripe_id() % self.classes[class].stripes.len()]
            .shared
            .lock();
        if list.len() < PER_STRIPE_CAP {
            list.push(buf);
        }
    }
}

/// An exclusively owned pooled `Vec<u8>`; derefs to the vector and returns
/// it to the pool on drop.
pub struct ScratchLease {
    vec: Vec<u8>,
    class: Option<usize>,
    pool: &'static BufferPool,
}

impl ScratchLease {
    /// Detach the vector from the pool (it will not be recycled).
    #[must_use]
    pub fn take(mut self) -> Vec<u8> {
        self.class = None;
        std::mem::take(&mut self.vec)
    }
}

impl Deref for ScratchLease {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.vec
    }
}

impl DerefMut for ScratchLease {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }
}

impl Drop for ScratchLease {
    fn drop(&mut self) {
        if let Some(class) = self.class {
            self.pool
                .release_scratch(std::mem::take(&mut self.vec), class);
        }
    }
}

/// A pooled `Arc<[u8]>` that is unique at acquire time: fill it through
/// [`SharedLease::data_mut`], then [`SharedLease::freeze`] it into a
/// zero-copy [`Bytes`] view. Freezing (or dropping) offers the allocation
/// back to the pool; it is reused once every view has dropped.
pub struct SharedLease {
    buf: Arc<[u8]>,
    class: Option<usize>,
    pool: &'static BufferPool,
}

impl SharedLease {
    /// Usable capacity of the underlying allocation.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Mutable access to the full allocation (unique until frozen).
    pub fn data_mut(&mut self) -> &mut [u8] {
        Arc::get_mut(&mut self.buf).expect("SharedLease is unique until frozen")
    }

    /// Freeze the first `len` bytes into an immutable zero-copy view and
    /// offer the allocation back to the pool for reuse once all views drop.
    ///
    /// # Panics
    /// If `len` exceeds [`SharedLease::capacity`].
    #[must_use]
    pub fn freeze(self, len: usize) -> Bytes {
        let view = Bytes::from_shared(self.buf.clone(), 0..len);
        if let Some(class) = self.class {
            self.pool.release_shared(self.buf.clone(), class);
        }
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_recycles_the_same_allocation() {
        let pool = BufferPool::leaked(1);
        let mut a = pool.acquire_scratch(100);
        a.extend_from_slice(&[1, 2, 3]);
        let ptr = a.as_ptr() as usize;
        let cap = a.capacity();
        drop(a);
        let b = pool.acquire_scratch(100);
        assert_eq!(b.as_ptr() as usize, ptr, "same allocation returned");
        assert_eq!(b.capacity(), cap);
        assert!(b.is_empty(), "recycled scratch is cleared");
    }

    #[test]
    fn scratch_take_detaches_from_pool() {
        let pool = BufferPool::leaked(1);
        let a = pool.acquire_scratch(64);
        let ptr = a.as_ptr() as usize;
        let v = a.take();
        drop(v);
        let b = pool.acquire_scratch(64);
        // Freed, not recycled — a fresh allocation may or may not reuse the
        // address, but the pool's free list must be empty, which we can
        // observe via the miss this acquire takes (ptr equality would be
        // incidental). Just assert the lease works.
        assert!(b.capacity() >= 64);
        let _ = ptr;
    }

    #[test]
    fn shared_round_trip_recycles_after_views_drop() {
        // Steady state: views drop before the next acquire, so the same
        // allocation cycles indefinitely.
        let pool = BufferPool::leaked(1);
        let mut lease = pool.acquire_shared(256);
        lease.data_mut()[..4].copy_from_slice(b"abcd");
        let base_ptr = lease.buf.as_ptr() as usize;
        let view = lease.freeze(4);
        assert_eq!(&view[..], b"abcd");
        drop(view);
        for round in 0..4 {
            let mut l = pool.acquire_shared(256);
            assert_eq!(
                l.buf.as_ptr() as usize,
                base_ptr,
                "round {round}: same allocation reused"
            );
            l.data_mut()[0] = round as u8;
            drop(l.freeze(1));
        }
    }

    #[test]
    fn busy_buffers_are_evicted_not_reused() {
        // A buffer probed while a (non-inline) view is still outstanding is
        // surrendered to the allocator: the acquire must not hand out
        // aliased memory, and the list self-cleans instead of accumulating
        // pinned entries.
        let pool = BufferPool::leaked(1);
        let mut lease = pool.acquire_shared(256);
        lease.data_mut()[..4].copy_from_slice(b"abcd");
        let base_ptr = lease.buf.as_ptr() as usize;
        let view = lease.freeze(4); // from_shared: holds a real claim
        let retained0 = pool_retained().get();
        let other = pool.acquire_shared(256);
        assert_ne!(
            other.buf.as_ptr() as usize,
            base_ptr,
            "busy buffer must not be reacquired"
        );
        assert!(pool_retained().get() > retained0);
        assert_eq!(&view[..], b"abcd", "view unaffected by the probe");
    }

    #[test]
    fn small_views_do_not_pin_the_buffer() {
        // An inline-sized slice of the frozen view takes no claim, so the
        // buffer recycles even while the small slice is alive — this is
        // what keeps 8-byte stored values from pinning pooled bodies.
        let pool = BufferPool::leaked(1);
        let mut lease = pool.acquire_shared(128);
        lease.data_mut()[..8].copy_from_slice(&7u64.to_be_bytes());
        let base_ptr = lease.buf.as_ptr() as usize;
        let body = lease.freeze(8);
        let small = body.slice(0..8); // inline copy
        drop(body);
        let l = pool.acquire_shared(128);
        assert_eq!(l.buf.as_ptr() as usize, base_ptr);
        assert_eq!(&small[..], &7u64.to_be_bytes());
    }

    #[test]
    fn oversize_requests_fall_back_to_plain_allocation() {
        let pool = BufferPool::leaked(1);
        let huge = pool.acquire_scratch((1 << 20) + 1);
        assert!(huge.capacity() > 1 << 20);
        let mut shared = pool.acquire_shared((1 << 20) + 1);
        assert_eq!(shared.data_mut().len(), (1 << 20) + 1);
        let _ = shared.freeze(16);
    }

    #[test]
    fn hit_and_miss_counters_advance() {
        let pool = BufferPool::leaked(1);
        let misses0 = pool_misses().get();
        let hits0 = pool_hits().get();
        drop(pool.acquire_scratch(32)); // miss (cold), then recycled
        let _second = pool.acquire_scratch(32); // hit
        assert!(pool_misses().get() > misses0);
        assert!(pool_hits().get() > hits0);
    }
}
