//! Time sources.
//!
//! Benchmarks and the cluster run on real time ([`SystemClock`]); unit and
//! property tests that exercise timing-sensitive logic (checkpoint intervals,
//! lease expiry, commit-latency accounting) use a manually advanced
//! [`SimClock`] so they are deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync + 'static {
    /// Nanoseconds since an arbitrary epoch.
    fn now_nanos(&self) -> u64;

    /// Convenience: now as a [`Duration`] since the clock's epoch.
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos())
    }
}

/// Real monotonic time.
#[derive(Debug, Clone)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock whose epoch is the moment of construction.
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for deterministic tests.
///
/// Cloning shares the underlying counter, so components holding clones all
/// observe the same advances.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Set the absolute time (must not go backwards in correct usage; this is
    /// not enforced so tests can model clock anomalies).
    pub fn set(&self, d: Duration) {
        self.nanos.store(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_advances_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_nanos(), 0);
        c.advance(Duration::from_millis(5));
        assert_eq!(c2.now(), Duration::from_millis(5));
        c2.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(10));
    }
}
