//! Key and value types used by every store in the workspace.
//!
//! The paper's evaluation uses 8-byte keys and 8-byte values (§7.1), so the
//! hot path encodes small keys/values inline; both types still support
//! arbitrary byte strings for generality.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A key in the global keyspace.
///
/// Keys hash with a strong-enough 64-bit mix (SplitMix64 over FxHash-style
/// folding) so that hash-partitioning across shards and hash-index bucket
/// selection are both well distributed even for sequential integer keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Key(pub Bytes);

impl Key {
    /// Build a key from a `u64`, the common YCSB case.
    #[must_use]
    pub fn from_u64(k: u64) -> Key {
        Key(Bytes::copy_from_slice(&k.to_be_bytes()))
    }

    /// Interpret the key as a `u64` if it is exactly 8 bytes.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        if self.0.len() == 8 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.0);
            Some(u64::from_be_bytes(b))
        } else {
            None
        }
    }

    /// Stable 64-bit hash of the key, used for both shard routing and the
    /// hash index. Not `DefaultHasher` so the value is stable across runs and
    /// processes (checkpoints embed nothing derived from it, but tests and
    /// partitioning want determinism).
    #[must_use]
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for chunk in self.0.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            h ^= u64::from_le_bytes(b);
            // SplitMix64 finalizer.
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h = z ^ (z >> 31);
        }
        h
    }

    /// Byte length of the key.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<u64> for Key {
    fn from(k: u64) -> Self {
        Key::from_u64(k)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_u64() {
            Some(k) => write!(f, "k{k}"),
            None => write!(f, "k{:02x?}", &self.0[..self.0.len().min(8)]),
        }
    }
}

/// A value stored against a key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Value(pub Bytes);

impl Value {
    /// Build a value from a `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Value {
        Value(Bytes::copy_from_slice(&v.to_be_bytes()))
    }

    /// Interpret as `u64` if exactly 8 bytes.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        if self.0.len() == 8 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.0);
            Some(u64::from_be_bytes(b))
        } else {
            None
        }
    }

    /// Byte length of the value.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn u64_round_trip() {
        let k = Key::from_u64(42);
        assert_eq!(k.as_u64(), Some(42));
        let v = Value::from_u64(7);
        assert_eq!(v.as_u64(), Some(7));
    }

    #[test]
    fn non_u64_keys_work() {
        let k = Key::from("hello-world");
        assert_eq!(k.as_u64(), None);
        assert_eq!(k.len(), 11);
    }

    #[test]
    fn hash_is_stable_and_spread() {
        // Sequential keys must not collide in the low bits (bucket index).
        let mut low_bits = HashSet::new();
        for i in 0..1024u64 {
            let h = Key::from_u64(i).hash64();
            low_bits.insert(h & 0x3FF);
        }
        // Expect the 1024 sequential keys to cover most of the 1024 buckets.
        assert!(
            low_bits.len() > 600,
            "only {} distinct buckets",
            low_bits.len()
        );
        // Stability across constructions.
        assert_eq!(Key::from_u64(99).hash64(), Key::from_u64(99).hash64());
    }

    #[test]
    fn hash_differs_across_keys() {
        assert_ne!(Key::from_u64(1).hash64(), Key::from_u64(2).hash64());
        assert_ne!(Key::from("a").hash64(), Key::from("b").hash64());
    }
}
