//! Unified error type for the workspace.

use crate::version::{SessionId, ShardId, Version, WorldLine};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DprError>;

/// Errors surfaced by DPR components.
///
/// The interesting variants are the protocol-level ones: a
/// [`DprError::WorldLineMismatch`] is how a shard tells a client that a
/// failure happened and the client must compute its surviving prefix (§4.2),
/// and [`DprError::RolledBack`] is what a session surfaces to the application
/// together with the exact prefix that survived (§2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DprError {
    /// The request's world-line does not match the shard's.
    ///
    /// If the shard's world-line is *larger*, the client is behind a failure
    /// it has not yet observed and must recover its session. If smaller, the
    /// shard itself has not finished recovering and the request should be
    /// retried after recovery.
    WorldLineMismatch {
        /// World-line the request was issued on.
        requested: WorldLine,
        /// World-line the shard is currently on.
        current: WorldLine,
    },
    /// The session lost operations to a rollback; the surviving prefix is the
    /// given sequence number (exclusive upper bound of surviving ops).
    RolledBack {
        /// The session affected.
        session: SessionId,
        /// Number of operations that survived (a prefix length).
        survived: u64,
        /// World-line the session must move to before continuing.
        world_line: WorldLine,
    },
    /// The shard addressed does not own the requested key.
    NotOwner {
        /// Shard that rejected the request.
        shard: ShardId,
    },
    /// A restore was requested for a version the shard has no checkpoint for.
    NoSuchCheckpoint {
        /// Shard addressed.
        shard: ShardId,
        /// Version requested.
        version: Version,
    },
    /// The shard is mid-recovery and cannot serve the request yet.
    Recovering,
    /// The component has been shut down.
    Closed,
    /// Underlying storage failure.
    Storage(String),
    /// Metadata-store failure.
    Metadata(String),
    /// Invalid argument or state transition.
    Invalid(String),
    /// Operation timed out waiting for a condition (e.g. commit wait).
    Timeout,
}

impl fmt::Display for DprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DprError::WorldLineMismatch { requested, current } => write!(
                f,
                "world-line mismatch: request on {requested}, shard on {current}"
            ),
            DprError::RolledBack {
                session,
                survived,
                world_line,
            } => write!(
                f,
                "{session} rolled back: {survived} operations survived, now on {world_line}"
            ),
            DprError::NotOwner { shard } => write!(f, "{shard} does not own the requested key"),
            DprError::NoSuchCheckpoint { shard, version } => {
                write!(f, "{shard} has no checkpoint for {version}")
            }
            DprError::Recovering => write!(f, "shard is recovering"),
            DprError::Closed => write!(f, "component closed"),
            DprError::Storage(m) => write!(f, "storage error: {m}"),
            DprError::Metadata(m) => write!(f, "metadata error: {m}"),
            DprError::Invalid(m) => write!(f, "invalid: {m}"),
            DprError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for DprError {}

impl From<std::io::Error> for DprError {
    fn from(e: std::io::Error) -> Self {
        DprError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DprError::WorldLineMismatch {
            requested: WorldLine(1),
            current: WorldLine(2),
        };
        let s = e.to_string();
        assert!(s.contains("wl1") && s.contains("wl2"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk gone");
        let e: DprError = io.into();
        assert!(matches!(e, DprError::Storage(_)));
    }

    #[test]
    fn rolled_back_carries_prefix() {
        let e = DprError::RolledBack {
            session: SessionId(7),
            survived: 42,
            world_line: WorldLine(3),
        };
        assert!(e.to_string().contains("42"));
    }
}
