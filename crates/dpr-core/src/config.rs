//! Shared configuration enums.

use serde::{Deserialize, Serialize};

/// Which DPR-cut-finding algorithm to run (§3.3–3.4, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DprFinderMode {
    /// Persist the full precedence graph; a coordinator computes maximal
    /// transitive closures. Exact but write-heavy.
    Exact,
    /// Persist only committed version numbers; the cut is everything at or
    /// below the cluster-wide minimum version, with `Vmax` fast-forwarding to
    /// bound the lag of slow shards. Cheap but imprecise.
    Approximate,
    /// Exact finder with an in-memory graph, backed by the approximate
    /// finder for fault tolerance: after a coordinator crash the approximate
    /// cut eventually advances past the lost subgraph (§3.4).
    Hybrid,
}

/// Recoverability levels compared in §7.6 (Fig. 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoverabilityLevel {
    /// Not recoverable on failure; no checkpoint/log work at all.
    None,
    /// Operations return immediately, persistence happens in the background
    /// with no cross-shard guarantee (e.g. returning before fsync).
    Eventual,
    /// Operations return immediately; prefix commits are reported
    /// asynchronously by the DPR protocol.
    Dpr,
    /// Operations return only after they are persistent (write-through /
    /// group-commit-and-wait).
    Synchronous,
}

impl RecoverabilityLevel {
    /// Short label used by the benchmark harness output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RecoverabilityLevel::None => "none",
            RecoverabilityLevel::Eventual => "eventual",
            RecoverabilityLevel::Dpr => "dpr",
            RecoverabilityLevel::Synchronous => "sync",
        }
    }
}

/// How a FASTER-style shard captures a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointMode {
    /// Fold-over: mark the mutable region read-only and flush the log tail
    /// (the mode used in the paper's evaluation, §7.1).
    FoldOver,
    /// Full snapshot of live state to a separate file (slower, smaller
    /// recovery working set). Provided for completeness and ablations.
    Snapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        use RecoverabilityLevel::*;
        let labels = [
            None.label(),
            Eventual.label(),
            Dpr.label(),
            Synchronous.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
