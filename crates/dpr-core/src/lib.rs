//! # dpr-core
//!
//! Foundational types and utilities shared by every crate in the DPR
//! reproduction: version and world-line counters, checkpoint tokens,
//! epoch-based resource protection, error types, key/value types, and a
//! simulation-friendly clock.
//!
//! The vocabulary follows the paper directly:
//!
//! * A [`Version`] is the unit of commit granularity — the aggregate state of
//!   one `Commit()` on a `StateObject` (§3.1).
//! * A [`Token`] names one committed version of one shard (`A-2` in Fig. 2).
//! * A [`WorldLine`] identifies one uninterrupted trajectory of system state
//!   evolution (§4.2); failures branch new world-lines.
//! * [`SessionId`] identifies a client session, the unit of dependency
//!   tracking.

#![deny(missing_docs)]

pub mod backoff;
pub mod clock;
pub mod config;
pub mod epoch;
pub mod error;
pub mod kv;
pub mod pool;
pub mod stripe;
pub mod version;

pub use backoff::Backoff;
pub use clock::{Clock, SimClock, SystemClock};
pub use config::{CheckpointMode, DprFinderMode, RecoverabilityLevel};
pub use epoch::LightEpoch;
pub use error::{DprError, Result};
pub use kv::{Key, Value};
pub use pool::{BufferPool, ScratchLease, SharedLease};
pub use stripe::StripedMap;
pub use version::{SessionId, ShardId, Token, Version, WorldLine};
