//! Version, world-line, token and identifier types.
//!
//! These are deliberately small `Copy` newtypes so they can be embedded in
//! wire headers, record headers, and atomics without indirection.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one shard (`StateObject`) in the cluster.
///
/// In the paper's running example (Fig. 2) these are the objects `A`, `B`,
/// `C`. Shard ids are dense small integers assigned by the cluster manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A commit version number on one shard.
///
/// Versions are the granularity of dependency tracking (§3.1): every
/// completed operation belongs to exactly one version of the shard that
/// executed it, and a `Commit()` call seals the current version. Version 0 is
/// reserved for "nothing committed"; the first operations execute in
/// version 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The reserved "nothing yet" version.
    pub const ZERO: Version = Version(0);

    /// First real version in which operations may execute.
    pub const FIRST: Version = Version(1);

    /// The next version.
    #[must_use]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// The previous version, saturating at zero.
    #[must_use]
    pub fn prev(self) -> Version {
        Version(self.0.saturating_sub(1))
    }

    /// Maximum of two versions.
    #[must_use]
    pub fn max(self, other: Version) -> Version {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Version {
    fn from(v: u64) -> Self {
        Version(v)
    }
}

/// A world-line identifier (§4.2).
///
/// The cluster manager assigns a serial id to each failure; world-lines only
/// spawn due to failures, so the pair (failure count) uniquely identifies the
/// trajectory the system state is evolving along. Clients append their
/// world-line to every request and shards execute a request only if the
/// world-lines match.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct WorldLine(pub u64);

impl WorldLine {
    /// The initial world-line every cluster starts on.
    pub const INITIAL: WorldLine = WorldLine(0);

    /// The world-line spawned by the next failure.
    #[must_use]
    pub fn next(self) -> WorldLine {
        WorldLine(self.0 + 1)
    }
}

impl fmt::Display for WorldLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wl{}", self.0)
    }
}

/// A recovery token: one committed version of one shard (§3, "`A-2` is the
/// second committed token of A").
///
/// `Restore(token)` returns the shard to the state captured by the token. A
/// set of tokens, one per shard, forms a DPR-cut when closed under the
/// dependency relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Token {
    /// Which shard this token belongs to.
    pub shard: ShardId,
    /// The committed version it captures.
    pub version: Version,
}

impl Token {
    /// Construct a token.
    #[must_use]
    pub fn new(shard: ShardId, version: Version) -> Token {
        Token { shard, version }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.shard, self.version.0)
    }
}

/// Globally unique client-session identifier.
///
/// Sessions are the logical unit for determining dependencies (§2). D-FASTER
/// sessions are "identified by a globally unique id" (§5.2); when a session
/// operates on a worker, the worker creates a corresponding local session
/// with the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_and_next() {
        assert!(Version::ZERO < Version::FIRST);
        assert_eq!(Version(3).next(), Version(4));
        assert_eq!(Version(3).prev(), Version(2));
        assert_eq!(Version::ZERO.prev(), Version::ZERO);
        assert_eq!(Version(2).max(Version(5)), Version(5));
        assert_eq!(Version(7).max(Version(5)), Version(7));
    }

    #[test]
    fn world_line_advances_monotonically() {
        let wl = WorldLine::INITIAL;
        assert_eq!(wl.next(), WorldLine(1));
        assert!(wl < wl.next());
    }

    #[test]
    fn token_display_matches_paper_notation() {
        let t = Token::new(ShardId(0), Version(2));
        assert_eq!(t.to_string(), "S0-2");
    }

    #[test]
    fn token_equality_requires_both_fields() {
        let a = Token::new(ShardId(1), Version(2));
        assert_ne!(a, Token::new(ShardId(1), Version(3)));
        assert_ne!(a, Token::new(ShardId(2), Version(2)));
        assert_eq!(a, Token::new(ShardId(1), Version(2)));
    }

    #[test]
    fn serde_round_trip() {
        let t = Token::new(ShardId(3), Version(9));
        let s = serde_json::to_string(&t).unwrap();
        let back: Token = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}
