//! Cache-padded striped hash maps for per-core session state.
//!
//! The paper's §6 requires every gate structure to be "implemented
//! scalably"; PR 3 striped the server-side dependency gate and measured an
//! 8.2× contention win. This module generalises the pattern for the
//! *session* maps on the hot path — the server's per-session epoch fence
//! and the workers' exactly-once dedupe cache — which were single
//! `Mutex<HashMap>`s that every I/O thread serialised on.
//!
//! A [`StripedMap`] hashes the key to one of N independent
//! `Mutex<HashMap>` stripes, each padded to its own cache line pair.
//! Threads touching different sessions take different locks and never
//! false-share; N defaults to the host's parallelism (rounded up to a
//! power of two) so the expected contention is constant.

use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// One stripe, padded so adjacent stripes do not share a cache line.
#[repr(align(128))]
struct Stripe<K, V>(Mutex<HashMap<K, V>>);

/// A hash map sharded over cache-padded, independently locked stripes.
///
/// Not a drop-in `HashMap`: operations that need a whole-map view
/// ([`StripedMap::len`], [`StripedMap::clear`]) take every stripe lock in
/// order and are for tests/teardown, not the hot path.
pub struct StripedMap<K, V> {
    stripes: Box<[Stripe<K, V>]>,
}

impl<K: Eq + Hash, V> StripedMap<K, V> {
    /// Build with an explicit stripe count (rounded up to ≥ 1).
    #[must_use]
    pub fn new(stripes: usize) -> StripedMap<K, V> {
        StripedMap {
            stripes: (0..stripes.max(1))
                .map(|_| Stripe(Mutex::new(HashMap::new())))
                .collect(),
        }
    }

    /// Build with one stripe per hardware thread (next power of two,
    /// capped at 64).
    #[must_use]
    pub fn with_default_stripes() -> StripedMap<K, V> {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .next_power_of_two()
            .min(64);
        StripedMap::new(n)
    }

    fn stripe(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() as usize) % self.stripes.len();
        &self.stripes[idx].0
    }

    /// Lock the stripe owning `key` and return its map. All entries whose
    /// keys hash to the same stripe are visible under the one guard.
    pub fn lock_for(&self, key: &K) -> MutexGuard<'_, HashMap<K, V>> {
        self.stripe(key).lock()
    }

    /// Number of stripes (diagnostic).
    #[must_use]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Total entries across all stripes (takes every lock; off hot path).
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.0.lock().len()).sum()
    }

    /// Whether the map holds no entries (takes every lock; off hot path).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every entry (takes every lock; off hot path).
    pub fn clear(&self) {
        for s in &self.stripes {
            s.0.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_route_to_a_consistent_stripe() {
        let m: StripedMap<u64, u32> = StripedMap::new(8);
        for k in 0..100u64 {
            m.lock_for(&k).insert(k, k as u32);
        }
        assert_eq!(m.len(), 100);
        for k in 0..100u64 {
            assert_eq!(m.lock_for(&k).get(&k), Some(&(k as u32)));
        }
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn stripes_lock_independently() {
        // Two keys on different stripes can hold both guards at once; the
        // map must not deadlock. (Find such a pair by probing.)
        let m: StripedMap<u64, u32> = StripedMap::new(8);
        let base = 0u64;
        let other = (1..1000u64)
            .find(|k| {
                let g = m.lock_for(&base);
                let independent = m.stripe(k).try_lock().is_some();
                drop(g);
                independent && {
                    // Make sure it really is a different stripe object.
                    !std::ptr::eq(m.stripe(&base), m.stripe(k))
                }
            })
            .expect("some key lands on another stripe");
        let g1 = m.lock_for(&base);
        let g2 = m.lock_for(&other);
        drop(g1);
        drop(g2);
    }

    #[test]
    fn single_stripe_degrades_gracefully() {
        let m: StripedMap<u64, u32> = StripedMap::new(1);
        m.lock_for(&1).insert(1, 10);
        m.lock_for(&2).insert(2, 20);
        assert_eq!(m.len(), 2);
        assert_eq!(m.stripe_count(), 1);
    }
}
