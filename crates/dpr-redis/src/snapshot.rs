//! Snapshot (RDB-style) serialization.

use dpr_core::{DprError, Key, Result, Value};
use std::collections::HashMap;

/// A point-in-time image of the store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// The full key → value map at capture time.
    pub map: HashMap<Key, Value>,
}

impl Snapshot {
    /// Serialize to a compact binary blob: `count u64 | (key_len u32, key,
    /// val_len u32, val)*`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.map.len() * 24);
        out.extend_from_slice(&(self.map.len() as u64).to_le_bytes());
        for (k, v) in &self.map {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        out
    }

    /// Deserialize a blob produced by [`Snapshot::encode`].
    pub fn decode(buf: &[u8]) -> Result<Snapshot> {
        let corrupt = || DprError::Storage("corrupt snapshot".into());
        if buf.len() < 8 {
            return Err(corrupt());
        }
        let count = u64::from_le_bytes(buf[0..8].try_into().unwrap()) as usize;
        let mut map = HashMap::with_capacity(count);
        let mut pos = 8;
        for _ in 0..count {
            if buf.len() < pos + 4 {
                return Err(corrupt());
            }
            let klen = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if buf.len() < pos + klen + 4 {
                return Err(corrupt());
            }
            let key = Key(bytes::Bytes::copy_from_slice(&buf[pos..pos + klen]));
            pos += klen;
            let vlen = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if buf.len() < pos + vlen {
                return Err(corrupt());
            }
            let value = Value(bytes::Bytes::copy_from_slice(&buf[pos..pos + vlen]));
            pos += vlen;
            map.insert(key, value);
        }
        Ok(Snapshot { map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut snap = Snapshot::default();
        for i in 0..100u64 {
            snap.map.insert(Key::from_u64(i), Value::from_u64(i * 3));
        }
        snap.map.insert(Key::from("str"), Value::from("value"));
        let encoded = snap.encode();
        let back = Snapshot::decode(&encoded).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_round_trip() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn corrupt_blobs_rejected() {
        let mut snap = Snapshot::default();
        snap.map.insert(Key::from_u64(1), Value::from_u64(2));
        let encoded = snap.encode();
        assert!(Snapshot::decode(&encoded[..encoded.len() - 1]).is_err());
        assert!(Snapshot::decode(&[1, 2, 3]).is_err());
    }
}
