//! The single-threaded Redis-like store.

use crate::command::{Command, Reply};
use crate::snapshot::Snapshot;
use dpr_core::{DprError, Key, Result, Value};
use dpr_storage::{BlobStore, LogDevice};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of one completed background save (the DPR token for D-Redis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SaveId(pub u64);

/// Append-only-file fsync policy (maps onto §7.6's recoverability levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AofPolicy {
    /// No AOF at all (persistence via snapshots only, or none).
    Off,
    /// Append on every write, fsync in the background — *eventual*
    /// recoverability: the command returns before the data is durable.
    EverySec,
    /// Append and fsync before returning — *synchronous* recoverability.
    Always,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct RedisConfig {
    /// AOF policy.
    pub aof: AofPolicy,
}

impl Default for RedisConfig {
    fn default() -> Self {
        RedisConfig {
            aof: AofPolicy::Off,
        }
    }
}

/// The single-threaded store. All command execution goes through `&mut
/// self`; concurrency control is the caller's job (exactly the Redis
/// threading model the D-Redis wrapper exploits, §6).
///
/// ```
/// use dpr_core::{Key, Value};
/// use dpr_redis::{Command, RedisConfig, RedisStore, Reply};
/// use dpr_storage::MemBlobStore;
/// use std::sync::Arc;
///
/// let mut store = RedisStore::new(
///     RedisConfig::default(),
///     Arc::new(MemBlobStore::new()),
///     None,
/// ).unwrap();
/// store.execute(&Command::Set(Key::from_u64(1), Value::from_u64(7))).unwrap();
/// let id = store.bgsave().unwrap();      // async snapshot (BGSAVE)
/// store.wait_for_save(id).unwrap();      // the wrapper polls LASTSAVE instead
/// assert_eq!(store.lastsave(), id);
/// ```
pub struct RedisStore {
    map: HashMap<Key, Value>,
    config: RedisConfig,
    blobs: Arc<dyn BlobStore>,
    aof: Option<Arc<dyn LogDevice>>,
    /// Next save id to hand out.
    next_save: u64,
    /// Highest completed save id, written by background save threads.
    last_save: Arc<AtomicU64>,
    /// Handle of an in-flight background save, if any.
    bgsave_thread: Option<std::thread::JoinHandle<()>>,
}

impl RedisStore {
    /// Create a store persisting snapshots to `blobs`, with the AOF (if
    /// enabled) on `aof`.
    pub fn new(
        config: RedisConfig,
        blobs: Arc<dyn BlobStore>,
        aof: Option<Arc<dyn LogDevice>>,
    ) -> Result<RedisStore> {
        if config.aof != AofPolicy::Off && aof.is_none() {
            return Err(DprError::Invalid(
                "AOF policy requires an AOF device".into(),
            ));
        }
        Ok(RedisStore {
            map: HashMap::new(),
            config,
            blobs,
            aof,
            next_save: 1,
            last_save: Arc::new(AtomicU64::new(0)),
            bgsave_thread: None,
        })
    }

    fn snapshot_name(id: SaveId) -> String {
        format!("redis-snap-{:020}", id.0)
    }

    /// Execute one command.
    pub fn execute(&mut self, cmd: &Command) -> Result<Reply> {
        if cmd.is_write() {
            self.log_to_aof(cmd)?;
        }
        Ok(match cmd {
            Command::Get(k) => Reply::Value(self.map.get(k).cloned()),
            Command::Set(k, v) => {
                self.map.insert(k.clone(), v.clone());
                Reply::Ok
            }
            Command::Del(k) => {
                self.map.remove(k);
                Reply::Ok
            }
            Command::Incr(k) => {
                let next = self.map.get(k).and_then(|v| v.as_u64()).unwrap_or(0) + 1;
                self.map.insert(k.clone(), Value::from_u64(next));
                Reply::Int(next)
            }
        })
    }

    fn log_to_aof(&mut self, cmd: &Command) -> Result<()> {
        let Some(aof) = &self.aof else { return Ok(()) };
        match self.config.aof {
            AofPolicy::Off => Ok(()),
            AofPolicy::EverySec => {
                let mut buf = Vec::new();
                cmd.encode(&mut buf);
                aof.append(&buf)?;
                Ok(())
            }
            AofPolicy::Always => {
                let mut buf = Vec::new();
                cmd.encode(&mut buf);
                aof.append(&buf)?;
                aof.flush()?;
                Ok(())
            }
        }
    }

    /// Flush the AOF (the background `everysec` fsync; the wrapper or a
    /// timer calls this).
    pub fn flush_aof(&self) -> Result<()> {
        if let Some(aof) = &self.aof {
            aof.flush()?;
        }
        Ok(())
    }

    /// `BGSAVE`: start an asynchronous snapshot and return its id. The
    /// fork's copy-on-write image is modeled by cloning the map; the clone
    /// happens synchronously (Redis pays the fork + COW cost) and
    /// serialization + blob write happen on a background thread.
    pub fn bgsave(&mut self) -> Result<SaveId> {
        // At most one background save at a time (as in Redis).
        if let Some(h) = self.bgsave_thread.take() {
            if !h.is_finished() {
                self.bgsave_thread = Some(h);
                return Err(DprError::Invalid(
                    "background save already in progress".into(),
                ));
            }
            let _ = h.join();
        }
        let id = SaveId(self.next_save);
        self.next_save += 1;
        let image = Snapshot {
            map: self.map.clone(),
        };
        let blobs = self.blobs.clone();
        let last = self.last_save.clone();
        let handle = std::thread::Builder::new()
            .name("redis-bgsave".into())
            .spawn(move || {
                let data = image.encode();
                if blobs.put(&RedisStore::snapshot_name(id), &data).is_ok() {
                    last.fetch_max(id.0, Ordering::AcqRel);
                }
            })
            .map_err(|e| DprError::Storage(e.to_string()))?;
        self.bgsave_thread = Some(handle);
        Ok(id)
    }

    /// `LASTSAVE`: id of the last *completed* background save (0 if none).
    #[must_use]
    pub fn lastsave(&self) -> SaveId {
        SaveId(self.last_save.load(Ordering::Acquire))
    }

    /// Block until the given save completes (test convenience; the D-Redis
    /// wrapper polls `lastsave` instead).
    pub fn wait_for_save(&mut self, id: SaveId) -> Result<()> {
        if let Some(h) = self.bgsave_thread.take() {
            h.join()
                .map_err(|_| DprError::Storage("bgsave thread panicked".into()))?;
        }
        if self.lastsave() < id {
            return Err(DprError::Storage(format!("save {} never completed", id.0)));
        }
        Ok(())
    }

    /// Restart from the snapshot `id` — the D-Redis `Restore()` (§6).
    /// Discards all current state.
    pub fn restore(&mut self, id: SaveId) -> Result<()> {
        let data = self
            .blobs
            .get(&Self::snapshot_name(id))?
            .ok_or(DprError::NoSuchCheckpoint {
                shard: dpr_core::ShardId(0),
                version: dpr_core::Version(id.0),
            })?;
        self.map = Snapshot::decode(&data)?.map;
        Ok(())
    }

    /// Restart with an empty map (restore to "nothing saved").
    pub fn restore_empty(&mut self) {
        self.map.clear();
    }

    /// Replay the AOF from the device's durable prefix (crash recovery for
    /// the AOF persistence modes).
    pub fn recover_from_aof(&mut self) -> Result<usize> {
        let Some(aof) = &self.aof else {
            return Ok(0);
        };
        let durable = aof.durable_frontier();
        let mut buf = vec![0u8; 1 << 16];
        let mut carry: Vec<u8> = Vec::new();
        let mut offset = 0u64;
        let mut commands = Vec::new();
        while offset < durable {
            let want = ((durable - offset) as usize).min(buf.len());
            let n = aof.read(offset, &mut buf[..want])?;
            if n == 0 {
                break;
            }
            carry.extend_from_slice(&buf[..n]);
            offset += n as u64;
            let mut consumed = 0;
            while let Some((cmd, used)) = Command::decode(&carry[consumed..]) {
                consumed += used;
                commands.push(cmd);
            }
            carry.drain(..consumed);
        }
        let count = commands.len();
        self.map.clear();
        for cmd in commands {
            // Replay without re-logging.
            match cmd {
                Command::Set(k, v) => {
                    self.map.insert(k, v);
                }
                Command::Del(k) => {
                    self.map.remove(&k);
                }
                Command::Incr(k) => {
                    let next = self.map.get(&k).and_then(|v| v.as_u64()).unwrap_or(0) + 1;
                    self.map.insert(k, Value::from_u64(next));
                }
                Command::Get(_) => {}
            }
        }
        Ok(count)
    }

    /// Snapshot of all live key/value pairs (used by key migration, §5.3).
    #[must_use]
    pub fn entries(&self) -> Vec<(Key, Value)> {
        self.map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of keys resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_storage::{MemBlobStore, MemLogDevice};

    fn store(aof: AofPolicy) -> (RedisStore, Arc<MemLogDevice>) {
        let dev = Arc::new(MemLogDevice::null());
        let s = RedisStore::new(
            RedisConfig { aof },
            Arc::new(MemBlobStore::new()),
            Some(dev.clone()),
        )
        .unwrap();
        (s, dev)
    }

    #[test]
    fn basic_commands() {
        let (mut s, _) = store(AofPolicy::Off);
        assert_eq!(
            s.execute(&Command::Set(Key::from_u64(1), Value::from_u64(5)))
                .unwrap(),
            Reply::Ok
        );
        assert_eq!(
            s.execute(&Command::Get(Key::from_u64(1))).unwrap(),
            Reply::Value(Some(Value::from_u64(5)))
        );
        assert_eq!(
            s.execute(&Command::Incr(Key::from_u64(1))).unwrap(),
            Reply::Int(6)
        );
        assert_eq!(
            s.execute(&Command::Incr(Key::from_u64(2))).unwrap(),
            Reply::Int(1)
        );
        s.execute(&Command::Del(Key::from_u64(1))).unwrap();
        assert_eq!(
            s.execute(&Command::Get(Key::from_u64(1))).unwrap(),
            Reply::Value(None)
        );
    }

    #[test]
    fn bgsave_lastsave_restore_cycle() {
        let (mut s, _) = store(AofPolicy::Off);
        s.execute(&Command::Set(Key::from_u64(1), Value::from_u64(1)))
            .unwrap();
        assert_eq!(s.lastsave(), SaveId(0));
        let id = s.bgsave().unwrap();
        s.wait_for_save(id).unwrap();
        assert_eq!(s.lastsave(), id);
        // Mutations after the save are not in the snapshot.
        s.execute(&Command::Set(Key::from_u64(2), Value::from_u64(2)))
            .unwrap();
        s.restore(id).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.execute(&Command::Get(Key::from_u64(1))).unwrap(),
            Reply::Value(Some(Value::from_u64(1)))
        );
    }

    #[test]
    fn restore_unknown_snapshot_fails() {
        let (mut s, _) = store(AofPolicy::Off);
        assert!(s.restore(SaveId(99)).is_err());
    }

    #[test]
    fn aof_always_replays_after_crash() {
        let (mut s, dev) = store(AofPolicy::Always);
        for i in 0..10u64 {
            s.execute(&Command::Set(Key::from_u64(i), Value::from_u64(i)))
                .unwrap();
        }
        s.execute(&Command::Del(Key::from_u64(0))).unwrap();
        s.execute(&Command::Incr(Key::from_u64(1))).unwrap();
        dev.crash();
        let mut s2 = RedisStore::new(
            RedisConfig {
                aof: AofPolicy::Always,
            },
            Arc::new(MemBlobStore::new()),
            Some(dev),
        )
        .unwrap();
        let replayed = s2.recover_from_aof().unwrap();
        assert_eq!(replayed, 12);
        assert_eq!(s2.len(), 9, "key 0 deleted");
        assert_eq!(
            s2.execute(&Command::Get(Key::from_u64(1))).unwrap(),
            Reply::Value(Some(Value::from_u64(2)))
        );
    }

    #[test]
    fn aof_everysec_loses_unflushed_writes() {
        let (mut s, dev) = store(AofPolicy::EverySec);
        s.execute(&Command::Set(Key::from_u64(1), Value::from_u64(1)))
            .unwrap();
        s.flush_aof().unwrap();
        s.execute(&Command::Set(Key::from_u64(2), Value::from_u64(2)))
            .unwrap();
        // No flush: the second write is volatile.
        dev.crash();
        let mut s2 = RedisStore::new(
            RedisConfig {
                aof: AofPolicy::EverySec,
            },
            Arc::new(MemBlobStore::new()),
            Some(dev),
        )
        .unwrap();
        s2.recover_from_aof().unwrap();
        assert_eq!(
            s2.len(),
            1,
            "unflushed write lost — eventual recoverability"
        );
    }

    #[test]
    fn aof_policy_requires_device() {
        assert!(RedisStore::new(
            RedisConfig {
                aof: AofPolicy::Always
            },
            Arc::new(MemBlobStore::new()),
            None,
        )
        .is_err());
    }
}
