//! # dpr-redis
//!
//! A deliberately simple, single-threaded, Redis-like cache-store — the
//! *unmodified* system that libDPR wraps to build D-Redis (§6).
//!
//! Fidelity points that matter for the paper:
//!
//! * single-threaded command execution (the D-Redis server wrapper relies on
//!   this: one exclusive latch around `BGSAVE`, shared latches around
//!   batches);
//! * `BGSAVE` starts an asynchronous snapshot (Redis forks; we clone the map
//!   copy-on-write-style and serialize on a background thread) and
//!   `LASTSAVE` reports the last *completed* save — the wrapper polls it to
//!   learn when a `Commit()` finished (§6);
//! * optional append-only-file persistence with `always` / `everysec`
//!   fsync policies, used for the synchronous / eventual recoverability
//!   baselines of §7.6;
//! * `Restore()` is implemented by restarting the instance from a snapshot
//!   (§6: "Restore() is implemented by restarting the Redis instance").

#![warn(missing_docs)]

pub mod command;
pub mod snapshot;
pub mod store;

pub use command::{Command, Reply};
pub use snapshot::Snapshot;
pub use store::{AofPolicy, RedisConfig, RedisStore, SaveId};
