//! Commands and replies — a minimal RESP-like surface.

use dpr_core::{Key, Value};

/// A client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `GET key`.
    Get(Key),
    /// `SET key value`.
    Set(Key, Value),
    /// `DEL key`.
    Del(Key),
    /// `INCR key` — treats the value as a u64 counter, starting at 0.
    Incr(Key),
}

impl Command {
    /// True if the command mutates state (needs AOF logging / makes the
    /// snapshot dirty).
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, Command::Get(_))
    }

    /// Encode to a compact binary frame (used by the D-Redis proxy batch
    /// body).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Command::Get(k) => {
                out.push(0);
                encode_bytes(k.as_bytes(), out);
            }
            Command::Set(k, v) => {
                out.push(1);
                encode_bytes(k.as_bytes(), out);
                encode_bytes(v.as_bytes(), out);
            }
            Command::Del(k) => {
                out.push(2);
                encode_bytes(k.as_bytes(), out);
            }
            Command::Incr(k) => {
                out.push(3);
                encode_bytes(k.as_bytes(), out);
            }
        }
    }

    /// Decode one frame; returns the command and bytes consumed.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<(Command, usize)> {
        let tag = *buf.first()?;
        let mut pos = 1;
        let (k, n) = decode_bytes(&buf[pos..])?;
        pos += n;
        let key = Key(bytes::Bytes::copy_from_slice(k));
        let cmd = match tag {
            0 => Command::Get(key),
            1 => {
                let (v, n) = decode_bytes(&buf[pos..])?;
                pos += n;
                Command::Set(key, Value(bytes::Bytes::copy_from_slice(v)))
            }
            2 => Command::Del(key),
            3 => Command::Incr(key),
            _ => return None,
        };
        Some((cmd, pos))
    }
}

/// A reply to one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `GET` result.
    Value(Option<Value>),
    /// Acknowledgement of a write.
    Ok,
    /// `INCR` result.
    Int(u64),
}

fn encode_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn decode_bytes(buf: &[u8]) -> Option<(&[u8], usize)> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if buf.len() < 4 + len {
        return None;
    }
    Some((&buf[4..4 + len], 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let cmds = vec![
            Command::Get(Key::from_u64(1)),
            Command::Set(Key::from_u64(2), Value::from("hello")),
            Command::Del(Key::from("gone")),
            Command::Incr(Key::from_u64(3)),
        ];
        let mut buf = Vec::new();
        for c in &cmds {
            c.encode(&mut buf);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        while pos < buf.len() {
            let (c, n) = Command::decode(&buf[pos..]).unwrap();
            back.push(c);
            pos += n;
        }
        assert_eq!(back, cmds);
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut buf = Vec::new();
        Command::Set(Key::from_u64(1), Value::from_u64(2)).encode(&mut buf);
        assert!(Command::decode(&buf[..buf.len() - 1]).is_none());
        assert!(Command::decode(&[]).is_none());
        assert!(Command::decode(&[9, 0, 0, 0, 0]).is_none(), "unknown tag");
    }

    #[test]
    fn write_classification() {
        assert!(!Command::Get(Key::from_u64(1)).is_write());
        assert!(Command::Set(Key::from_u64(1), Value::from_u64(1)).is_write());
        assert!(Command::Del(Key::from_u64(1)).is_write());
        assert!(Command::Incr(Key::from_u64(1)).is_write());
    }
}
