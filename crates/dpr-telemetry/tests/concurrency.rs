//! Concurrency smoke test: hammer every metric kind from N threads and check
//! that nothing is lost. The primitives use relaxed atomics — each individual
//! RMW is still atomic, so totals must be exact even without ordering.

use dpr_telemetry::{Counter, Gauge, Histogram};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn counters_and_gauges_survive_contention() {
    let counter = Arc::new(Counter::new());
    let gauge = Arc::new(Gauge::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = Arc::clone(&counter);
            let gauge = Arc::clone(&gauge);
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(2);
                    gauge.sub(1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(gauge.get(), (THREADS as u64 * PER_THREAD) as i64);
}

#[test]
fn histogram_totals_are_exact_under_contention() {
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                // Each thread records 1..=PER_THREAD shifted into its own
                // range so the max is known.
                for v in 1..=PER_THREAD {
                    hist.record(v + t as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
    assert_eq!(snap.max(), PER_THREAD + THREADS as u64 - 1);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    // Quantiles stay ordered whatever the interleaving was.
    assert!(snap.p50() <= snap.p95());
    assert!(snap.p95() <= snap.p99());
    assert!(snap.p99() <= snap.max());
}

#[test]
fn registry_and_span_ring_survive_contention() {
    // The global registry is process-wide; use distinct names so this test
    // stays independent of anything else in the binary.
    dpr_telemetry::set_enabled(true);
    let registry = dpr_telemetry::global();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            thread::spawn(move || {
                // All threads race to register the same name: they must all
                // get the same handle, and every increment must land.
                let c = registry.counter("test_contended_total", dpr_telemetry::Unit::Count, "t");
                for i in 0..1_000 {
                    c.inc();
                    registry.span("test", "tick", || format!("i={i}"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let c = registry.counter("test_contended_total", dpr_telemetry::Unit::Count, "t");
    assert_eq!(c.get(), THREADS as u64 * 1_000);
    // The span ring is bounded: it retains the most recent events, never
    // more than its capacity, and never panics under contention.
    let spans = registry.spans();
    assert!(!spans.is_empty());
    assert!(spans.len() <= dpr_telemetry::SPAN_RING_CAPACITY);
    registry.clear_spans();
    assert!(registry.spans().is_empty());
}
