//! The metric registry and its two render targets (human table,
//! Prometheus-style exposition text).

use crate::metric::{Counter, Gauge, Histogram};
use crate::span::{SpanEvent, SpanRing};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Unit of a metric's value, shown in reports and appended (by convention)
/// to metric names as `_us`, `_bytes`, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless count of events or things.
    Count,
    /// Microseconds (the workspace's standard latency unit).
    Micros,
    /// Bytes.
    Bytes,
    /// DPR versions (e.g. cut lag `Vmax - Vsafe`).
    Versions,
    /// Operations.
    Ops,
}

impl Unit {
    fn label(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Micros => "us",
            Unit::Bytes => "bytes",
            Unit::Versions => "versions",
            Unit::Ops => "ops",
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    name: &'static str,
    unit: Unit,
    help: &'static str,
    metric: Metric,
}

/// Holds every registered metric plus the span ring; renders reports.
///
/// Normally used through the process-global instance ([`crate::global`]).
/// Registration takes a lock; it happens once per metric per process
/// because call sites cache the returned `&'static` handle (see
/// [`crate::metric_fn!`]).
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
    spans: SpanRing,
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses [`crate::global`]).
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            entries: Mutex::new(Vec::new()),
            spans: SpanRing::new(),
        }
    }

    fn register<T>(
        &self,
        name: &'static str,
        unit: Unit,
        help: &'static str,
        make: impl FnOnce() -> &'static T,
        as_metric: impl FnOnce(&'static T) -> Metric,
        reuse: impl Fn(&Metric) -> Option<&'static T>,
    ) -> &'static T {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = entries.iter().find(|e| e.name == name) {
            return reuse(&existing.metric).unwrap_or_else(|| {
                panic!("metric `{name}` already registered with a different type")
            });
        }
        let handle = make();
        entries.push(Entry {
            name,
            unit,
            help,
            metric: as_metric(handle),
        });
        handle
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &'static str, unit: Unit, help: &'static str) -> &'static Counter {
        self.register(
            name,
            unit,
            help,
            || Box::leak(Box::new(Counter::new())),
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c),
                _ => None,
            },
        )
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &'static str, unit: Unit, help: &'static str) -> &'static Gauge {
        self.register(
            name,
            unit,
            help,
            || Box::leak(Box::new(Gauge::new())),
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g),
                _ => None,
            },
        )
    }

    /// Register (or look up) a histogram.
    pub fn histogram(
        &self,
        name: &'static str,
        unit: Unit,
        help: &'static str,
    ) -> &'static Histogram {
        self.register(
            name,
            unit,
            help,
            || Box::leak(Box::new(Histogram::new())),
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h),
                _ => None,
            },
        )
    }

    /// Record a protocol event into the span ring (no-op while telemetry
    /// is disabled; see [`crate::set_enabled`]).
    pub fn span(&self, target: &'static str, name: &'static str, detail: impl FnOnce() -> String) {
        if crate::enabled() {
            self.spans.push(target, name, detail());
        }
    }

    /// Copy of the span ring, oldest first.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.spans.drain_copy()
    }

    /// Copy of the span events with `seq >= from_seq`, oldest first.
    ///
    /// This is the incremental-consumption API for online observers (e.g.
    /// the chaos invariant checker): keep `last.seq + 1` as a cursor and
    /// pass it back on the next poll. Unlike [`MetricsRegistry::spans`]
    /// this stays cheap when the ring is full but little is new. If the
    /// first returned event's `seq` is above the cursor, the ring evicted
    /// events before the consumer read them.
    #[must_use]
    pub fn spans_since(&self, from_seq: u64) -> Vec<SpanEvent> {
        self.spans.drain_since(from_seq)
    }

    /// Clear the span ring (tests isolate themselves with this).
    pub fn clear_spans(&self) {
        self.spans.clear();
    }

    /// Render a fixed-width human-readable table of every metric, followed
    /// by the recorded protocol events.
    #[must_use]
    pub fn render_table(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>10} {:>10} {:>10} {:>10} {:>12}  unit",
            "metric", "p50/value", "p95", "p99", "max", "count"
        );
        let _ = writeln!(out, "{}", "-".repeat(110));
        for e in entries.iter() {
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{:<44} {:>10} {:>10} {:>10} {:>10} {:>12}  {}",
                        e.name,
                        c.get(),
                        "-",
                        "-",
                        "-",
                        "-",
                        e.unit.label()
                    );
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{:<44} {:>10} {:>10} {:>10} {:>10} {:>12}  {}",
                        e.name,
                        g.get(),
                        "-",
                        "-",
                        "-",
                        "-",
                        e.unit.label()
                    );
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(
                        out,
                        "{:<44} {:>10} {:>10} {:>10} {:>10} {:>12}  {}",
                        e.name,
                        s.p50(),
                        s.p95(),
                        s.p99(),
                        s.max(),
                        s.count,
                        e.unit.label()
                    );
                }
            }
        }
        let spans = self.spans.drain_copy();
        if !spans.is_empty() {
            let _ = writeln!(out, "\nprotocol events ({} recorded):", spans.len());
            for s in spans {
                let _ = writeln!(out, "{s}");
            }
        }
        out
    }

    /// Render Prometheus-style exposition text: `# HELP`/`# TYPE` headers,
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for e in entries.iter() {
            let _ = writeln!(out, "# HELP {} {} ({})", e.name, e.help, e.unit.label());
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    let s = h.snapshot();
                    let mut cumulative = 0u64;
                    let highest = s.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
                    for (i, &n) in s.buckets.iter().enumerate().take(highest + 1) {
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {}",
                            e.name,
                            crate::Histogram::bucket_upper_bound(i),
                            cumulative
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", e.name, s.count);
                    let _ = writeln!(out, "{}_sum {}", e.name, s.sum);
                    let _ = writeln!(out, "{}_count {}", e.name, s.count);
                }
            }
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedups_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", Unit::Count, "a");
        let b = r.counter("x_total", Unit::Count, "a");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn registration_rejects_type_change() {
        let r = MetricsRegistry::new();
        r.counter("y_total", Unit::Count, "a");
        r.gauge("y_total", Unit::Count, "a");
    }

    #[test]
    fn table_lists_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter("ops_total", Unit::Count, "ops").add(3);
        r.gauge("depth", Unit::Count, "queue depth").set(7);
        r.histogram("lat_us", Unit::Micros, "latency").record(100);
        let table = r.render_table();
        assert!(table.contains("ops_total"));
        assert!(table.contains("depth"));
        assert!(table.contains("lat_us"));
        assert!(table.contains(" 3 "));
        assert!(table.contains(" 7 "));
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t_us", Unit::Micros, "t");
        h.record(1); // bucket 1, le=1
        h.record(3); // bucket 2, le=3
        h.record(3);
        let text = r.render_prometheus();
        assert!(text.contains("t_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("t_us_bucket{le=\"3\"} 3"));
        assert!(text.contains("t_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("t_us_sum 7"));
        assert!(text.contains("t_us_count 3"));
        assert!(text.contains("# TYPE t_us histogram"));
    }
}
