//! A bounded ring of protocol events ("spans").
//!
//! DPR's interesting state transitions — CPR phase changes, rollback
//! THROW/PURGE, recovery start/finish, world-line bumps — happen at
//! per-checkpoint frequency (tens of hertz at most), not per-operation, so
//! a mutex-protected ring is plenty and keeps the implementation
//! dependency-free. Per-operation paths must use counters and histograms
//! instead; [`crate::MetricsRegistry::span`] is deliberately gated on the
//! global enabled flag.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Capacity of the span ring; the oldest events are dropped beyond this.
pub const SPAN_RING_CAPACITY: usize = 4096;

/// One recorded protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotone sequence number assigned at push time; survives ring
    /// eviction, so consumers can detect gaps and resume incrementally
    /// (see [`crate::MetricsRegistry::spans_since`]).
    pub seq: u64,
    /// Microseconds since the telemetry epoch (first [`crate::set_enabled`]).
    pub at_micros: u64,
    /// Component that emitted the event (e.g. `"dpr-faster"`).
    pub target: &'static str,
    /// Event name (e.g. `"phase"`, `"recovery_begin"`).
    pub name: &'static str,
    /// Free-form detail, e.g. `"Prepare -> InProgress (v3)"`.
    pub detail: String,
}

impl fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<12} {:<18} {}",
            self.at_micros as f64 / 1e6,
            self.target,
            self.name,
            self.detail
        )
    }
}

pub(crate) struct SpanRing {
    events: Mutex<RingState>,
}

struct RingState {
    events: VecDeque<SpanEvent>,
    next_seq: u64,
}

impl SpanRing {
    pub(crate) fn new() -> SpanRing {
        SpanRing {
            events: Mutex::new(RingState {
                events: VecDeque::new(),
                next_seq: 0,
            }),
        }
    }

    pub(crate) fn push(&self, target: &'static str, name: &'static str, detail: String) {
        let at_micros = crate::epoch()
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let mut state = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if state.events.len() == SPAN_RING_CAPACITY {
            state.events.pop_front();
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.events.push_back(SpanEvent {
            seq,
            at_micros,
            target,
            name,
            detail,
        });
    }

    /// Copy out all events, oldest first (does not clear).
    pub(crate) fn drain_copy(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Copy out events with `seq >= from_seq`, oldest first (does not
    /// clear). Online consumers track the last seen `seq + 1` as their
    /// cursor; a first returned `seq` above the cursor means the ring
    /// evicted events before they were read.
    pub(crate) fn drain_since(&self, from_seq: u64) -> Vec<SpanEvent> {
        let state = self.events.lock().unwrap_or_else(|e| e.into_inner());
        // The ring holds a contiguous seq range; skip the prefix below
        // the cursor instead of filtering every event.
        let start = state
            .events
            .front()
            .map_or(0, |e| from_seq.saturating_sub(e.seq) as usize);
        state.events.iter().skip(start).cloned().collect()
    }

    pub(crate) fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let ring = SpanRing::new();
        for i in 0..(SPAN_RING_CAPACITY + 10) {
            ring.push("test", "evt", format!("{i}"));
        }
        let events = ring.drain_copy();
        assert_eq!(events.len(), SPAN_RING_CAPACITY);
        assert_eq!(events[0].detail, "10", "oldest ten dropped");
        assert_eq!(events[0].seq, 10, "seq survives eviction");
        ring.clear();
        assert!(ring.drain_copy().is_empty());
    }

    #[test]
    fn drain_since_resumes_from_cursor() {
        let ring = SpanRing::new();
        for i in 0..5 {
            ring.push("test", "evt", format!("{i}"));
        }
        let all = ring.drain_since(0);
        assert_eq!(all.len(), 5);
        let cursor = all.last().unwrap().seq + 1;
        assert!(ring.drain_since(cursor).is_empty());
        ring.push("test", "evt", "5".to_string());
        let fresh = ring.drain_since(cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].detail, "5");
        assert_eq!(fresh[0].seq, 5);
    }

    #[test]
    fn display_is_readable() {
        let e = SpanEvent {
            seq: 0,
            at_micros: 1_500_000,
            target: "dpr-faster",
            name: "phase",
            detail: "Rest -> Prepare (v2)".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("dpr-faster") && s.contains("Rest -> Prepare (v2)"));
    }
}
