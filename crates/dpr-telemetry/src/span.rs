//! A bounded ring of protocol events ("spans").
//!
//! DPR's interesting state transitions — CPR phase changes, rollback
//! THROW/PURGE, recovery start/finish, world-line bumps — happen at
//! per-checkpoint frequency (tens of hertz at most), not per-operation, so
//! a mutex-protected ring is plenty and keeps the implementation
//! dependency-free. Per-operation paths must use counters and histograms
//! instead; [`crate::MetricsRegistry::span`] is deliberately gated on the
//! global enabled flag.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Capacity of the span ring; the oldest events are dropped beyond this.
pub const SPAN_RING_CAPACITY: usize = 4096;

/// One recorded protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Microseconds since the telemetry epoch (first [`crate::set_enabled`]).
    pub at_micros: u64,
    /// Component that emitted the event (e.g. `"dpr-faster"`).
    pub target: &'static str,
    /// Event name (e.g. `"phase"`, `"recovery_begin"`).
    pub name: &'static str,
    /// Free-form detail, e.g. `"Prepare -> InProgress (v3)"`.
    pub detail: String,
}

impl fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<12} {:<18} {}",
            self.at_micros as f64 / 1e6,
            self.target,
            self.name,
            self.detail
        )
    }
}

pub(crate) struct SpanRing {
    events: Mutex<VecDeque<SpanEvent>>,
}

impl SpanRing {
    pub(crate) fn new() -> SpanRing {
        SpanRing {
            events: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn push(&self, target: &'static str, name: &'static str, detail: String) {
        let at_micros = crate::epoch()
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() == SPAN_RING_CAPACITY {
            events.pop_front();
        }
        events.push_back(SpanEvent {
            at_micros,
            target,
            name,
            detail,
        });
    }

    /// Copy out all events, oldest first (does not clear).
    pub(crate) fn drain_copy(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    pub(crate) fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let ring = SpanRing::new();
        for i in 0..(SPAN_RING_CAPACITY + 10) {
            ring.push("test", "evt", format!("{i}"));
        }
        let events = ring.drain_copy();
        assert_eq!(events.len(), SPAN_RING_CAPACITY);
        assert_eq!(events[0].detail, "10", "oldest ten dropped");
        ring.clear();
        assert!(ring.drain_copy().is_empty());
    }

    #[test]
    fn display_is_readable() {
        let e = SpanEvent {
            at_micros: 1_500_000,
            target: "dpr-faster",
            name: "phase",
            detail: "Rest -> Prepare (v2)".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("dpr-faster") && s.contains("Rest -> Prepare (v2)"));
    }
}
