//! The three metric primitives: counters, gauges, and log-scale histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets. Bucket 0 holds exact zeros; bucket `i`
/// (for `i >= 1`) holds values in `[2^(i-1), 2^i)`, so 64 buckets cover
/// the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing count. Updates are relaxed `fetch_add`s.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, lags, outstanding ops).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-scale histogram over `u64` samples.
///
/// Buckets are powers of two: recording a value touches exactly one bucket
/// counter plus the running sum, count, and max — four relaxed atomic RMWs,
/// no allocation. Quantiles are estimated from bucket boundaries (an upper
/// bound with at most 2x resolution error, which is what log-scale buys),
/// while [`HistogramSnapshot::max`] is exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the array element by element.
        // The const item is intentional: each use site gets a fresh atomic.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`,
    /// clamped to the last bucket.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (the value quantiles report).
    #[must_use]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds (the workspace's standard
    /// latency unit; see `docs/OBSERVABILITY.md`).
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Start a timer that records elapsed microseconds into this histogram
    /// when dropped (or stopped). Returns an inert guard — a single relaxed
    /// load and no clock read — while telemetry is disabled.
    #[must_use]
    pub fn start_timer(&'static self) -> Timer {
        Timer {
            histogram: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// Consistent-enough point-in-time copy for rendering and assertions.
    ///
    /// Individual loads are relaxed, so a snapshot taken during concurrent
    /// recording may be off by in-flight samples; totals are never torn.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram::bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Largest sample recorded (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q * count)`-th sample. Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The last occupied bucket's bound can overshoot the true
                // maximum; the exact max is tighter.
                return Histogram::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact maximum sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Guard returned by [`Histogram::start_timer`]; records on drop.
#[derive(Debug)]
pub struct Timer {
    histogram: &'static Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Record now and return the elapsed duration (`None` if telemetry was
    /// disabled when the timer started).
    pub fn stop(mut self) -> Option<std::time::Duration> {
        let elapsed = self.start.take().map(|s| s.elapsed());
        if let Some(d) = elapsed {
            self.histogram.record_micros(d);
        }
        elapsed
    }

    /// Abandon the timer without recording.
    pub fn discard(mut self) {
        self.start = None;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.record_micros(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let hi = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(hi), i);
            assert_eq!(Histogram::bucket_index(hi + 1), i + 1);
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max(), 100);
        // p50 of 1..=100 is 50, whose bucket [32,64) reports bound 63.
        assert_eq!(s.p50(), 63);
        assert_eq!(s.p99(), 100, "last bucket bound is clamped to exact max");
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn zero_only_histogram() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.buckets[0], 2);
    }
}
