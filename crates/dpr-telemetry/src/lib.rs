//! Cluster-wide telemetry for the DPR workspace: counters, gauges,
//! log-scale histograms, and a protocol-event span ring, all dependency-free.
//!
//! # Design
//!
//! The paper's central claim is that DPR adds recoverability *off* the
//! critical path (§1, §6): operations complete at memory speed and commit
//! later, when the DPR cut advances. Verifying that claim requires
//! observing the system without perturbing it, so this crate is built
//! around three rules:
//!
//! 1. **Hot-path updates are single relaxed atomic RMWs.** A
//!    [`Counter::inc`] or [`Histogram::record`] is a handful of
//!    `fetch_add(…, Relaxed)` instructions — no locks, no allocation, no
//!    fences that would serialize the shard pipelines being measured.
//! 2. **Anything that needs a clock or an allocation is gated.** Timers
//!    ([`Histogram::start_timer`]) and span recording
//!    ([`MetricsRegistry::span`]) check a process-global enabled flag
//!    first and cost one relaxed load when telemetry is off (the default).
//! 3. **Metric handles are `&'static`.** Registration leaks the metric
//!    into the registry once; call sites cache the reference in a
//!    `OnceLock`, so steady-state access never touches the registry lock.
//!
//! # Usage
//!
//! ```
//! use dpr_telemetry as telemetry;
//! use std::sync::OnceLock;
//!
//! fn batches_total() -> &'static telemetry::Counter {
//!     static C: OnceLock<&'static telemetry::Counter> = OnceLock::new();
//!     C.get_or_init(|| {
//!         telemetry::global().counter(
//!             "example_batches_total",
//!             telemetry::Unit::Count,
//!             "Batches processed by the example",
//!         )
//!     })
//! }
//!
//! telemetry::set_enabled(true);
//! batches_total().inc();
//! let report = telemetry::global().render_table();
//! assert!(report.contains("example_batches_total"));
//! ```
//!
//! The full catalog of metrics the workspace registers, with units and
//! paper cross-references, lives in `docs/OBSERVABILITY.md`.

#![deny(missing_docs)]

mod metric;
mod registry;
mod span;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, Timer, HISTOGRAM_BUCKETS};
pub use registry::{MetricsRegistry, Unit};
pub use span::{SpanEvent, SPAN_RING_CAPACITY};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn clock-based telemetry (timers and spans) on or off process-wide.
///
/// Counter/gauge/histogram *updates* are always live — they are cheap
/// enough to leave on. What this flag gates is everything that must call
/// `Instant::now()` or allocate: [`Histogram::start_timer`] returns an
/// inert guard and [`MetricsRegistry::span`] is a no-op while disabled.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
    if enabled {
        // Pin the epoch so span timestamps are meaningful.
        let _ = epoch();
    }
}

/// Whether clock-based telemetry is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide metrics registry.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Process telemetry epoch; span timestamps count microseconds from here.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Define a lazily-registered `&'static` metric accessor.
///
/// Expands to a function returning a cached handle, so the registry lock
/// is taken once per call site:
///
/// ```
/// dpr_telemetry::metric_fn!(
///     /// Batches the demo processed.
///     fn demo_batches() -> Counter = ("demo_batches_total", Count, "Batches processed")
/// );
/// demo_batches().inc();
/// ```
#[macro_export]
macro_rules! metric_fn {
    ($(#[$meta:meta])* $vis:vis fn $fn_name:ident() -> Counter = ($name:expr, $unit:ident, $help:expr)) => {
        $crate::metric_fn!(@impl $(#[$meta])* $vis $fn_name, counter, $crate::Counter, $name, $unit, $help);
    };
    ($(#[$meta:meta])* $vis:vis fn $fn_name:ident() -> Gauge = ($name:expr, $unit:ident, $help:expr)) => {
        $crate::metric_fn!(@impl $(#[$meta])* $vis $fn_name, gauge, $crate::Gauge, $name, $unit, $help);
    };
    ($(#[$meta:meta])* $vis:vis fn $fn_name:ident() -> Histogram = ($name:expr, $unit:ident, $help:expr)) => {
        $crate::metric_fn!(@impl $(#[$meta])* $vis $fn_name, histogram, $crate::Histogram, $name, $unit, $help);
    };
    (@impl $(#[$meta:meta])* $vis:vis $fn_name:ident, $method:ident, $ty:ty, $name:expr, $unit:ident, $help:expr) => {
        $(#[$meta])*
        $vis fn $fn_name() -> &'static $ty {
            static HANDLE: ::std::sync::OnceLock<&'static $ty> = ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| {
                $crate::global().$method($name, $crate::Unit::$unit, $help)
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn metric_fn_macro_registers_once() {
        metric_fn!(
            /// Test counter.
            fn test_counter() -> Counter = ("lib_test_counter_total", Count, "macro smoke")
        );
        let a = test_counter() as *const Counter;
        let b = test_counter() as *const Counter;
        assert_eq!(a, b, "macro must cache the handle");
        test_counter().inc();
        assert!(test_counter().get() >= 1);
    }
}
