//! Small helpers shared by the figure binaries.

use std::time::Duration;

/// Parse an env var as a comma-separated u64 list, with a default.
#[must_use]
pub fn env_list(name: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(name)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Print one result row in the harness's stable key=value format.
pub fn row(figure: &str, fields: &[(&str, String)]) {
    let mut line = String::from(figure);
    for (k, v) in fields {
        line.push('\t');
        line.push_str(k);
        line.push('=');
        line.push_str(v);
    }
    println!("{line}");
}

/// Format a duration as fractional milliseconds.
#[must_use]
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Standard percentile set reported for latency distributions.
pub const PERCENTILES: &[f64] = &[10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9];

/// Field label for one of [`PERCENTILES`].
#[must_use]
pub fn percentile_label(p: f64) -> &'static str {
    match (p * 10.0) as u32 {
        100 => "p10_ms",
        250 => "p25_ms",
        500 => "p50_ms",
        750 => "p75_ms",
        900 => "p90_ms",
        990 => "p99_ms",
        _ => "p999_ms",
    }
}
