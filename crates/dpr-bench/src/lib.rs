//! # dpr-bench
//!
//! The benchmark harness that regenerates every figure of the paper's
//! evaluation (§7). Each `fig*` binary prints the rows/series of the
//! corresponding figure; `all_figures` runs the whole suite.
//!
//! Absolute numbers are laptop-scale (the paper used 8×16-vCPU VMs); what
//! the harness preserves is the *shape* of each result — who wins, by what
//! factor, and where crossovers fall. See EXPERIMENTS.md for the
//! paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod harness;
pub mod util;

pub use harness::{run_with_failures, run_workload, BenchParams, RunStats};

use std::time::Duration;

/// Benchmark duration scaling: `DPR_BENCH_SECS` overrides the per-point
/// measurement window (default 2 s).
#[must_use]
pub fn point_duration() -> Duration {
    std::env::var("DPR_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map_or(Duration::from_secs(2), Duration::from_secs_f64)
}

/// Keyspace scaling: `DPR_BENCH_KEYS` overrides the number of distinct keys
/// (default 100k; the paper uses 250M on a 128-vCPU cluster).
#[must_use]
pub fn keyspace() -> u64 {
    std::env::var("DPR_BENCH_KEYS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000)
        .max(1)
}

/// Guard returned by [`metrics_dump`]; prints the telemetry report when the
/// benchmark exits (on drop).
pub struct MetricsDump {
    prometheus: bool,
}

impl Drop for MetricsDump {
    fn drop(&mut self) {
        let registry = dpr_telemetry::global();
        // Rows go to stdout like the result rows, prefixed so downstream
        // parsers of the key=value format can skip them.
        eprintln!("\n== telemetry ==");
        if self.prometheus {
            eprint!("{}", registry.render_prometheus());
        } else {
            eprint!("{}", registry.render_table());
        }
    }
}

/// The harness's `--metrics` dump hook.
///
/// When the binary was invoked with `--metrics` (or `--metrics=prometheus`,
/// or with `DPR_BENCH_METRICS` set to `1`/`table`/`prometheus`), turn
/// telemetry on ([`dpr_telemetry::set_enabled`]) and return a guard that
/// prints the full metric table — commit latency, checkpoint phase timings,
/// cut lag, and the protocol-event log — to stderr when dropped. Returns
/// `None`, leaving telemetry off, when not requested. See
/// `docs/OBSERVABILITY.md` for the metric catalog and a worked example.
#[must_use]
pub fn metrics_dump() -> Option<MetricsDump> {
    let mode = std::env::args()
        .find_map(|a| match a.as_str() {
            "--metrics" => Some("table".to_string()),
            _ => a.strip_prefix("--metrics=").map(str::to_string),
        })
        .or_else(|| std::env::var("DPR_BENCH_METRICS").ok())?;
    if mode == "0" || mode.is_empty() {
        return None;
    }
    dpr_telemetry::set_enabled(true);
    Some(MetricsDump {
        prometheus: mode.starts_with("prom"),
    })
}
