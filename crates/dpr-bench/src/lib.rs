//! # dpr-bench
//!
//! The benchmark harness that regenerates every figure of the paper's
//! evaluation (§7). Each `fig*` binary prints the rows/series of the
//! corresponding figure; `all_figures` runs the whole suite.
//!
//! Absolute numbers are laptop-scale (the paper used 8×16-vCPU VMs); what
//! the harness preserves is the *shape* of each result — who wins, by what
//! factor, and where crossovers fall. See EXPERIMENTS.md for the
//! paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod harness;
pub mod util;

pub use harness::{run_with_failures, run_workload, BenchParams, RunStats};

use std::time::Duration;

/// Benchmark duration scaling: `DPR_BENCH_SECS` overrides the per-point
/// measurement window (default 2 s).
#[must_use]
pub fn point_duration() -> Duration {
    std::env::var("DPR_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map_or(Duration::from_secs(2), Duration::from_secs_f64)
}

/// Keyspace scaling: `DPR_BENCH_KEYS` overrides the number of distinct keys
/// (default 100k; the paper uses 250M on a 128-vCPU cluster).
#[must_use]
pub fn keyspace() -> u64 {
    std::env::var("DPR_BENCH_KEYS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000)
        .max(1)
}
