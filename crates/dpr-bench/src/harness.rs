//! Shared load-generation harness: windowed, batched client sessions over a
//! running cluster, measuring throughput, operation latency, commit latency,
//! and (for the recovery experiment) time-bucketed series.

use dpr_cluster::{Cluster, ClusterOp, SessionHandle};
use dpr_core::{Key, Value};
use dpr_metadata::Cut;
use dpr_ycsb::{LatencyHistogram, ThroughputSeries, WorkloadGen, WorkloadOp, WorkloadSpec};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Load parameters (the paper's `w` and `b`, §7.1).
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Outstanding-operation window per client (`w`).
    pub window: usize,
    /// Operations per batch (`b`).
    pub batch: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Workload.
    pub spec: WorkloadSpec,
    /// Co-location: `Some(p)` opens each session co-located with a worker
    /// and draws a fraction `p` of keys from the local shard (§7.3).
    pub colocate_local_fraction: Option<f64>,
    /// Track commit latency (costs a little bookkeeping).
    pub measure_commit: bool,
}

impl BenchParams {
    /// Sensible defaults for a laptop-scale run.
    #[must_use]
    pub fn new(spec: WorkloadSpec) -> Self {
        BenchParams {
            clients: 2,
            window: 1024,
            batch: 64,
            duration: Duration::from_secs(2),
            spec,
            colocate_local_fraction: None,
            measure_commit: false,
        }
    }
}

/// Aggregated results of one run.
#[derive(Debug)]
pub struct RunStats {
    /// Ops completed during the measurement window.
    pub completed: u64,
    /// Ops known committed by the end of the run.
    pub committed: u64,
    /// Ops aborted by failures.
    pub aborted: u64,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Operation completion latency.
    pub op_latency: LatencyHistogram,
    /// Operation commit latency.
    pub commit_latency: LatencyHistogram,
}

impl RunStats {
    /// Throughput in Mop/s.
    #[must_use]
    pub fn mops(&self) -> f64 {
        self.completed as f64 / self.duration.as_secs_f64() / 1e6
    }

    /// Throughput in op/s.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.completed as f64 / self.duration.as_secs_f64()
    }
}

fn op_to_cluster(op: WorkloadOp) -> ClusterOp {
    match op {
        WorkloadOp::Read(k) => ClusterOp::Read(k),
        WorkloadOp::Update(k, v) => ClusterOp::Upsert(k, v),
        WorkloadOp::Rmw(k) => ClusterOp::Incr(k),
    }
}

/// Build per-shard key pools so co-located clients can draw local keys
/// without rejection sampling.
fn shard_key_pools(cluster: &Cluster, keys: u64) -> Vec<Vec<u64>> {
    let shards = cluster.workers().len();
    let mut pools = vec![Vec::new(); shards];
    for k in 0..keys {
        let key = Key::from_u64(k);
        if let Ok(owner) = cluster.owner_of(&key) {
            pools[owner.0 as usize].push(k);
        }
    }
    pools
}

struct ClientState {
    session: SessionHandle,
    gen: WorkloadGen,
    issue_times: HashMap<u64, Instant>,
    commit_queue: std::collections::VecDeque<(u64, Instant)>,
    local_pool: Option<Vec<u64>>,
    local_fraction: f64,
    rng_state: u64,
}

impl ClientState {
    fn next_batch(&mut self, batch: usize) -> Vec<ClusterOp> {
        let mut ops = Vec::with_capacity(batch);
        for _ in 0..batch {
            let op = if let Some(pool) = &self.local_pool {
                // Classify local vs global, then draw the key accordingly
                // (§7.3's methodology).
                self.rng_state = self
                    .rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1);
                let roll = (self.rng_state >> 33) as f64 / (1u64 << 31) as f64;
                if roll < self.local_fraction && !pool.is_empty() {
                    let idx = (self.rng_state >> 17) as usize % pool.len();
                    let key = Key::from_u64(pool[idx]);
                    // Preserve the read/update mix.
                    match self.gen.next_op() {
                        WorkloadOp::Read(_) => WorkloadOp::Read(key),
                        WorkloadOp::Update(_, v) => WorkloadOp::Update(key, v),
                        WorkloadOp::Rmw(_) => WorkloadOp::Rmw(key),
                    }
                } else {
                    self.gen.next_op()
                }
            } else {
                self.gen.next_op()
            };
            ops.push(op_to_cluster(op));
        }
        ops
    }
}

/// Run the workload against `cluster` and gather statistics.
pub fn run_workload(cluster: &Cluster, params: &BenchParams) -> RunStats {
    let pools = params
        .colocate_local_fraction
        .map(|_| shard_key_pools(cluster, params.spec.keys));
    let cut_source = cluster.cut_source();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..params.clients {
            let session = match params.colocate_local_fraction {
                Some(_) => cluster
                    .open_session_colocated(c % cluster.workers().len())
                    .expect("open colocated session"),
                None => cluster.open_session().expect("open session"),
            };
            let local_pool = pools
                .as_ref()
                .map(|p| p[c % cluster.workers().len()].clone());
            let mut state = ClientState {
                session,
                gen: WorkloadGen::new(params.spec.clone(), c as u64 + 1),
                issue_times: HashMap::new(),
                commit_queue: std::collections::VecDeque::new(),
                local_pool,
                local_fraction: params.colocate_local_fraction.unwrap_or(0.0),
                rng_state: 0x9E3779B97F4A7C15 ^ (c as u64),
            };
            let params = params.clone();
            let cut_source = &cut_source;
            handles.push(scope.spawn(move || client_loop(&mut state, &params, start, cut_source)));
        }
        let results: Vec<RunStats> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        merge(results, start.elapsed())
    })
}

fn client_loop(
    state: &mut ClientState,
    params: &BenchParams,
    start: Instant,
    cut_source: &(impl Fn() -> Cut + Send),
) -> RunStats {
    let deadline = start + params.duration;
    let mut op_latency = LatencyHistogram::new();
    let mut commit_latency = LatencyHistogram::new();
    let mut last_cut_check = Instant::now();
    while Instant::now() < deadline {
        // Fill the window.
        while (state.session.inflight_ops() as usize) < params.window {
            let ops = state.next_batch(params.batch);
            let now = Instant::now();
            match state.session.issue(ops) {
                Ok(serials) => {
                    for s in serials {
                        state.issue_times.insert(s, now);
                        if params.measure_commit {
                            state.commit_queue.push_back((s, now));
                        }
                    }
                }
                Err(_) => break,
            }
            if state.session.inflight_ops() == 0 {
                // Fully co-located batch: completed synchronously.
                break;
            }
        }
        // Drain replies.
        let _ = state.session.poll(true, Duration::from_millis(10));
        let now = Instant::now();
        for (serial, _) in state.session.take_results() {
            if let Some(t) = state.issue_times.remove(&serial) {
                op_latency.record(now - t);
            }
        }
        // Track commits.
        if params.measure_commit && last_cut_check.elapsed() > Duration::from_millis(2) {
            last_cut_check = Instant::now();
            let cut = cut_source();
            let prefix = state.session.refresh_commit(&cut);
            let now = Instant::now();
            while let Some(&(serial, t)) = state.commit_queue.front() {
                if serial < prefix {
                    commit_latency.record(now - t);
                    state.commit_queue.pop_front();
                } else {
                    break;
                }
            }
        }
    }
    // Final committed accounting.
    let cut = cut_source();
    state.session.refresh_commit(&cut);
    let stats = state.session.stats();
    RunStats {
        completed: stats.completed,
        committed: stats.committed,
        aborted: stats.aborted,
        duration: params.duration,
        op_latency,
        commit_latency,
    }
}

fn merge(results: Vec<RunStats>, elapsed: Duration) -> RunStats {
    let mut out = RunStats {
        completed: 0,
        committed: 0,
        aborted: 0,
        duration: elapsed,
        op_latency: LatencyHistogram::new(),
        commit_latency: LatencyHistogram::new(),
    };
    for r in results {
        out.completed += r.completed;
        out.committed += r.committed;
        out.aborted += r.aborted;
        out.op_latency.merge(&r.op_latency);
        out.commit_latency.merge(&r.commit_latency);
    }
    out
}

/// The Fig. 16 experiment: run for `total`, injecting failures at the given
/// offsets, and return 250 ms-bucketed series of completed, committed and
/// aborted operations.
pub fn run_with_failures(
    cluster: &Cluster,
    params: &BenchParams,
    failures_at: &[Duration],
    total: Duration,
) -> (ThroughputSeries, ThroughputSeries, ThroughputSeries) {
    let bucket = Duration::from_millis(250);
    let start = Instant::now();
    let cut_source = cluster.cut_source();

    std::thread::scope(|scope| {
        // Failure injector.
        let injector = {
            let failures: Vec<Duration> = failures_at.to_vec();
            scope.spawn(move || {
                for at in failures {
                    let now = start.elapsed();
                    if at > now {
                        std::thread::sleep(at - now);
                    }
                    let _ = cluster.inject_failure();
                }
            })
        };
        let mut clients = Vec::new();
        for c in 0..params.clients {
            let mut session = cluster.open_session().expect("session");
            let mut gen = WorkloadGen::new(params.spec.clone(), c as u64 + 1);
            let params = params.clone();
            let cut_source = &cut_source;
            clients.push(scope.spawn(move || {
                let mut completed = ThroughputSeries::new(bucket);
                let mut committed = ThroughputSeries::new(bucket);
                let mut aborted = ThroughputSeries::new(bucket);
                let mut last_committed = 0u64;
                let mut last_aborted = 0u64;
                let deadline = start + total;
                while Instant::now() < deadline {
                    while (session.inflight_ops() as usize) < params.window {
                        let ops: Vec<ClusterOp> = (0..params.batch)
                            .map(|_| op_to_cluster(gen.next_op()))
                            .collect();
                        if session.issue(ops).is_err() {
                            break;
                        }
                    }
                    let at = start.elapsed();
                    match session.poll(true, Duration::from_millis(5)) {
                        Ok(n) => completed.record_at(at, n),
                        Err(_) => {
                            // Failure observed: recover the session and keep
                            // going on the new world-line.
                            if session.recover(Duration::from_secs(10)).is_ok() {
                                let stats = session.stats();
                                let newly_aborted = stats.aborted - last_aborted;
                                last_aborted = stats.aborted;
                                aborted.record_at(start.elapsed(), newly_aborted);
                            }
                        }
                    }
                    session.take_results().clear();
                    let cut = cut_source();
                    session.refresh_commit(&cut);
                    let stats = session.stats();
                    if stats.committed > last_committed {
                        committed.record_at(start.elapsed(), stats.committed - last_committed);
                        last_committed = stats.committed;
                    }
                }
                (completed, committed, aborted)
            }));
        }
        let mut completed = ThroughputSeries::new(bucket);
        let mut committed = ThroughputSeries::new(bucket);
        let mut aborted = ThroughputSeries::new(bucket);
        for c in clients {
            let (cp, cm, ab) = c.join().expect("client");
            completed.merge(&cp);
            committed.merge(&cm);
            aborted.merge(&ab);
        }
        injector.join().expect("injector");
        (completed, committed, aborted)
    })
}

/// Pre-load the keyspace so reads hit existing records.
pub fn preload(cluster: &Cluster, keys: u64) {
    let mut session = cluster.open_session().expect("loader session");
    let mut batch = Vec::with_capacity(256);
    for k in 0..keys {
        batch.push(ClusterOp::Upsert(Key::from_u64(k), Value::from_u64(k)));
        if batch.len() == 256 {
            session
                .execute(std::mem::take(&mut batch))
                .expect("preload");
        }
    }
    if !batch.is_empty() {
        session.execute(batch).expect("preload");
    }
}
