//! Figure 16 — Impact of recovery on throughput.
//!
//! Runs the workload for a fixed span with failures injected partway
//! through — one isolated failure and, later, two in short succession (the
//! nested-failure scenario of §7.4) — and reports 250 ms-bucketed series of
//! completed, committed, and aborted operations.

use dpr_bench::util::row;
use dpr_bench::{harness, keyspace, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    // Scaled from the paper's 45 s / failures at 15 s and 30 s.
    let total_secs: f64 = std::env::var("DPR_BENCH_RECOVERY_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15.0);
    let total = Duration::from_secs_f64(total_secs);
    let f1 = total.mul_f64(1.0 / 3.0);
    let f2 = total.mul_f64(2.0 / 3.0);
    let f3 = f2 + Duration::from_millis(400); // nested failure
    let keys = keyspace();

    let config = ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(100)),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    harness::preload(&cluster, keys);
    let mut params = BenchParams::new(WorkloadSpec::ycsb_a(
        keys,
        KeyDistribution::Zipfian { theta: 0.99 },
    ));
    params.duration = total;
    let (completed, committed, aborted) =
        harness::run_with_failures(&cluster, &params, &[f1, f2, f3], total);

    row(
        "fig16-meta",
        &[
            ("total_s", format!("{total_secs:.1}")),
            (
                "failures_at_s",
                format!(
                    "{:.2},{:.2},{:.2}",
                    f1.as_secs_f64(),
                    f2.as_secs_f64(),
                    f3.as_secs_f64()
                ),
            ),
            ("total_completed", completed.total().to_string()),
            ("total_committed", committed.total().to_string()),
            ("total_aborted", aborted.total().to_string()),
        ],
    );
    let comp = completed.rows();
    let comm = committed.rows();
    let abrt = aborted.rows();
    let buckets = comp.len().max(comm.len()).max(abrt.len());
    for i in 0..buckets {
        let t = i as f64 * 0.25;
        let get = |rows: &Vec<(f64, f64)>| rows.get(i).map_or(0.0, |r| r.1);
        row(
            "fig16",
            &[
                ("t_s", format!("{t:.2}")),
                ("completed_ops_s", format!("{:.0}", get(&comp))),
                ("committed_ops_s", format!("{:.0}", get(&comm))),
                ("aborted_ops_s", format!("{:.0}", get(&abrt))),
            ],
        );
    }
    cluster.shutdown();
}
