//! Ablation — strict vs relaxed CPR (§5.4).
//!
//! With a working set larger than the resident region, reads regularly
//! touch evicted records. Strict CPR resolves each such read inline
//! (blocking the session); relaxed CPR parks it PENDING, keeps issuing, and
//! resolves a batch of I/Os at once — the paper's argument for why relaxed
//! prefixes (with exception lists) are worth the weaker guarantee.

use dpr_bench::util::row;
use dpr_bench::{keyspace, point_duration};
use dpr_core::{CheckpointMode, Key, SessionId, Value, Version};
use dpr_faster::{FasterConfig, FasterKv, OpOutcome};
use dpr_storage::{MemBlobStore, MemLogDevice, StorageProfile};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn run(strict: bool, keys: u64, duration: Duration) -> (f64, u64) {
    let kv = FasterKv::new(
        FasterConfig {
            index_buckets: 1 << 16,
            memory_budget_records: 0, // floor: 2 pages — heavy eviction
            auto_maintenance: true,
            checkpoint_mode: CheckpointMode::FoldOver,
            strict_cpr: strict,
            unflushed_limit_records: Some(1 << 14),
            // An evicted read costs one I/O round trip (~local-SSD class).
            simulated_read_latency: Some(Duration::from_micros(100)),
        },
        Arc::new(MemLogDevice::with_profile(StorageProfile::Null)),
        Arc::new(MemBlobStore::new()),
    );
    let session = kv.start_session(SessionId(1));
    // Preload a working set much larger than two pages, then checkpoint so
    // eviction can kick in.
    for k in 0..keys {
        session
            .upsert(Key::from_u64(k), Value::from_u64(k))
            .unwrap();
    }
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(30)));
    kv.force_evict();

    let start = Instant::now();
    let mut completed = 0u64;
    let mut pendings = 0u64;
    let mut rng: u64 = 0x2545F4914F6CDD1D;
    while start.elapsed() < duration {
        let mut outstanding = 0u64;
        for _ in 0..64 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let key = Key::from_u64(rng % keys);
            match session.read(&key).unwrap() {
                OpOutcome::Read { .. } => completed += 1,
                OpOutcome::Pending(_) => {
                    outstanding += 1;
                    pendings += 1;
                }
                OpOutcome::Mutated { .. } => unreachable!(),
            }
        }
        if outstanding > 0 {
            completed += session.complete_pending().unwrap().len() as u64;
        }
    }
    (
        completed as f64 / start.elapsed().as_secs_f64() / 1e6,
        pendings,
    )
}

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let keys = keyspace();
    let duration = point_duration().max(Duration::from_secs(2));
    for strict in [true, false] {
        let (mops, pendings) = run(strict, keys, duration);
        row(
            "ablation-strict-cpr",
            &[
                (
                    "mode",
                    if strict { "strict" } else { "relaxed" }.to_string(),
                ),
                ("read_mops", format!("{mops:.4}")),
                ("pendings", pendings.to_string()),
            ],
        );
    }
}
