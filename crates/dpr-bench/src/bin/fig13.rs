//! Figure 13 — Throughput–latency trade-off.
//!
//! Sweep the client batch size `b` (window w = 16·b) at 100 ms checkpoints
//! and plot mean operation latency against throughput. Small batches give
//! sub-millisecond latency at reduced throughput; beyond the sweet spot,
//! larger batches only add latency.

use dpr_bench::util::{env_list, ms, row};
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let batches = env_list(
        "DPR_BENCH_BATCHES",
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
    );
    let keys = keyspace();
    let duration = point_duration();
    let config = ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(100)),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    harness::preload(&cluster, keys);
    for &b in &batches {
        let mut params = BenchParams::new(WorkloadSpec::ycsb_a(
            keys,
            KeyDistribution::Zipfian { theta: 0.99 },
        ));
        params.batch = b as usize;
        params.window = (b as usize) * 16;
        params.duration = duration;
        let stats = harness::run_workload(&cluster, &params);
        row(
            "fig13",
            &[
                ("batch", b.to_string()),
                ("mops", format!("{:.4}", stats.mops())),
                ("mean_latency_ms", ms(stats.op_latency.mean())),
                ("p99_latency_ms", ms(stats.op_latency.percentile(99.0))),
            ],
        );
    }
    cluster.shutdown();
}
