//! Figure 14 — Impact of storage backend on throughput.
//!
//! Throughput and commit latency vs checkpoint interval (500 → 25 ms) for
//! the three storage backends. Cloud storage's slower flushes cost little
//! at long intervals; once the interval approaches the ~40 ms checkpoint
//! duration the system "thrashes" — visible here as commit latency pinned
//! at the checkpoint duration instead of tracking the interval (requested
//! checkpoints are absorbed while the previous one is still flushing).

use dpr_bench::util::{env_list, ms, row};
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_storage::StorageProfile;
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let intervals_ms = env_list("DPR_BENCH_INTERVALS", &[500, 250, 100, 50, 25]);
    let keys = keyspace();
    let duration = point_duration();
    for profile in [
        StorageProfile::Null,
        StorageProfile::LocalSsd,
        StorageProfile::CloudSsd,
    ] {
        for &interval in &intervals_ms {
            let config = ClusterConfig {
                shards: 4,
                storage: profile,
                checkpoint_interval: Some(Duration::from_millis(interval)),
                ..ClusterConfig::default()
            };
            let cluster = Cluster::start(config).expect("start cluster");
            harness::preload(&cluster, keys);
            let mut params = BenchParams::new(WorkloadSpec::ycsb_a(
                keys,
                KeyDistribution::Zipfian { theta: 0.99 },
            ));
            params.duration = duration;
            params.measure_commit = true;
            let stats = harness::run_workload(&cluster, &params);
            row(
                "fig14",
                &[
                    ("backend", profile.label().to_string()),
                    ("interval_ms", interval.to_string()),
                    ("mops", format!("{:.4}", stats.mops())),
                    ("mean_commit_ms", ms(stats.commit_latency.mean())),
                    ("p99_commit_ms", ms(stats.commit_latency.percentile(99.0))),
                ],
            );
            cluster.shutdown();
        }
    }
}
