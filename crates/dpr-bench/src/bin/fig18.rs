//! Figure 18 — Latency distribution of D-Redis vs Redis vs Redis+proxy.
//!
//! Unsaturated load (small windows/batches) so latency is visible: direct
//! Redis has the lowest latency; the pass-through proxy adds a hop; D-Redis
//! matches the proxy (the DPR header work itself is negligible — the hop
//! dominates, §7.5).

use dpr_bench::util::{ms, percentile_label, row, PERCENTILES};
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig, ClusterKind};
use dpr_core::RecoverabilityLevel;
use dpr_ycsb::{KeyDistribution, LatencyHistogram, WorkloadSpec};
use std::time::Duration;

fn print_hist(config: &str, hist: &LatencyHistogram) {
    let mut fields = vec![
        ("config", config.to_string()),
        ("samples", hist.count().to_string()),
        ("mean_ms", ms(hist.mean())),
    ];
    for &p in PERCENTILES {
        fields.push((percentile_label(p), ms(hist.percentile(p))));
    }
    row("fig18", &fields);
}

fn wrapped_latency(
    shards: usize,
    keys: u64,
    batch: usize,
    duration: Duration,
    dpr: bool,
    proxy: bool,
) -> LatencyHistogram {
    let config = ClusterConfig {
        kind: ClusterKind::DRedis,
        shards,
        recoverability: if dpr {
            RecoverabilityLevel::Dpr
        } else {
            RecoverabilityLevel::None
        },
        checkpoint_interval: if dpr {
            Some(Duration::from_millis(250))
        } else {
            None
        },
        extra_proxy_hop: proxy,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    harness::preload(&cluster, keys);
    let mut params = BenchParams::new(WorkloadSpec::ycsb_a(
        keys,
        KeyDistribution::Zipfian { theta: 0.99 },
    ));
    params.clients = 1;
    params.window = batch * 4;
    params.batch = batch;
    params.duration = duration;
    let stats = harness::run_workload(&cluster, &params);
    cluster.shutdown();
    stats.op_latency
}

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let keys = keyspace().min(50_000);
    let duration = point_duration();
    let shards = 4;
    let batch = 16;
    print_hist(
        "redis",
        &wrapped_latency(shards, keys, batch, duration, false, false),
    );
    print_hist(
        "redis-proxy",
        &wrapped_latency(shards, keys, batch, duration, false, true),
    );
    print_hist(
        "d-redis",
        &wrapped_latency(shards, keys, batch, duration, true, true),
    );
}
