//! Figure 19 — Throughput impact of recoverability guarantees.
//!
//! Four recoverability levels (None / Eventual / DPR / Synchronous) on
//! three systems: a Cassandra-like commit-log store, D-Redis, and D-FASTER.
//! The headline result: DPR performs like *eventual* recoverability while
//! providing prefix guarantees, whereas synchronous recoverability costs an
//! order of magnitude. Unsupported combinations print `n/a`, as in the
//! paper.

use dpr_bench::util::row;
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cassandra::{CassandraConfig, CassandraStore, CommitLogSync};
use dpr_cluster::{Cluster, ClusterConfig, ClusterKind};
use dpr_core::{RecoverabilityLevel, Value};
use dpr_storage::{MemLogDevice, StorageProfile};
use dpr_ycsb::{KeyDistribution, WorkloadGen, WorkloadOp, WorkloadSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cassandra-like sharded run (no DPR stack; direct store calls).
fn run_cassandra(
    sync: CommitLogSync,
    shards: usize,
    keys: u64,
    clients: usize,
    duration: Duration,
) -> f64 {
    let stores: Vec<Arc<CassandraStore>> = (0..shards)
        .map(|_| {
            Arc::new(CassandraStore::new(
                CassandraConfig { sync },
                Arc::new(MemLogDevice::with_profile(StorageProfile::LocalSsd)),
            ))
        })
        .collect();
    // Periodic flusher thread for the `periodic` mode.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flusher = {
        let stores = stores.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                for s in &stores {
                    let _ = s.flush_commitlog();
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };
    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let stores = stores.clone();
            handles.push(scope.spawn(move || {
                let mut gen = WorkloadGen::new(
                    WorkloadSpec::ycsb_a(keys, KeyDistribution::Uniform),
                    c as u64 + 1,
                );
                let mut done = 0u64;
                while start.elapsed() < duration {
                    for _ in 0..64 {
                        let op = gen.next_op();
                        let key = op.key().clone();
                        let shard = (key.hash64() % stores.len() as u64) as usize;
                        match op {
                            WorkloadOp::Read(_) => {
                                let _ = stores[shard].read(&key);
                            }
                            WorkloadOp::Update(_, v) => {
                                stores[shard].write(key, Some(v)).expect("write");
                            }
                            WorkloadOp::Rmw(_) => {
                                let old = stores[shard]
                                    .read(&key)
                                    .and_then(|v| v.as_u64())
                                    .unwrap_or(0);
                                stores[shard]
                                    .write(key, Some(Value::from_u64(old + 1)))
                                    .expect("write");
                            }
                        }
                        done += 1;
                    }
                }
                done
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    stop.store(true, std::sync::atomic::Ordering::Release);
    flusher.join().expect("flusher");
    total as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn run_cluster(
    kind: ClusterKind,
    level: RecoverabilityLevel,
    keys: u64,
    duration: Duration,
) -> f64 {
    let config = ClusterConfig {
        kind,
        shards: 4,
        recoverability: level,
        storage: StorageProfile::LocalSsd,
        checkpoint_interval: Some(Duration::from_millis(100)),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    harness::preload(&cluster, keys);
    let mut params = BenchParams::new(WorkloadSpec::ycsb_a(keys, KeyDistribution::Uniform));
    params.duration = duration;
    let stats = harness::run_workload(&cluster, &params);
    cluster.shutdown();
    stats.mops()
}

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let keys = keyspace().min(50_000);
    let duration = point_duration();

    // Cassandra: None / Eventual(periodic) / Sync(group); no DPR support.
    for (label, sync) in [
        ("none", Some(CommitLogSync::Off)),
        ("eventual", Some(CommitLogSync::Periodic)),
        ("dpr", None),
        ("sync", Some(CommitLogSync::Group)),
    ] {
        let mops = sync.map(|s| run_cassandra(s, 4, keys, 2, duration));
        row(
            "fig19",
            &[
                ("system", "cassandra".to_string()),
                ("level", label.to_string()),
                (
                    "mops",
                    mops.map_or("n/a".to_string(), |m| format!("{m:.4}")),
                ),
            ],
        );
    }

    // D-Redis and D-FASTER across all four levels (D-FASTER has no native
    // synchronous WAL in the paper either, but sync_commit emulates
    // per-batch group commit; the paper marks FASTER-sync as N/A — we print
    // both for completeness, flagging the emulation).
    for (system, kind, levels) in [
        (
            "d-redis",
            ClusterKind::DRedis,
            vec![
                ("none", Some(RecoverabilityLevel::None)),
                ("eventual", Some(RecoverabilityLevel::Eventual)),
                ("dpr", Some(RecoverabilityLevel::Dpr)),
                ("sync", Some(RecoverabilityLevel::Synchronous)),
            ],
        ),
        (
            "d-faster",
            ClusterKind::DFaster,
            vec![
                ("none", Some(RecoverabilityLevel::None)),
                ("eventual", Some(RecoverabilityLevel::Eventual)),
                ("dpr", Some(RecoverabilityLevel::Dpr)),
                ("sync", Some(RecoverabilityLevel::Synchronous)),
            ],
        ),
    ] {
        for (label, level) in levels {
            let mops = level.map(|l| run_cluster(kind, l, keys, duration));
            row(
                "fig19",
                &[
                    ("system", system.to_string()),
                    ("level", label.to_string()),
                    (
                        "mops",
                        mops.map_or("n/a".to_string(), |m| format!("{m:.4}")),
                    ),
                ],
            );
        }
    }
}
