//! Figure 11 — Scaling up D-FASTER.
//!
//! Throughput vs client threads per fixed cluster, for three configurations:
//! no checkpoints, checkpoints without DPR tracking, and full DPR. Shows
//! that DPR adds minimal overhead over plain uncoordinated checkpoints.

use dpr_bench::util::{env_list, row};
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_core::RecoverabilityLevel;
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let thread_counts = env_list("DPR_BENCH_THREADS", &[1, 2, 4]);
    let keys = keyspace();
    let duration = point_duration();
    let series: &[(&str, RecoverabilityLevel, Option<Duration>)] = &[
        ("no-chkpt", RecoverabilityLevel::None, None),
        (
            "no-dpr",
            RecoverabilityLevel::Eventual,
            Some(Duration::from_millis(100)),
        ),
        (
            "dpr",
            RecoverabilityLevel::Dpr,
            Some(Duration::from_millis(100)),
        ),
    ];
    for (dist_name, dist) in [
        ("uniform", KeyDistribution::Uniform),
        ("zipfian", KeyDistribution::Zipfian { theta: 0.99 }),
    ] {
        for (name, level, interval) in series {
            for &threads in &thread_counts {
                let config = ClusterConfig {
                    shards: 2,
                    recoverability: *level,
                    checkpoint_interval: *interval,
                    ..ClusterConfig::default()
                };
                let cluster = Cluster::start(config).expect("start cluster");
                harness::preload(&cluster, keys);
                let mut params = BenchParams::new(WorkloadSpec::ycsb_a(keys, dist));
                params.clients = threads as usize;
                params.duration = duration;
                let stats = harness::run_workload(&cluster, &params);
                row(
                    "fig11",
                    &[
                        ("dist", dist_name.to_string()),
                        ("series", (*name).to_string()),
                        ("threads", threads.to_string()),
                        ("mops", format!("{:.4}", stats.mops())),
                    ],
                );
                cluster.shutdown();
            }
        }
    }
}
