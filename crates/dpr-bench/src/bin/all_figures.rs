//! Run the entire figure suite in sequence (same process), printing every
//! row. `DPR_BENCH_SECS` / `DPR_BENCH_KEYS` scale all experiments.

use std::process::Command;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let bins = [
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "ablation_finder",
        "ablation_fastforward",
        "ablation_checkpoint_mode",
        "ablation_strict",
        "extra_workloads",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        eprintln!("==> running {bin}");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("!! {bin} exited with {status}");
        }
    }
}
