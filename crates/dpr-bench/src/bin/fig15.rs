//! Figure 15 — Co-location throughput.
//!
//! Clients run on the workers themselves; a configurable fraction of
//! operations hit the local shard (no network), the rest go remote. Sweeps
//! the co-location percentage and the batch size: local execution is
//! insensitive to batching, so low-batch workloads benefit most.

use dpr_bench::util::{env_list, row};
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let percents = env_list("DPR_BENCH_COLOCATE", &[0, 25, 50, 75, 90, 99, 100]);
    let batches = env_list("DPR_BENCH_BATCHES", &[1, 16, 256]);
    let keys = keyspace();
    let duration = point_duration();
    // Remote operations must pay a real network cost for co-location to
    // matter; the paper's clients and servers were separate VMs.
    let config = ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(100)),
        network_latency: Duration::from_micros(300),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    harness::preload(&cluster, keys);
    for &b in &batches {
        for &p in &percents {
            let mut params = BenchParams::new(WorkloadSpec::ycsb_a(
                keys,
                KeyDistribution::Zipfian { theta: 0.99 },
            ));
            params.batch = b as usize;
            params.window = (b as usize * 16).max(64);
            params.duration = duration;
            params.colocate_local_fraction = Some(p as f64 / 100.0);
            let stats = harness::run_workload(&cluster, &params);
            row(
                "fig15",
                &[
                    ("batch", b.to_string()),
                    ("local_pct", p.to_string()),
                    ("mops", format!("{:.4}", stats.mops())),
                ],
            );
        }
    }
    cluster.shutdown();
}
