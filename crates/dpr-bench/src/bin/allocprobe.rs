//! Allocation attribution probe for the server-side request path.
//!
//! Runs the worker execute path (validate → store batch → gate record)
//! in-process under a per-thread counting allocator and prints allocations
//! per batch for read-only and write batches. This isolates the request
//! path from background pump/finder threads, which `netload`'s
//! process-wide counter cannot do.
//!
//! Diagnostic only — not part of the benchmark suite or the CI gate.

use dpr_cluster::{Cluster, ClusterConfig, ClusterOp, OpResult};
use dpr_core::{Key, SessionId, Value};
use libdpr::BatchHeader;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

static GLOBAL_ALLOCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

struct CountingAlloc;

fn count_one() {
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
    GLOBAL_ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn my_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

const BATCH: u64 = 8;
const KEYS: u64 = 10_000;

fn run_case(cluster: &Cluster, write: bool, rounds: u64) -> f64 {
    let worker = &cluster.workers()[0];
    let session = SessionId(if write { 71 } else { 72 });
    let mut results: Vec<OpResult> = Vec::with_capacity(BATCH as usize);
    let mut ops: Vec<ClusterOp> = Vec::with_capacity(BATCH as usize);
    let mut serial = 0u64;

    let mut cycle = |measure: bool, rounds: u64| -> u64 {
        let before = my_allocs();
        for r in 0..rounds {
            ops.clear();
            for i in 0..BATCH {
                let key = Key::from_u64((r * BATCH + i * 7919) % KEYS);
                ops.push(if write {
                    ClusterOp::Upsert(key, Value::from_u64(r))
                } else {
                    ClusterOp::Read(key)
                });
            }
            let header = BatchHeader {
                session,
                world_line: worker.world_line(),
                version_lower_bound: dpr_core::Version(1),
                deps: Vec::new(),
                first_serial: serial,
                op_count: BATCH as u32,
            };
            serial += BATCH;
            results.clear();
            let _ = worker.execute_local_into(&header, &ops, &mut results);
        }
        if measure {
            my_allocs() - before
        } else {
            0
        }
    };

    cycle(false, 256); // warm-up
    let allocated = cycle(true, rounds);
    allocated as f64 / rounds as f64
}

fn main() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 1,
        checkpoint_interval: Some(Duration::from_millis(10)),
        finder_interval: Duration::from_millis(2),
        dedupe_window: 4096,
        ..ClusterConfig::default()
    })
    .unwrap();

    let rounds = 4096;
    // Writes first so the read case measures reads of *present* keys (an
    // empty-store read is an index miss and trivially allocation-free).
    for (label, write) in [("write", true), ("read ", false)] {
        let per_batch = run_case(&cluster, write, rounds);
        println!(
            "server {label}  allocs/batch={per_batch:.3}  allocs/op={:.3}",
            per_batch / BATCH as f64
        );
    }

    // Client side: drive a PipelinedClient against an in-process NetServer
    // from this thread; the per-thread counter sees only the client path.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let server = dpr_cluster::NetServer::start(
        cluster.workers().to_vec(),
        listener,
        dpr_cluster::NetServerConfig {
            io_threads: 1,
            ..dpr_cluster::NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let shard = cluster.workers()[0].shard();
    let mut client =
        dpr_cluster::PipelinedClient::connect(libdpr::DprClientSession::new(SessionId(99)), addr)
            .unwrap();

    let mut cycle = |measure: bool, rounds: u64, write: bool| -> u64 {
        let mut ops: Vec<ClusterOp> = Vec::with_capacity(BATCH as usize);
        let before = my_allocs();
        for r in 0..rounds {
            ops.clear();
            for i in 0..BATCH {
                let key = Key::from_u64((r * BATCH + i * 7919) % KEYS);
                ops.push(if write {
                    ClusterOp::Upsert(key, Value::from_u64(r))
                } else {
                    ClusterOp::Read(key)
                });
            }
            client.issue(shard, &ops).unwrap();
            while client.inflight() > 0 {
                client
                    .poll_each(Duration::from_millis(1), |done| {
                        std::hint::black_box(done.result.is_ok());
                    })
                    .unwrap();
            }
        }
        if measure {
            my_allocs() - before
        } else {
            0
        }
    };
    for (label, write) in [("read ", false), ("write", true)] {
        cycle(false, 512, write);
        let global_before = GLOBAL_ALLOCS.load(std::sync::atomic::Ordering::Relaxed);
        let mine = cycle(true, rounds, write);
        let others =
            GLOBAL_ALLOCS.load(std::sync::atomic::Ordering::Relaxed) - global_before - mine;
        let per_batch = mine as f64 / rounds as f64;
        // `others` covers the server I/O thread plus cluster background
        // (checkpoint/finder); with short intervals the background share is
        // a few percent of a saturated run.
        println!(
            "client {label}  allocs/batch={per_batch:.3}  allocs/op={:.3}  server-side/batch={:.3}",
            per_batch / BATCH as f64,
            others as f64 / rounds as f64
        );
    }

    // Aging probe: does the *idle* background allocation rate (checkpoint,
    // finder, flush machinery) grow with accumulated store state? Measure
    // idle rate, churn a large batch of writes through, measure again.
    let idle_rate = || {
        let before = GLOBAL_ALLOCS.load(std::sync::atomic::Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(500));
        (GLOBAL_ALLOCS.load(std::sync::atomic::Ordering::Relaxed) - before) * 2
    };
    println!("idle allocs/sec (fresh): {}", idle_rate());
    run_case(&cluster, true, 65_536);
    println!("idle allocs/sec (aged):  {}", idle_rate());

    server.shutdown();
    cluster.shutdown();
}
