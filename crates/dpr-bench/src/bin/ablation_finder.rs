//! Ablation — exact vs approximate vs hybrid DPR finders (§3.3–3.4).
//!
//! Same workload, three cut-finding algorithms. Reports throughput (the
//! finder is off the critical path, so it should be flat) and mean commit
//! latency (the approximate finder's false dependencies can add staleness;
//! the hybrid recovers exact precision).

use dpr_bench::util::ms;
use dpr_bench::util::row;
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_core::DprFinderMode;
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let keys = keyspace();
    let duration = point_duration();
    for (label, mode) in [
        ("exact", DprFinderMode::Exact),
        ("approximate", DprFinderMode::Approximate),
        ("hybrid", DprFinderMode::Hybrid),
    ] {
        let config = ClusterConfig {
            shards: 4,
            finder_mode: mode,
            checkpoint_interval: Some(Duration::from_millis(50)),
            ..ClusterConfig::default()
        };
        let cluster = Cluster::start(config).expect("start cluster");
        harness::preload(&cluster, keys);
        let mut params = BenchParams::new(WorkloadSpec::ycsb_a(
            keys,
            KeyDistribution::Zipfian { theta: 0.99 },
        ));
        params.duration = duration;
        params.measure_commit = true;
        let stats = harness::run_workload(&cluster, &params);
        row(
            "ablation-finder",
            &[
                ("finder", label.to_string()),
                ("mops", format!("{:.4}", stats.mops())),
                ("mean_commit_ms", ms(stats.commit_latency.mean())),
                ("p99_commit_ms", ms(stats.commit_latency.percentile(99.0))),
            ],
        );
        cluster.shutdown();
    }
}
