//! Ablation — `Vmax` fast-forwarding of lagging shards (§3.4).
//!
//! Builds a 2-shard cluster by hand where one shard checkpoints 10× less
//! often than the other. Without fast-forwarding, the approximate cut (the
//! cluster-wide `Vmin`) advances at the straggler's pace, inflating commit
//! latency for the fast shard's clients. With fast-forwarding, the
//! straggler catches up to `Vmax` and commit latency recovers.

use dpr_bench::util::{ms, row};
use dpr_bench::{keyspace, point_duration};
use dpr_cluster::worker::WorkerConfig;
use dpr_cluster::{ClusterOp, FasterShard, SimNetwork, Worker};
use dpr_core::{Clock, Key, SessionId, ShardId, SystemClock, Value};
use dpr_faster::{FasterConfig, FasterKv};
use dpr_metadata::{MetadataStore, OwnershipTable, Partitioner, SimulatedSqlStore};
use dpr_storage::{MemBlobStore, MemLogDevice};
use dpr_ycsb::LatencyHistogram;
use libdpr::{ApproximateFinder, BatchHeader, DprFinder};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build_worker(
    shard: u32,
    interval: Duration,
    fast_forward: bool,
    net: &Arc<SimNetwork>,
    ownership: &Arc<OwnershipTable>,
    meta: &Arc<dyn MetadataStore>,
    finder: &Arc<dyn DprFinder>,
) -> Arc<Worker> {
    let kv = FasterKv::new(
        FasterConfig {
            index_buckets: 1 << 12,
            memory_budget_records: 1 << 22,
            auto_maintenance: true,
            ..FasterConfig::default()
        },
        Arc::new(MemLogDevice::null()),
        Arc::new(MemBlobStore::new()),
    );
    Worker::start(
        ShardId(shard),
        Arc::new(FasterShard::new(ShardId(shard), kv)),
        net.clone(),
        ownership.clone(),
        meta.clone(),
        finder.clone(),
        WorkerConfig {
            checkpoint_interval: Some(interval),
            dpr_enabled: true,
            sync_commit: false,
            executors: 1,
            validate_ownership: false,
            fast_forward,
            dedupe_window: 0,
        },
    )
    .expect("start worker")
}

fn run(fast_forward: bool, duration: Duration, keys: u64) -> (f64, LatencyHistogram) {
    let net = SimNetwork::new(Duration::ZERO);
    let meta: Arc<dyn MetadataStore> = Arc::new(SimulatedSqlStore::new());
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let ownership = Arc::new(OwnershipTable::new(
        Partitioner::Hash { partitions: 64 },
        clock,
        Duration::from_secs(10),
    ));
    let finder: Arc<dyn DprFinder> = Arc::new(ApproximateFinder::new(meta.clone()));
    // Shard 0 checkpoints every 20 ms; shard 1 is a 10× straggler.
    let w0 = build_worker(
        0,
        Duration::from_millis(20),
        fast_forward,
        &net,
        &ownership,
        &meta,
        &finder,
    );
    let w1 = build_worker(
        1,
        Duration::from_millis(200),
        fast_forward,
        &net,
        &ownership,
        &meta,
        &finder,
    );
    ownership.assign_round_robin(&[w0.shard(), w1.shard()]);

    // Drive load directly against shard 0 (the fast shard) and measure how
    // long its ops take to enter the cut.
    let mut session = libdpr::DprClientSession::new(SessionId(1));
    let mut hist = LatencyHistogram::new();
    let mut issued: u64 = 0;
    let mut commit_queue: std::collections::VecDeque<(u64, Instant)> =
        std::collections::VecDeque::new();
    let start = Instant::now();
    let mut completed = 0u64;
    while start.elapsed() < duration {
        let header: BatchHeader = session.begin_batch(ShardId(0), 16).expect("batch");
        let ops: Vec<ClusterOp> = (0..16)
            .map(|i| ClusterOp::Upsert(Key::from_u64((issued + i) % keys), Value::from_u64(i)))
            .collect();
        let now = Instant::now();
        let (reply, _) = w0.execute_local(&header, &ops).expect("execute");
        session.process_reply(&reply).expect("reply");
        for s in header.first_serial..header.first_serial + 16 {
            commit_queue.push_back((s, now));
        }
        issued += 16;
        completed += 16;
        // Refresh commits against the finder's cut.
        let _ = finder.refresh();
        if let Ok(cut) = finder.current_cut() {
            let prefix = session.refresh_commit(&cut);
            let t = Instant::now();
            while let Some(&(serial, at)) = commit_queue.front() {
                if serial < prefix {
                    hist.record(t - at);
                    commit_queue.pop_front();
                } else {
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    w0.stop();
    w1.stop();
    (completed as f64 / start.elapsed().as_secs_f64() / 1e6, hist)
}

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let keys = keyspace();
    let duration = point_duration().max(Duration::from_secs(2));
    for ff in [false, true] {
        let (mops, hist) = run(ff, duration, keys);
        row(
            "ablation-fastforward",
            &[
                ("fast_forward", ff.to_string()),
                ("mops", format!("{mops:.4}")),
                ("mean_commit_ms", ms(hist.mean())),
                ("p99_commit_ms", ms(hist.percentile(99.0))),
                ("commits_observed", hist.count().to_string()),
            ],
        );
    }
}
