//! Figure 12 — Latency distribution of D-FASTER.
//!
//! Operation-completion and operation-commit latency distributions under
//! 100 ms checkpoints, for a large batch (b=1024) and a small batch (b=64).
//! Commit latency ≈ one checkpoint interval + checkpoint duration;
//! operation latency is dominated by client batching.

use dpr_bench::util::{ms, percentile_label, row, PERCENTILES};
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let keys = keyspace();
    let duration = point_duration().max(Duration::from_secs(2));
    for batch in [1024u64, 64] {
        let config = ClusterConfig {
            shards: 4,
            checkpoint_interval: Some(Duration::from_millis(100)),
            ..ClusterConfig::default()
        };
        let cluster = Cluster::start(config).expect("start cluster");
        harness::preload(&cluster, keys);
        let mut params = BenchParams::new(WorkloadSpec::ycsb_a(
            keys,
            KeyDistribution::Zipfian { theta: 0.99 },
        ));
        params.batch = batch as usize;
        params.window = (batch as usize) * 16;
        params.duration = duration;
        params.measure_commit = true;
        let stats = harness::run_workload(&cluster, &params);
        for (kind, hist) in [
            ("operation", &stats.op_latency),
            ("commit", &stats.commit_latency),
        ] {
            let mut fields = vec![
                ("batch", batch.to_string()),
                ("kind", kind.to_string()),
                ("samples", hist.count().to_string()),
                ("mean_ms", ms(hist.mean())),
            ];
            for &p in PERCENTILES {
                fields.push((percentile_label(p), ms(hist.percentile(p))));
            }
            row("fig12", &fields);
        }
        cluster.shutdown();
    }
}
