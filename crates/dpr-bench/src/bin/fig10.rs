//! Figure 10 — Scaling out D-FASTER.
//!
//! Throughput vs number of shards for YCSB-A 50:50 under uniform and
//! Zipfian(0.99) access, across storage backends: no checkpoints, null
//! device, local SSD, cloud SSD.

use dpr_bench::util::{env_list, row};
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_storage::StorageProfile;
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let shard_counts = env_list("DPR_BENCH_SHARDS", &[1, 2, 4, 8]);
    let keys = keyspace();
    let duration = point_duration();
    let backends: &[(&str, Option<StorageProfile>)] = &[
        ("no-chkpt", None),
        ("null", Some(StorageProfile::Null)),
        ("local-ssd", Some(StorageProfile::LocalSsd)),
        ("cloud-ssd", Some(StorageProfile::CloudSsd)),
    ];
    for (dist_name, dist) in [
        ("uniform", KeyDistribution::Uniform),
        ("zipfian", KeyDistribution::Zipfian { theta: 0.99 }),
    ] {
        for (backend, profile) in backends {
            for &shards in &shard_counts {
                let config = ClusterConfig {
                    shards: shards as usize,
                    storage: profile.unwrap_or(StorageProfile::Null),
                    checkpoint_interval: profile.map(|_| Duration::from_millis(100)),
                    ..ClusterConfig::default()
                };
                let cluster = Cluster::start(config).expect("start cluster");
                harness::preload(&cluster, keys);
                let mut params = BenchParams::new(WorkloadSpec::ycsb_a(keys, dist));
                params.duration = duration;
                let stats = harness::run_workload(&cluster, &params);
                row(
                    "fig10",
                    &[
                        ("dist", dist_name.to_string()),
                        ("backend", (*backend).to_string()),
                        ("shards", shards.to_string()),
                        ("mops", format!("{:.4}", stats.mops())),
                        ("committed", stats.committed.to_string()),
                    ],
                );
                cluster.shutdown();
            }
        }
    }
}
