//! Extra workload mixes (§7.2's omitted experiments): read-mostly (YCSB-B),
//! read-modify-write (YCSB-F) and read-latest (YCSB-D), each with DPR on
//! and off — supporting the paper's statement that "DPR does not slow down
//! D-FASTER" across mixes.

use dpr_bench::util::row;
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig};
use dpr_core::RecoverabilityLevel;
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let keys = keyspace();
    let duration = point_duration();
    let zipf = KeyDistribution::Zipfian { theta: 0.99 };
    let workloads: Vec<(&str, WorkloadSpec)> = vec![
        ("ycsb-a(50:50)", WorkloadSpec::ycsb_a(keys, zipf)),
        ("ycsb-b(95:5)", WorkloadSpec::ycsb_b(keys, zipf)),
        ("ycsb-f(rmw)", WorkloadSpec::ycsb_f(keys, zipf)),
        ("ycsb-d(latest)", WorkloadSpec::ycsb_d(keys)),
    ];
    for (name, spec) in workloads {
        for (series, level) in [
            ("dpr", RecoverabilityLevel::Dpr),
            ("no-dpr", RecoverabilityLevel::Eventual),
        ] {
            let cluster = Cluster::start(ClusterConfig {
                shards: 4,
                recoverability: level,
                checkpoint_interval: Some(Duration::from_millis(100)),
                ..ClusterConfig::default()
            })
            .expect("start cluster");
            harness::preload(&cluster, keys);
            let mut params = BenchParams::new(spec.clone());
            params.duration = duration;
            let stats = harness::run_workload(&cluster, &params);
            row(
                "extra-workloads",
                &[
                    ("workload", name.to_string()),
                    ("series", series.to_string()),
                    ("mops", format!("{:.4}", stats.mops())),
                ],
            );
            cluster.shutdown();
        }
    }
}
