//! Metadata/finder-plane scaling — cut maintenance cost vs. shard count.
//!
//! §3.4's coordination plane has two scaling hazards as deployments grow:
//! every shard's commit reports and persisted-version updates funnel into
//! the shared metadata store (one table lock in the monolithic simulation),
//! and every finder refresh recomputes the transitive closure over the
//! complete precedence-graph history (a full-graph clone per pass). This
//! bench measures both fixes together against the legacy cost model:
//!
//! * **mono-full** — monolithic [`SimulatedSqlStore`] + a [`HybridFinder`]
//!   in [`CutEngineMode::FullRecompute`] (clone-per-refresh, complete
//!   history): the baseline.
//! * **part-delta** — [`PartitionedSqlStore`] (`DPR_META_PARTITIONS`,
//!   default 8) + [`CutEngineMode::Delta`]: per-partition table locks and
//!   the incremental delta-closure engine whose working set is bounded by
//!   cut lag, with **zero** full-graph clones on the refresh path (the
//!   bench asserts the engine's clone counter stays 0).
//!
//! Reporter threads (`DPR_META_REPORTERS`) drive the shard set round-robin:
//! version bumps with cross-shard dependency fan-out via
//! `report_commits`, persisted-version updates every
//! `DPR_META_PERSIST_EVERY` versions (the checkpoint signal that moves the
//! approximate floor and prunes the delta working set). A refresher thread
//! runs `refresh` back-to-back, recording per-pass latency; cut lag
//! (`Vmax` − min cut version) is sampled at the end of each point.
//!
//! Output: one `meta` row per (impl, shards) point and a JSON report
//! (`DPR_META_JSON`, default `BENCH_meta.json`). The summary carries the
//! acceptance numbers: refresh-p50 growth ratio lowest→highest shard count
//! per implementation (sub-linear for part-delta), delta refreshes/sec at
//! the highest shard count (the bench-guard metric), and the delta clone
//! count (must be 0).

use dpr_bench::point_duration;
use dpr_bench::util::{env_list, row};
use dpr_core::{ShardId, Token, Version};
use dpr_metadata::{MetadataStore, PartitionedSqlStore, SimulatedSqlStore};
use libdpr::{CutEngineMode, DprFinder, HybridFinder};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone)]
struct Config {
    duration: Duration,
    sql_us: u64,
    partitions: usize,
    reporters: u64,
    persist_every: u64,
    report_us: u64,
}

struct Point {
    implementation: &'static str,
    shards: u64,
    refreshes_per_sec: f64,
    refresh_p50_us: u64,
    refresh_p99_us: u64,
    reports: u64,
    cut_lag_versions: u64,
    pending_tokens: usize,
    full_graph_clones: u64,
    statements: u64,
    partition_imbalance: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[allow(clippy::too_many_lines)]
fn run_point(implementation: &'static str, shards: u64, cfg: &Config) -> Point {
    let latency = Duration::from_micros(cfg.sql_us);
    let store = if implementation == "part-delta" {
        Store::Partitioned(Arc::new(PartitionedSqlStore::with_latency(
            cfg.partitions,
            latency,
        )))
    } else {
        Store::Mono(Arc::new(SimulatedSqlStore::with_latency(latency)))
    };
    let meta: Arc<dyn MetadataStore> = match &store {
        Store::Partitioned(p) => p.clone(),
        Store::Mono(m) => m.clone(),
    };
    for s in 0..shards {
        meta.register_worker(ShardId(s as u32)).expect("register");
    }
    let mode = if implementation == "part-delta" {
        CutEngineMode::Delta
    } else {
        CutEngineMode::FullRecompute
    };
    let finder = Arc::new(HybridFinder::with_mode(meta.clone(), mode));
    let base_statements = store.statement_count();

    let stop = Arc::new(AtomicBool::new(false));
    let reports = Arc::new(AtomicU64::new(0));
    // Per-shard version clocks, striped across reporter threads so each
    // shard has exactly one writer (in-order, monotone reports — what the
    // §3.2 version clock produces).
    let mut handles = Vec::new();
    for t in 0..cfg.reporters {
        let finder = finder.clone();
        let meta = meta.clone();
        let stop = stop.clone();
        let reports = reports.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let my_shards: Vec<u64> = (0..shards).filter(|s| s % cfg.reporters == t).collect();
            if my_shards.is_empty() {
                return;
            }
            let mut versions = vec![0u64; my_shards.len()];
            let mut i = 0usize;
            let mut rng: u64 = 0x5851_F42D ^ t;
            while !stop.load(Ordering::Acquire) {
                let s = my_shards[i];
                versions[i] += 1;
                let v = versions[i];
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                // Two cross-shard deps ≤ own version (monotone clamp).
                let deps: Vec<Token> = (0..2)
                    .map(|k| {
                        let d = (rng >> (k * 8)) % shards;
                        Token::new(ShardId(d as u32), Version(rng % v + 1))
                    })
                    .filter(|d| d.shard.0 as u64 != s)
                    .collect();
                let token = Token::new(ShardId(s as u32), Version(v));
                finder.report_commits(vec![(token, deps)]).expect("report");
                reports.fetch_add(1, Ordering::Relaxed);
                if v.is_multiple_of(cfg.persist_every) {
                    meta.update_persisted_version(ShardId(s as u32), Version(v))
                        .expect("persist");
                }
                i = (i + 1) % my_shards.len();
                if cfg.report_us > 0 {
                    std::thread::sleep(Duration::from_micros(cfg.report_us));
                }
            }
        }));
    }

    let refresher = {
        let finder = finder.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut latencies: Vec<u64> = Vec::with_capacity(1 << 16);
            while !stop.load(Ordering::Acquire) {
                let t0 = Instant::now();
                finder.refresh().expect("refresh");
                latencies.push(t0.elapsed().as_micros() as u64);
            }
            latencies
        })
    };

    let started = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Release);
    let elapsed = started.elapsed();
    for h in handles {
        h.join().expect("reporter");
    }
    let mut latencies = refresher.join().expect("refresher");
    let refreshes = latencies.len() as u64;
    latencies.sort_unstable();

    // Final catch-up pass, then sample cut lag: with reporters quiet the
    // residual lag is the plane's steady-state drain debt.
    finder.refresh().expect("refresh");
    let cut = finder.current_cut().expect("cut");
    let vmax = finder.max_version().expect("vmax");
    let min_cut = cut.values().min().copied().unwrap_or(Version::ZERO);
    let partition_imbalance = match &store {
        Store::Partitioned(p) => {
            // Over partitions that saw traffic: with fewer shards than
            // partitions, the empty ones are routing gaps, not skew.
            let counts: Vec<u64> = p
                .partition_statement_counts()
                .into_iter()
                .filter(|&c| c > 0)
                .collect();
            let max = counts.iter().copied().max().unwrap_or(1);
            let min = counts.iter().copied().min().unwrap_or(1);
            max as f64 / min as f64
        }
        Store::Mono(_) => 1.0,
    };

    Point {
        implementation,
        shards,
        refreshes_per_sec: refreshes as f64 / elapsed.as_secs_f64(),
        refresh_p50_us: percentile(&latencies, 0.50),
        refresh_p99_us: percentile(&latencies, 0.99),
        reports: reports.load(Ordering::Relaxed),
        cut_lag_versions: vmax.0.saturating_sub(min_cut.0),
        pending_tokens: finder.pending_tokens(),
        full_graph_clones: finder.full_graph_clones(),
        statements: store.statement_count() - base_statements,
        partition_imbalance,
    }
}

/// Concrete store handle kept alongside the trait object for the charged
/// statement counters (not part of [`MetadataStore`]).
enum Store {
    Mono(Arc<SimulatedSqlStore>),
    Partitioned(Arc<PartitionedSqlStore>),
}

impl Store {
    fn statement_count(&self) -> u64 {
        match self {
            Store::Mono(m) => m.statement_count(),
            Store::Partitioned(p) => p.statement_count(),
        }
    }
}

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let shard_counts = env_list("DPR_META_SHARDS", &[8, 24, 80]);
    let cfg = Config {
        duration: point_duration(),
        sql_us: env_u64("DPR_META_SQL_US", 100),
        partitions: env_u64("DPR_META_PARTITIONS", 8) as usize,
        reporters: env_u64("DPR_META_REPORTERS", 4).max(1),
        persist_every: env_u64("DPR_META_PERSIST_EVERY", 8).max(1),
        report_us: env_u64("DPR_META_REPORT_US", 20),
    };
    let mut points = Vec::new();
    for implementation in ["mono-full", "part-delta"] {
        for &shards in &shard_counts {
            let p = run_point(implementation, shards, &cfg);
            row(
                "meta",
                &[
                    ("impl", p.implementation.to_string()),
                    ("shards", p.shards.to_string()),
                    ("refreshes_per_sec", format!("{:.0}", p.refreshes_per_sec)),
                    ("refresh_p50_us", p.refresh_p50_us.to_string()),
                    ("refresh_p99_us", p.refresh_p99_us.to_string()),
                    ("reports", p.reports.to_string()),
                    ("cut_lag", p.cut_lag_versions.to_string()),
                    ("pending_tokens", p.pending_tokens.to_string()),
                    ("clones", p.full_graph_clones.to_string()),
                    ("imbalance", format!("{:.2}", p.partition_imbalance)),
                ],
            );
            points.push(p);
        }
    }

    let lo = shard_counts.first().copied().unwrap_or(8);
    let hi = shard_counts.last().copied().unwrap_or(80);
    let p50_growth = |implementation: &str| -> f64 {
        let of = |s: u64| {
            points
                .iter()
                .find(|p| p.implementation == implementation && p.shards == s)
                .map(|p| p.refresh_p50_us.max(1) as f64)
        };
        match (of(lo), of(hi)) {
            (Some(a), Some(b)) => b / a,
            _ => f64::NAN,
        }
    };
    let delta_hi = points
        .iter()
        .find(|p| p.implementation == "part-delta" && p.shards == hi);
    let delta_refreshes_per_sec = delta_hi.map_or(f64::NAN, |p| p.refreshes_per_sec);
    let delta_clones: u64 = points
        .iter()
        .filter(|p| p.implementation == "part-delta")
        .map(|p| p.full_graph_clones)
        .sum();
    assert_eq!(
        delta_clones, 0,
        "delta engine cloned the graph on the refresh path"
    );
    let shard_growth = hi as f64 / lo as f64;
    row(
        "meta_summary",
        &[
            ("shard_growth", format!("{shard_growth:.1}")),
            (
                "mono_full_p50_growth",
                format!("{:.2}", p50_growth("mono-full")),
            ),
            (
                "part_delta_p50_growth",
                format!("{:.2}", p50_growth("part-delta")),
            ),
            (
                "delta_refreshes_per_sec_hi",
                format!("{delta_refreshes_per_sec:.0}"),
            ),
            ("delta_full_graph_clones", delta_clones.to_string()),
        ],
    );

    let json_path =
        std::env::var("DPR_META_JSON").unwrap_or_else(|_| "BENCH_meta.json".to_string());
    let mut json = String::from("{\n  \"bench\": \"meta_scaling\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"point_secs\": {:.2}, \"sql_us\": {}, \"partitions\": {}, \"reporters\": {}, \"persist_every\": {}, \"report_us\": {}, \"host_cpus\": {}}},\n",
        cfg.duration.as_secs_f64(),
        cfg.sql_us,
        cfg.partitions,
        cfg.reporters,
        cfg.persist_every,
        cfg.report_us,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"impl\": \"{}\", \"shards\": {}, \"refreshes_per_sec\": {:.0}, \"refresh_p50_us\": {}, \"refresh_p99_us\": {}, \"reports\": {}, \"cut_lag_versions\": {}, \"pending_tokens\": {}, \"full_graph_clones\": {}, \"statements\": {}, \"partition_imbalance\": {:.2}}}{}\n",
            p.implementation,
            p.shards,
            p.refreshes_per_sec,
            p.refresh_p50_us,
            p.refresh_p99_us,
            p.reports,
            p.cut_lag_versions,
            p.pending_tokens,
            p.full_graph_clones,
            p.statements,
            p.partition_imbalance,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"summary\": {{\"shards_lo\": {}, \"shards_hi\": {}, \"shard_growth\": {:.1}, \"mono_full_p50_growth\": {:.2}, \"part_delta_p50_growth\": {:.2}, \"delta_refreshes_per_sec_hi\": {:.0}, \"delta_full_graph_clones\": {}}}\n}}\n",
        lo,
        hi,
        shard_growth,
        p50_growth("mono-full"),
        p50_growth("part-delta"),
        delta_refreshes_per_sec,
        delta_clones,
    ));
    let mut f = std::fs::File::create(&json_path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {json_path}");
}
