//! Figure 17 — Throughput of D-Redis vs Redis vs Redis+proxy.
//!
//! Three configurations over the same sharded Redis-like store:
//! * `redis` — clients talk to the store servers directly (one hop, no DPR);
//! * `redis-proxy` — a pass-through proxy adds a hop but does no DPR work,
//!   isolating the cost of the extra hop (§7.5);
//! * `d-redis` — proxy hop + the full libDPR wrapper.
//!
//! Run saturated (w=8192, b=1024) and unsaturated (w=1024, b=16) as in the
//! paper.

use dpr_bench::util::{env_list, row};
use dpr_bench::{harness, keyspace, point_duration, BenchParams};
use dpr_cluster::{Cluster, ClusterConfig, ClusterKind};
use dpr_core::RecoverabilityLevel;
use dpr_ycsb::{KeyDistribution, WorkloadSpec};
use std::time::Duration;

fn run_wrapped(
    shards: usize,
    keys: u64,
    window: usize,
    batch: usize,
    duration: Duration,
    dpr: bool,
    proxy: bool,
) -> f64 {
    let config = ClusterConfig {
        kind: ClusterKind::DRedis,
        shards,
        recoverability: if dpr {
            RecoverabilityLevel::Dpr
        } else {
            RecoverabilityLevel::None
        },
        checkpoint_interval: if dpr {
            Some(Duration::from_millis(250))
        } else {
            None
        },
        extra_proxy_hop: proxy,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    harness::preload(&cluster, keys);
    let mut params = BenchParams::new(WorkloadSpec::ycsb_a(
        keys,
        KeyDistribution::Zipfian { theta: 0.99 },
    ));
    params.window = window;
    params.batch = batch;
    params.duration = duration;
    let stats = harness::run_workload(&cluster, &params);
    cluster.shutdown();
    stats.mops()
}

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let shard_counts = env_list("DPR_BENCH_SHARDS", &[1, 2, 4, 8]);
    let keys = keyspace().min(50_000); // Redis-like stores are preloaded serially
    let duration = point_duration();
    let modes: &[(&str, usize, usize)] = &[("saturated", 8192, 1024), ("unsaturated", 1024, 16)];
    for (mode, window, batch) in modes {
        for &shards in &shard_counts {
            let plain = run_wrapped(
                shards as usize,
                keys,
                *window,
                *batch,
                duration,
                false,
                false,
            );
            let proxy = run_wrapped(
                shards as usize,
                keys,
                *window,
                *batch,
                duration,
                false,
                true,
            );
            let dredis = run_wrapped(shards as usize, keys, *window, *batch, duration, true, true);
            row(
                "fig17",
                &[
                    ("mode", (*mode).to_string()),
                    ("shards", shards.to_string()),
                    ("redis_mops", format!("{plain:.4}")),
                    ("redis_proxy_mops", format!("{proxy:.4}")),
                    ("dredis_mops", format!("{dredis:.4}")),
                ],
            );
        }
    }
}
