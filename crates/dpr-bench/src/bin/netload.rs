//! netload — closed-loop load generator for the real TCP network plane.
//!
//! Unlike the `fig*` binaries (which drive the in-process simulated bus),
//! this bench crosses a real process *and* socket boundary: the same binary
//! re-executes itself with `--serve`, and the child hosts a whole cluster —
//! `DPR_NET_SHARDS` shard workers behind one fan-in [`NetServer`] listener —
//! while the parent drives `DPR_NET_SESSIONS` concurrent [`PipelinedClient`]
//! sessions against it over loopback TCP (one connection per session; the
//! wire contract is `docs/NETWORK.md`).
//!
//! Each driver thread owns a slice of the sessions and runs them closed
//! loop: a session keeps up to `DPR_NET_WINDOW` batches of `DPR_NET_BATCH`
//! ops in flight, and a per-thread token bucket caps the aggregate issue
//! rate at the point's target QPS (`0` = uncapped, the saturation point).
//! Batch latency — issue to response, including encode, two socket hops,
//! and server-side execution — is recorded into `dpr-telemetry` histograms.
//! Sessions also track their durable prefix entirely over the wire via
//! `CutReq` frames, so the report's `committed_ops` is the DPR guarantee as
//! a remote client observes it, not a metadata-store peek.
//!
//! The child enables ownership-free routing (`validate_ownership = false`)
//! and clients partition keys per shard on their side — the standard
//! deployment mode for an external load generator that has no ownership
//! table (see `docs/NETWORK.md` §7).
//!
//! Output: one `netload` row per QPS point plus a JSON report
//! (`DPR_NET_JSON`, default `BENCH_net.json`) with the acceptance numbers:
//! sessions, shards, peak throughput, and tail latency per point.

use dpr_bench::util::{env_list, row};
use dpr_cluster::{Cluster, ClusterConfig, ClusterOp, NetServer, NetServerConfig, PipelinedClient};
use dpr_core::{Key, SessionId, Value};
use dpr_telemetry::metric_fn;
use dpr_ycsb::{BatchPlan, KeyDistribution, PlannedKind, WorkloadGen, WorkloadSpec};
use libdpr::DprClientSession;
use std::io::{BufRead, BufReader, Lines, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Allocation accounting: the whole binary (driver and `--serve` child alike)
// runs under a counting wrapper of the system allocator, so the report can
// state *allocations per operation* on the steady-state request path — the
// zero-copy acceptance figure — rather than inferring it from throughput.
// ---------------------------------------------------------------------------

/// Heap allocations observed process-wide (one relaxed add per alloc).
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the only addition is a
// relaxed counter increment on the allocating entry points.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

metric_fn!(
    /// Batch round-trip latency observed by the load generator (issue →
    /// response, across the real socket).
    fn loadgen_batch_us() -> Histogram =
        ("dpr_loadgen_batch_us", Micros,
         "netload batch round-trip latency over real TCP")
);

metric_fn!(
    /// Operations completed by the load generator.
    fn loadgen_ops() -> Counter =
        ("dpr_loadgen_ops_total", Ops,
         "Operations completed by the netload generator")
);

metric_fn!(
    /// Client-side heap allocations per 1000 completed operations on the
    /// most recent netload point (steady-state request path, ×1000 so the
    /// sub-one-alloc-per-op regime stays visible in an integer gauge).
    fn net_alloc_per_op() -> Gauge =
        ("dpr_net_alloc_per_op", Count,
         "netload client heap allocations per 1000 ops (most recent point)")
);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone)]
struct Config {
    shards: usize,
    sessions: usize,
    threads: usize,
    window: usize,
    batch: usize,
    read_pct: u64,
    keys_per_shard: u64,
    duration: Duration,
}

impl Config {
    fn from_env() -> Config {
        let threads = env_u64("DPR_NET_THREADS", 2).max(1) as usize;
        Config {
            shards: env_u64("DPR_NET_SHARDS", 8).max(1) as usize,
            sessions: env_u64("DPR_NET_SESSIONS", 64).max(1) as usize,
            threads,
            window: env_u64("DPR_NET_WINDOW", 8).max(1) as usize,
            batch: env_u64("DPR_NET_BATCH", 8).max(1) as usize,
            read_pct: env_u64("DPR_NET_READ_PCT", 50).min(100),
            keys_per_shard: env_u64("DPR_NET_KEYS_PER_SHARD", 10_000).max(1),
            duration: dpr_bench::point_duration(),
        }
    }
}

// ---------------------------------------------------------------------------
// Server role (`netload --serve`): one process, all shards, one listener.
// ---------------------------------------------------------------------------

fn serve() {
    let cfg = Config::from_env();
    let cluster = Cluster::start(ClusterConfig {
        shards: cfg.shards,
        // External generators have no ownership table; keys are partitioned
        // client-side (docs/NETWORK.md §7).
        validate_ownership: false,
        // Retransmission over real sockets must stay exactly-once.
        dedupe_window: 4096,
        checkpoint_interval: Some(Duration::from_millis(50)),
        finder_interval: Duration::from_millis(5),
        ..ClusterConfig::default()
    })
    .expect("start cluster");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = NetServer::start(
        cluster.workers().to_vec(),
        listener,
        NetServerConfig::default(),
    )
    .expect("start net server");

    // The driver parses this line; everything else goes to stderr.
    println!("LISTEN {}", server.local_addr());
    std::io::stdout().flush().expect("flush");

    // Serve until the driver says stop (or its pipe closes). `MARK` lines
    // answer with the server-side allocation and executed-op counters so the
    // driver can compute server allocations/op over exactly the measured
    // window (setup and teardown excluded).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "STOP" => break,
            Ok(l) if l.trim() == "MARK" => {
                let ops: u64 = cluster.workers().iter().map(|w| w.executed_ops()).sum();
                println!("MARK {} {ops}", alloc_count());
                std::io::stdout().flush().expect("flush");
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    server.shutdown();
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Driver role: closed-loop sessions against the child server.
// ---------------------------------------------------------------------------

struct ServerProc {
    child: Child,
    addr: SocketAddr,
    lines: Lines<BufReader<ChildStdout>>,
}

fn spawn_server() -> ServerProc {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("--serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn --serve child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before LISTEN")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("LISTEN ") {
            break rest.trim().parse().expect("parse LISTEN addr");
        }
    };
    ServerProc { child, addr, lines }
}

impl ServerProc {
    /// Ask the child for its `(allocations, executed_ops)` counters.
    fn mark(&mut self) -> (u64, u64) {
        let stdin = self.child.stdin.as_mut().expect("child stdin");
        stdin.write_all(b"MARK\n").expect("write MARK");
        stdin.flush().expect("flush MARK");
        loop {
            let line = self
                .lines
                .next()
                .expect("server exited before MARK reply")
                .expect("read server stdout");
            if let Some(rest) = line.strip_prefix("MARK ") {
                let mut it = rest.split_whitespace();
                let allocs = it.next().and_then(|s| s.parse().ok()).expect("MARK allocs");
                let ops = it.next().and_then(|s| s.parse().ok()).expect("MARK ops");
                return (allocs, ops);
            }
        }
    }

    fn stop(mut self) {
        if let Some(stdin) = self.child.stdin.as_mut() {
            let _ = stdin.write_all(b"STOP\n");
            let _ = stdin.flush();
        }
        drop(self.child.stdin.take());
        // The child exits on STOP/EOF; a kill here only fires if it wedged.
        for _ in 0..500 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Point {
    target_qps: u64,
    /// Read percentage this point ran with (the matrix runs the configured
    /// mix; a trailing read-only point exercises the zero-copy read path).
    read_pct: u64,
    ops: u64,
    batches: u64,
    /// The issue window only — the post-deadline drain and commit-tracking
    /// grace are excluded from throughput.
    elapsed: Duration,
    issued_ops: u64,
    committed_ops: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_us: f64,
    /// Driver-process heap allocations per completed op over the point
    /// (includes the issue window and the drain).
    client_allocs_per_op: f64,
    /// Server-process heap allocations per executed op over the point
    /// (from `MARK` counter deltas around the point).
    server_allocs_per_op: f64,
}

impl Point {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// One driver thread's slice of the run.
struct ThreadStats {
    ops: u64,
    batches: u64,
    issued_ops: u64,
    committed_ops: u64,
}

#[allow(clippy::too_many_lines)]
fn drive_thread(
    tid: usize,
    point_idx: usize,
    addr: SocketAddr,
    target_per_thread: f64,
    cfg: &Config,
    hist: &dpr_telemetry::Histogram,
) -> ThreadStats {
    let my_sessions = (0..cfg.sessions)
        .filter(|s| s % cfg.threads == tid)
        .collect::<Vec<_>>();
    let mut clients: Vec<PipelinedClient> = my_sessions
        .iter()
        .map(|&s| {
            let id = SessionId((point_idx * cfg.sessions + s + 1) as u64);
            PipelinedClient::connect(DprClientSession::new(id), addr).expect("connect session")
        })
        .collect();
    let shards: Vec<_> = clients[0].shards().to_vec();
    // Vectorized op generation: one seeded YCSB generator per thread fills
    // a reusable plan in bulk passes; the plan's raw key ids materialise
    // into a reused op buffer. Steady state allocates nothing per batch.
    let mut gen = WorkloadGen::new(
        WorkloadSpec {
            keys: cfg.keys_per_shard,
            read_fraction: cfg.read_pct as f64 / 100.0,
            rmw_fraction: 0.0,
            distribution: KeyDistribution::Uniform,
            value_size: 8,
        },
        42 + tid as u64,
    );
    let mut plan = BatchPlan::new();
    let mut ops: Vec<ClusterOp> = Vec::with_capacity(cfg.batch);

    let mut stats = ThreadStats {
        ops: 0,
        batches: 0,
        issued_ops: 0,
        committed_ops: 0,
    };
    // Token bucket in ops, refilled continuously, capped at one second of
    // burst so a sweep stalled behind the server (shared core) can catch
    // back up to the target rate instead of silently shedding tokens.
    let mut tokens = 0.0f64;
    let burst = target_per_thread.max(cfg.batch as f64);
    let mut last_refill = Instant::now();
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut sweep = 0u64;

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if target_per_thread > 0.0 {
            tokens = (tokens + target_per_thread * now.duration_since(last_refill).as_secs_f64())
                .min(burst);
            last_refill = now;
        }
        for (ci, client) in clients.iter_mut().enumerate() {
            // Fill this session's window, budget permitting.
            while client.inflight() < cfg.window
                && (target_per_thread <= 0.0 || tokens >= cfg.batch as f64)
            {
                let shard = shards[(stats.batches as usize + ci) % shards.len()];
                gen.fill_plan(&mut plan, cfg.batch);
                ops.clear();
                for op in plan.ops() {
                    // Client-side partitioning: the shard index tags the
                    // key's high bits, so a key always hits one shard.
                    let k = (u64::from(shard.0) << 32) | op.key_id;
                    ops.push(match op.kind {
                        PlannedKind::Read => ClusterOp::Read(Key::from_u64(k)),
                        PlannedKind::Rmw => ClusterOp::Incr(Key::from_u64(k)),
                        PlannedKind::Update => {
                            ClusterOp::Upsert(Key::from_u64(k), Value::from_u64(op.counter))
                        }
                    });
                }
                client.issue(shard, &ops).expect("issue batch");
                stats.batches += 1;
                stats.issued_ops += cfg.batch as u64;
                tokens -= cfg.batch as f64;
            }
            client
                .poll_each(Duration::from_millis(1), |done| {
                    let results = done.result.expect("batch outcome");
                    hist.record_micros(done.issued_at.elapsed());
                    loadgen_batch_us().record_micros(done.issued_at.elapsed());
                    loadgen_ops().add(results.len() as u64);
                    stats.ops += results.len() as u64;
                })
                .expect("poll");
            // Commit tracking rides the same connection, off the hot path.
            if sweep.is_multiple_of(64) {
                client.request_cut().expect("request cut");
            }
        }
        sweep += 1;
    }

    // Drain the windows so every issued batch is accounted for.
    let grace = Instant::now() + Duration::from_secs(10);
    while clients.iter().any(|c| c.inflight() > 0) && Instant::now() < grace {
        for client in &mut clients {
            client
                .poll_each(Duration::from_millis(2), |done| {
                    let results = done.result.expect("batch outcome");
                    hist.record_micros(done.issued_at.elapsed());
                    loadgen_batch_us().record_micros(done.issued_at.elapsed());
                    loadgen_ops().add(results.len() as u64);
                    stats.ops += results.len() as u64;
                })
                .expect("drain");
        }
    }

    // Let the durable prefix catch up (checkpoints every 50 ms), observed
    // purely over the wire.
    let commit_grace = Instant::now() + Duration::from_secs(5);
    loop {
        let committed: u64 = clients
            .iter_mut()
            .map(|c| c.session_mut().committed_count())
            .sum();
        if committed >= stats.ops || Instant::now() >= commit_grace {
            stats.committed_ops = committed;
            break;
        }
        for client in &mut clients {
            client.request_cut().expect("request cut");
            let _ = client
                .poll_each(Duration::from_millis(2), |_| {})
                .expect("poll cut");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    stats
}

fn run_point(point_idx: usize, server: &mut ServerProc, target_qps: u64, cfg: &Config) -> Point {
    let addr = server.addr;
    let hist = Arc::new(dpr_telemetry::Histogram::new());
    let (srv_allocs_before, srv_ops_before) = server.mark();
    let client_allocs_before = alloc_count();
    let stats: Vec<ThreadStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let hist = hist.clone();
                let target_per_thread = target_qps as f64 / cfg.threads as f64;
                scope.spawn(move || {
                    drive_thread(tid, point_idx, addr, target_per_thread, cfg, &hist)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread"))
            .collect()
    });
    let client_allocs = alloc_count() - client_allocs_before;
    let (srv_allocs_after, srv_ops_after) = server.mark();
    let snap = hist.snapshot();
    let ops: u64 = stats.iter().map(|s| s.ops).sum();
    let srv_ops = (srv_ops_after - srv_ops_before).max(1);
    Point {
        target_qps,
        read_pct: cfg.read_pct,
        ops,
        batches: stats.iter().map(|s| s.batches).sum(),
        elapsed: cfg.duration,
        issued_ops: stats.iter().map(|s| s.issued_ops).sum(),
        committed_ops: stats.iter().map(|s| s.committed_ops).sum(),
        p50_us: snap.p50(),
        p95_us: snap.p95(),
        p99_us: snap.p99(),
        mean_us: snap.mean(),
        client_allocs_per_op: client_allocs as f64 / ops.max(1) as f64,
        server_allocs_per_op: (srv_allocs_after - srv_allocs_before) as f64 / srv_ops as f64,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    if std::env::args().any(|a| a == "--serve") {
        serve();
        return;
    }
    let _metrics = dpr_bench::metrics_dump();
    let cfg = Config::from_env();
    // 0 = uncapped: the closed-loop saturation point.
    let targets = env_list("DPR_NET_QPS", &[2_000, 8_000, 0]);

    let mut server = spawn_server();
    eprintln!(
        "netload: {} sessions x {} threads against {} shards at {}",
        cfg.sessions, cfg.threads, cfg.shards, server.addr
    );

    // The QPS matrix runs the configured mix; a trailing read-only
    // saturation point (YCSB-C style) exercises the zero-copy read path,
    // where the wire plane is allocation-free and the store's RCU append
    // cost is absent.
    let mut schedule: Vec<(u64, Config)> = targets.iter().map(|&t| (t, cfg.clone())).collect();
    if cfg.read_pct != 100 && std::env::var_os("DPR_NET_QPS").is_none() {
        let mut read_cfg = cfg.clone();
        read_cfg.read_pct = 100;
        schedule.push((0, read_cfg));
    }

    let mut points = Vec::new();
    for (i, (target, point_cfg)) in schedule.iter().enumerate() {
        let p = run_point(i, &mut server, *target, point_cfg);
        net_alloc_per_op().set((p.client_allocs_per_op * 1000.0) as i64);
        row(
            "netload",
            &[
                ("target_qps", p.target_qps.to_string()),
                ("read_pct", p.read_pct.to_string()),
                ("ops_per_sec", format!("{:.0}", p.ops_per_sec())),
                ("batches", p.batches.to_string()),
                ("issued_ops", p.issued_ops.to_string()),
                ("completed_ops", p.ops.to_string()),
                ("committed_ops", p.committed_ops.to_string()),
                ("p50_us", p.p50_us.to_string()),
                ("p95_us", p.p95_us.to_string()),
                ("p99_us", p.p99_us.to_string()),
                ("mean_us", format!("{:.0}", p.mean_us)),
                (
                    "client_allocs_per_op",
                    format!("{:.2}", p.client_allocs_per_op),
                ),
                (
                    "server_allocs_per_op",
                    format!("{:.2}", p.server_allocs_per_op),
                ),
            ],
        );
        points.push(p);
    }
    server.stop();

    let peak = points.iter().map(Point::ops_per_sec).fold(0.0f64, f64::max);
    row(
        "netload_summary",
        &[
            ("sessions", cfg.sessions.to_string()),
            ("shards", cfg.shards.to_string()),
            ("peak_ops_per_sec", format!("{peak:.0}")),
        ],
    );

    // JSON report for the checked-in BENCH_net.json.
    let json_path = std::env::var("DPR_NET_JSON").unwrap_or_else(|_| "BENCH_net.json".to_string());
    let mut json = String::from("{\n  \"bench\": \"netload\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"shards\": {}, \"sessions\": {}, \"driver_threads\": {}, \"window_batches\": {}, \"ops_per_batch\": {}, \"read_pct\": {}, \"point_secs\": {:.2}, \"host_cpus\": {}}},\n",
        cfg.shards,
        cfg.sessions,
        cfg.threads,
        cfg.window,
        cfg.batch,
        cfg.read_pct,
        cfg.duration.as_secs_f64(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"target_qps\": {}, \"read_pct\": {}, \"ops_per_sec\": {:.0}, \"batches\": {}, \"issued_ops\": {}, \"completed_ops\": {}, \"committed_ops\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"mean_us\": {:.0}, \"client_allocs_per_op\": {:.2}, \"server_allocs_per_op\": {:.2}}}{}\n",
            p.target_qps,
            p.read_pct,
            p.ops_per_sec(),
            p.batches,
            p.issued_ops,
            p.ops,
            p.committed_ops,
            p.p50_us,
            p.p95_us,
            p.p99_us,
            p.mean_us,
            p.client_allocs_per_op,
            p.server_allocs_per_op,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    let min_allocs = points
        .iter()
        .map(|p| p.client_allocs_per_op + p.server_allocs_per_op)
        .fold(f64::INFINITY, f64::min);
    json.push_str(&format!(
        "  \"summary\": {{\"sessions\": {}, \"shards\": {}, \"peak_ops_per_sec\": {peak:.0}, \"min_total_allocs_per_op\": {:.2}}}\n}}\n",
        cfg.sessions,
        cfg.shards,
        if min_allocs.is_finite() { min_allocs } else { 0.0 },
    ));
    let mut f = std::fs::File::create(&json_path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {json_path}");
}
