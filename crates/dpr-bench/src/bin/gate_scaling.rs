//! Gate scaling — server-side gate throughput vs. executor threads (§6).
//!
//! The paper's §6 requires the before/after batch hooks to be "implemented
//! scalably": they run on every batch, so any cross-thread serialization in
//! them becomes the cluster's throughput ceiling. This bench pits two gate
//! implementations against each other under an identical simulated executor
//! pipeline:
//!
//! * **legacy** — the pre-rewrite gate: one global `Mutex<BTreeMap<Version,
//!   BTreeSet<Token>>>` on the record path, and one metadata statement per
//!   commit report on the drain path (kept here, verbatim, as the baseline).
//! * **striped** — the current [`DprServer`]: lock-free striped max-per-shard
//!   accumulation plus one *grouped* `report_commits` (one metadata round
//!   trip) per drain.
//!
//! Each executor thread simulates batch arrival/execution with a short sleep
//! (`DPR_GATE_BATCH_US`, standing in for the store-side work that runs on
//! many cores in the paper's deployment), then runs the gate's after-hook. A
//! version seals every `DPR_GATE_SEAL_EVERY` batches; a pump thread drains
//! commit reports to a [`HybridFinder`] over a [`SimulatedSqlStore`] whose
//! per-statement latency (`DPR_GATE_SQL_US`) models the remote metadata
//! database. Executors stall (bounded backoff) once `DPR_GATE_WINDOW` sealed
//! versions await reporting — the commit-latency SLA that couples record
//! throughput to drain throughput, exactly the §3.4 metadata bottleneck.
//!
//! Output: one `gate` row per (implementation, thread-count) point and a
//! JSON report (`DPR_GATE_JSON`, default `BENCH_gate.json`) whose summary
//! holds the two acceptance numbers: throughput scaling 1→max threads per
//! gate, and metadata statements per committed version per gate.

use dpr_bench::point_duration;
use dpr_bench::util::{env_list, row};
use dpr_core::{Backoff, SessionId, ShardId, Token, Version, WorldLine};
use dpr_metadata::{MetadataStore, SimulatedSqlStore};
use libdpr::{BatchHeader, CommitDescriptor, DprFinder, DprServer, HybridFinder, StateObject};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Shard-0 state object for the pipeline: versions seal externally.
struct BenchSo {
    current: AtomicU64,
    pending: Mutex<Vec<CommitDescriptor>>,
}

impl BenchSo {
    fn new() -> Self {
        BenchSo {
            current: AtomicU64::new(1),
            pending: Mutex::new(Vec::new()),
        }
    }

    fn seal(&self) {
        let v = self.current.fetch_add(1, Ordering::AcqRel);
        self.pending.lock().push(CommitDescriptor {
            version: Version(v),
        });
    }
}

impl StateObject for BenchSo {
    fn shard(&self) -> ShardId {
        ShardId(0)
    }
    fn current_version(&self) -> Version {
        Version(self.current.load(Ordering::Acquire))
    }
    fn durable_version(&self) -> Version {
        Version::ZERO
    }
    fn request_commit(&self, _target: Option<Version>) -> bool {
        false
    }
    fn take_commits(&self) -> Vec<CommitDescriptor> {
        std::mem::take(&mut *self.pending.lock())
    }
    fn restore(&self, _version: Version) -> dpr_core::Result<()> {
        Ok(())
    }
}

/// The two gate implementations under test.
trait Gate: Send + Sync {
    fn record(&self, header: &BatchHeader, executed: Version);
    fn pump(&self, so: &BenchSo, finder: &dyn DprFinder) -> usize;
}

/// The pre-rewrite gate, kept as the measured baseline: every executor
/// funnels through one mutex-protected version-keyed map; every sealed
/// version costs one metadata round trip at report time.
struct LegacyGate {
    shard: ShardId,
    deps: Mutex<BTreeMap<Version, BTreeSet<Token>>>,
}

impl LegacyGate {
    fn new(shard: ShardId) -> Self {
        LegacyGate {
            shard,
            deps: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Gate for LegacyGate {
    fn record(&self, header: &BatchHeader, executed: Version) {
        if header.deps.is_empty() {
            return;
        }
        let mut deps = self.deps.lock();
        let set = deps.entry(executed).or_default();
        for d in &header.deps {
            if d.shard != self.shard && d.version > Version::ZERO {
                set.insert(*d);
            }
        }
    }

    fn pump(&self, so: &BenchSo, finder: &dyn DprFinder) -> usize {
        let commits = so.take_commits();
        let n = commits.len();
        for desc in commits {
            let dep_tokens: Vec<Token> = {
                let mut deps = self.deps.lock();
                let mut below = deps.split_off(&desc.version.next());
                std::mem::swap(&mut below, &mut deps);
                below.into_values().flatten().collect()
            };
            finder
                .report_commit(Token::new(self.shard, desc.version), dep_tokens)
                .expect("report");
        }
        n
    }
}

/// The current striped gate.
struct StripedGate(DprServer);

impl Gate for StripedGate {
    fn record(&self, header: &BatchHeader, executed: Version) {
        self.0.record_batch(header, executed);
    }

    fn pump(&self, so: &BenchSo, finder: &dyn DprFinder) -> usize {
        self.0.pump_commits(so, finder).expect("pump").len()
    }
}

struct Point {
    gate: &'static str,
    threads: u64,
    batches_per_sec: f64,
    versions_reported: u64,
    statements_per_version: f64,
}

#[allow(clippy::too_many_lines)]
fn run_point(gate_kind: &'static str, threads: u64, cfg: &Config) -> Point {
    let meta = Arc::new(SimulatedSqlStore::with_latency(Duration::from_micros(
        cfg.sql_us,
    )));
    meta.register_worker(ShardId(0)).expect("register");
    for s in 1..=cfg.dep_shards {
        meta.register_worker(ShardId(s)).expect("register");
    }
    let base_statements = meta.statement_count();
    let finder: Arc<dyn DprFinder> = Arc::new(HybridFinder::new(meta.clone()));
    let gate: Arc<dyn Gate> = match gate_kind {
        "legacy" => Arc::new(LegacyGate::new(ShardId(0))),
        _ => Arc::new(StripedGate(DprServer::new(ShardId(0)))),
    };
    let so = Arc::new(BenchSo::new());
    let stop = Arc::new(AtomicBool::new(false));
    let batches = Arc::new(AtomicU64::new(0));
    let sealed = Arc::new(AtomicU64::new(0));
    let reported = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..threads {
        let gate = gate.clone();
        let so = so.clone();
        let stop = stop.clone();
        let batches = batches.clone();
        let sealed = sealed.clone();
        let reported = reported.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut backoff = Backoff::new();
            while !stop.load(Ordering::Acquire) {
                // Commit-latency SLA: stall once the report backlog is deep.
                if sealed.load(Ordering::Acquire) - reported.load(Ordering::Acquire) >= cfg.window {
                    backoff.snooze();
                    continue;
                }
                backoff.reset();
                // Simulated batch arrival + store-side execution.
                if cfg.batch_us > 0 {
                    std::thread::sleep(Duration::from_micros(cfg.batch_us));
                }
                let executed = so.current_version();
                let n = batches.fetch_add(1, Ordering::AcqRel) + 1;
                let dep_shard = ShardId(1 + (t as u32 + n as u32) % cfg.dep_shards);
                let header = BatchHeader {
                    session: SessionId(t),
                    world_line: WorldLine(0),
                    version_lower_bound: Version::ZERO,
                    deps: vec![
                        Token::new(dep_shard, executed),
                        Token::new(ShardId(1 + n as u32 % cfg.dep_shards), executed),
                    ],
                    first_serial: 0,
                    op_count: 1,
                };
                gate.record(&header, executed);
                if n.is_multiple_of(cfg.seal_every) {
                    so.seal();
                    sealed.fetch_add(1, Ordering::AcqRel);
                }
            }
        }));
    }
    let pump = {
        let gate = gate.clone();
        let so = so.clone();
        let finder = finder.clone();
        let stop = stop.clone();
        let reported = reported.clone();
        std::thread::spawn(move || {
            let mut total = 0u64;
            while !stop.load(Ordering::Acquire) {
                let n = gate.pump(&so, finder.as_ref()) as u64;
                total += n;
                reported.fetch_add(n, Ordering::AcqRel);
                if n == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            total
        })
    };

    let started = Instant::now();
    std::thread::sleep(cfg.duration);
    let elapsed = started.elapsed();
    let recorded = batches.load(Ordering::Acquire);
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("executor");
    }
    let versions = pump.join().expect("pump");
    let statements = meta.statement_count() - base_statements;

    Point {
        gate: gate_kind,
        threads,
        batches_per_sec: recorded as f64 / elapsed.as_secs_f64(),
        versions_reported: versions,
        statements_per_version: if versions == 0 {
            f64::NAN
        } else {
            statements as f64 / versions as f64
        },
    }
}

#[derive(Clone)]
struct Config {
    duration: Duration,
    sql_us: u64,
    batch_us: u64,
    seal_every: u64,
    window: u64,
    dep_shards: u32,
}

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let threads = env_list("DPR_GATE_THREADS", &[1, 2, 4, 8]);
    let cfg = Config {
        duration: point_duration(),
        sql_us: env_u64("DPR_GATE_SQL_US", 2_000),
        batch_us: env_u64("DPR_GATE_BATCH_US", 50),
        seal_every: env_u64("DPR_GATE_SEAL_EVERY", 16),
        window: env_u64("DPR_GATE_WINDOW", 64),
        dep_shards: 4,
    };
    let mut points = Vec::new();
    for gate in ["legacy", "striped"] {
        for &t in &threads {
            let p = run_point(gate, t, &cfg);
            row(
                "gate",
                &[
                    ("impl", p.gate.to_string()),
                    ("threads", p.threads.to_string()),
                    ("batches_per_sec", format!("{:.0}", p.batches_per_sec)),
                    ("versions", p.versions_reported.to_string()),
                    (
                        "statements_per_version",
                        format!("{:.3}", p.statements_per_version),
                    ),
                ],
            );
            points.push(p);
        }
    }

    let scaling = |gate: &str| -> f64 {
        let of = |t: u64| {
            points
                .iter()
                .find(|p| p.gate == gate && p.threads == t)
                .map(|p| p.batches_per_sec)
        };
        let lo = threads.first().copied().unwrap_or(1);
        let hi = threads.last().copied().unwrap_or(1);
        match (of(lo), of(hi)) {
            (Some(a), Some(b)) if a > 0.0 => b / a,
            _ => f64::NAN,
        }
    };
    let spv = |gate: &str| -> f64 {
        let pts: Vec<f64> = points
            .iter()
            .filter(|p| p.gate == gate && p.statements_per_version.is_finite())
            .map(|p| p.statements_per_version)
            .collect();
        if pts.is_empty() {
            f64::NAN
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    };
    let legacy_scaling = scaling("legacy");
    let striped_scaling = scaling("striped");
    row(
        "gate_summary",
        &[
            ("legacy_scaling", format!("{legacy_scaling:.2}")),
            ("striped_scaling", format!("{striped_scaling:.2}")),
            ("legacy_stmts_per_version", format!("{:.3}", spv("legacy"))),
            (
                "striped_stmts_per_version",
                format!("{:.3}", spv("striped")),
            ),
        ],
    );

    // JSON report for the checked-in BENCH_gate.json.
    let json_path =
        std::env::var("DPR_GATE_JSON").unwrap_or_else(|_| "BENCH_gate.json".to_string());
    let mut json = String::from("{\n  \"bench\": \"gate_scaling\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"point_secs\": {:.2}, \"sql_us\": {}, \"batch_us\": {}, \"seal_every\": {}, \"window\": {}, \"dep_shards\": {}, \"host_cpus\": {}}},\n",
        cfg.duration.as_secs_f64(),
        cfg.sql_us,
        cfg.batch_us,
        cfg.seal_every,
        cfg.window,
        cfg.dep_shards,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"gate\": \"{}\", \"threads\": {}, \"batches_per_sec\": {:.0}, \"versions_reported\": {}, \"statements_per_version\": {:.3}}}{}\n",
            p.gate,
            p.threads,
            p.batches_per_sec,
            p.versions_reported,
            p.statements_per_version,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"summary\": {{\"threads_lo\": {}, \"threads_hi\": {}, \"legacy_scaling\": {:.2}, \"striped_scaling\": {:.2}, \"legacy_statements_per_version\": {:.3}, \"striped_statements_per_version\": {:.3}}}\n}}\n",
        threads.first().copied().unwrap_or(1),
        threads.last().copied().unwrap_or(1),
        legacy_scaling,
        striped_scaling,
        spv("legacy"),
        spv("striped"),
    ));
    let mut f = std::fs::File::create(&json_path).expect("create json");
    f.write_all(json.as_bytes()).expect("write json");
    eprintln!("wrote {json_path}");
}
