//! Allocation *attribution* probe: samples a backtrace on every Nth heap
//! allocation while driving netload-shaped traffic in-process, then prints
//! the top allocating stacks for an early ("fresh") and a late ("aged")
//! window. Built to chase allocation rates that grow with accumulated
//! store state, which a plain counter cannot localize.
//!
//! Run with debug info for useful symbols:
//! `cargo run --release --config 'profile.release.debug=1' -p dpr-bench --bin allocstacks`
//!
//! Diagnostic only — not part of the benchmark suite or the CI gate.

use dpr_cluster::{Cluster, ClusterConfig, ClusterOp, NetServer, NetServerConfig, PipelinedClient};
use dpr_core::{Key, SessionId, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::backtrace::Backtrace;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static SAMPLING: AtomicBool = AtomicBool::new(false);
const SAMPLE_EVERY: u64 = 512;

thread_local! {
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

fn stacks() -> &'static Mutex<HashMap<String, u64>> {
    static STACKS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Keep only the frames that name code in this workspace — enough to
/// attribute the allocation without megabytes of std frames.
fn compress(bt: &Backtrace) -> String {
    let full = format!("{bt}");
    let mut picked: Vec<&str> = Vec::new();
    for line in full.lines() {
        let t = line.trim();
        if t.contains("dpr_") || t.contains("libdpr") || t.contains("allocstacks") {
            if let Some(idx) = t.find(": ") {
                picked.push(&t[idx + 2..]);
            }
            if picked.len() >= 5 {
                break;
            }
        }
    }
    if picked.is_empty() {
        "<non-workspace>".to_owned()
    } else {
        picked.join(" <- ")
    }
}

fn on_alloc() {
    let n = ALLOCS.fetch_add(1, Ordering::Relaxed) + 1;
    if !SAMPLING.load(Ordering::Relaxed) || !n.is_multiple_of(SAMPLE_EVERY) {
        return;
    }
    IN_HOOK.with(|g| {
        if g.get() {
            return;
        }
        g.set(true);
        let bt = Backtrace::force_capture();
        let key = compress(&bt);
        if let Ok(mut map) = stacks().lock() {
            *map.entry(key).or_insert(0) += 1;
        }
        g.set(false);
    });
}

struct SamplingAlloc;

unsafe impl GlobalAlloc for SamplingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: SamplingAlloc = SamplingAlloc;

fn snapshot() -> HashMap<String, u64> {
    stacks().lock().map(|m| m.clone()).unwrap_or_default()
}

fn dump_diff(label: &str, before: &HashMap<String, u64>, after: &HashMap<String, u64>) {
    let mut rows: Vec<(u64, &str)> = after
        .iter()
        .map(|(k, v)| (v - before.get(k).copied().unwrap_or(0), k.as_str()))
        .filter(|(d, _)| *d > 0)
        .collect();
    rows.sort_unstable_by_key(|&(d, _)| std::cmp::Reverse(d));
    println!("== {label} (samples x{SAMPLE_EVERY} allocs) ==");
    for (count, stack) in rows.iter().take(20) {
        println!("{count:>8}  {stack}");
    }
    println!();
}

fn main() {
    let shards = 8usize;
    let cluster = Cluster::start(ClusterConfig {
        shards,
        validate_ownership: false,
        dedupe_window: 4096,
        checkpoint_interval: Some(Duration::from_millis(50)),
        finder_interval: Duration::from_millis(5),
        ..ClusterConfig::default()
    })
    .expect("start cluster");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = NetServer::start(
        cluster.workers().to_vec(),
        listener,
        NetServerConfig::default(),
    )
    .expect("start server");
    let addr = server.local_addr();
    let shard_ids: Vec<_> = cluster.workers().iter().map(|w| w.shard()).collect();

    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let mut drivers = Vec::new();
    for t in 0..4u64 {
        let stop = stop.clone();
        let shard_ids = shard_ids.clone();
        drivers.push(std::thread::spawn(move || {
            let mut client =
                PipelinedClient::connect(libdpr::DprClientSession::new(SessionId(1000 + t)), addr)
                    .expect("connect");
            let mut ops: Vec<ClusterOp> = Vec::with_capacity(8);
            let mut r = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let shard = shard_ids[(r % shard_ids.len() as u64) as usize];
                ops.clear();
                for i in 0..8u64 {
                    let key = Key::from_u64((r.wrapping_mul(31) + i * 7919) % 10_000);
                    // 50/50 read-write mix, like netload's default point.
                    ops.push(if (r + i).is_multiple_of(2) {
                        ClusterOp::Upsert(key, Value::from_u64(r))
                    } else {
                        ClusterOp::Read(key)
                    });
                }
                client.issue(shard, &ops).expect("issue");
                while client.inflight() >= 8 {
                    client
                        .poll_each(Duration::from_millis(1), |done| {
                            std::hint::black_box(done.result.is_ok());
                        })
                        .expect("poll");
                }
                r += 1;
            }
        }));
    }

    let rate_window = |secs: u64| {
        let before = ALLOCS.load(Ordering::Relaxed);
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_secs(secs));
        let rate = (ALLOCS.load(Ordering::Relaxed) - before) as f64 / t0.elapsed().as_secs_f64();
        rate as u64
    };

    // Fresh window: sample seconds 2-7 of the run.
    std::thread::sleep(Duration::from_secs(2));
    let base = snapshot();
    SAMPLING.store(true, Ordering::Relaxed);
    let fresh_rate = rate_window(5);
    let fresh = snapshot();
    SAMPLING.store(false, Ordering::Relaxed);
    println!("fresh allocs/sec: {fresh_rate}");
    dump_diff("fresh (t=2s..7s)", &base, &fresh);

    // Age the store, then sample an equally long late window.
    std::thread::sleep(Duration::from_secs(20));
    let mid = snapshot();
    SAMPLING.store(true, Ordering::Relaxed);
    let aged_rate = rate_window(5);
    let aged = snapshot();
    SAMPLING.store(false, Ordering::Relaxed);
    println!("aged allocs/sec:  {aged_rate}");
    dump_diff("aged (t=27s..32s)", &mid, &aged);

    stop.store(true, Ordering::Relaxed);
    for d in drivers {
        let _ = d.join();
    }
    server.shutdown();
    cluster.shutdown();
}
