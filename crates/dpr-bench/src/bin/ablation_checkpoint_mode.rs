//! Ablation — fold-over vs snapshot checkpoints.
//!
//! Fold-over checkpoints flush only the log delta since the last checkpoint
//! (the mode the paper evaluates); snapshot checkpoints serialize the full
//! live state every time. Fold-over's cost is proportional to the write
//! rate, snapshot's to the keyspace — the crossover is why FASTER defaults
//! to fold-over for frequent commits.

use dpr_bench::util::row;
use dpr_bench::{keyspace, point_duration};
use dpr_core::{CheckpointMode, Key, SessionId, Value};
use dpr_faster::{FasterConfig, FasterKv};
use dpr_storage::{MemBlobStore, MemLogDevice, StorageProfile};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn run(mode: CheckpointMode, keys: u64, duration: Duration) -> (f64, f64) {
    let kv = FasterKv::new(
        FasterConfig {
            index_buckets: 1 << 16,
            memory_budget_records: 1 << 24,
            auto_maintenance: true,
            checkpoint_mode: mode,
            strict_cpr: false,
            unflushed_limit_records: None,
            simulated_read_latency: None,
        },
        Arc::new(MemLogDevice::with_profile(StorageProfile::LocalSsd)),
        Arc::new(MemBlobStore::with_latency(
            StorageProfile::LocalSsd.latency(),
        )),
    );
    let session = kv.start_session(SessionId(1));
    // Preload the keyspace.
    for k in 0..keys {
        session
            .upsert(Key::from_u64(k), Value::from_u64(k))
            .unwrap();
    }
    let start = Instant::now();
    let mut ops = 0u64;
    let mut checkpoints = 0u64;
    let mut last_checkpoint = Instant::now();
    while start.elapsed() < duration {
        for i in 0..512u64 {
            session
                .upsert(Key::from_u64((ops + i) % keys), Value::from_u64(i))
                .unwrap();
        }
        ops += 512;
        if last_checkpoint.elapsed() > Duration::from_millis(50) {
            if kv.request_checkpoint(None) {
                checkpoints += 1;
            }
            last_checkpoint = Instant::now();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (ops as f64 / elapsed / 1e6, checkpoints as f64 / elapsed)
}

fn main() {
    let _metrics = dpr_bench::metrics_dump();
    let keys = keyspace();
    let duration = point_duration().max(Duration::from_secs(2));
    for (label, mode) in [
        ("fold-over", CheckpointMode::FoldOver),
        ("snapshot", CheckpointMode::Snapshot),
    ] {
        let (mops, cps) = run(mode, keys, duration);
        row(
            "ablation-checkpoint-mode",
            &[
                ("mode", label.to_string()),
                ("mops", format!("{mops:.4}")),
                ("checkpoints_per_s", format!("{cps:.1}")),
            ],
        );
    }
}
