//! Chaos campaign — deterministic fault injection with the online DPR
//! invariant checker (ISSUE: chaos harness; protocol §3/§4 invariants).
//!
//! Runs one or more rounds of [`dpr_chaos::run`]: a live D-FASTER cluster
//! under YCSB load while a seed-derived schedule injects worker crashes,
//! partitioned / slow / lossy links, checkpoint stalls, and membership
//! churn with key migration. Every round must finish with **zero**
//! invariant violations; the process exits nonzero otherwise.
//!
//! Flags (each with an env fallback):
//!
//! | flag         | env                | default           |
//! |--------------|--------------------|-------------------|
//! | `--seed N`   | `DPR_CHAOS_SEED`   | 0xD15EA5E         |
//! | `--secs S`   | `DPR_CHAOS_SECS`   | 4                 |
//! | `--events N` | `DPR_CHAOS_EVENTS` | 8                 |
//! | `--shards N` | `DPR_CHAOS_SHARDS` | 3                 |
//! | `--clients N`| `DPR_CHAOS_CLIENTS`| 2                 |
//! | `--rounds N` | `DPR_CHAOS_ROUNDS` | 3                 |
//! | `--out PATH` | `DPR_CHAOS_JSON`   | `BENCH_chaos.json`|
//!
//! Round `i` uses seed `seed + i`, so a campaign covers several distinct
//! schedules while staying fully reproducible.

use dpr_chaos::{ChaosConfig, ChaosReport};
use std::time::Duration;

fn arg_or_env(args: &[String], flag: &str, env: &str) -> Option<String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        return args.get(pos + 1).cloned();
    }
    std::env::var(env).ok()
}

fn num(args: &[String], flag: &str, env: &str, default: u64) -> u64 {
    arg_or_env(args, flag, env)
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = num(&args, "--seed", "DPR_CHAOS_SEED", 0xD15EA5E);
    let secs = num(&args, "--secs", "DPR_CHAOS_SECS", 4);
    let events = num(&args, "--events", "DPR_CHAOS_EVENTS", 8) as usize;
    let shards = num(&args, "--shards", "DPR_CHAOS_SHARDS", 3) as usize;
    let clients = num(&args, "--clients", "DPR_CHAOS_CLIENTS", 2) as usize;
    let rounds = num(&args, "--rounds", "DPR_CHAOS_ROUNDS", 3) as usize;
    let out = arg_or_env(&args, "--out", "DPR_CHAOS_JSON")
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());

    let mut reports: Vec<ChaosReport> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let config = ChaosConfig {
            seed: seed + round as u64,
            duration: Duration::from_secs(secs),
            shards,
            clients,
            events,
            ..ChaosConfig::default()
        };
        println!(
            "chaos round {}/{}: seed {:#x}, {}s, {} events, {} shards, {} clients",
            round + 1,
            rounds,
            config.seed,
            secs,
            events,
            shards,
            clients,
        );
        let report = match dpr_chaos::run(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("chaos round {} failed to run: {e}", round + 1);
                std::process::exit(2);
            }
        };
        println!(
            "  {} faults | {} recoveries (p50 {}ms) | availability {:.1}% | \
             {} ops completed | {} checks | {} violations",
            report.fault_log.len(),
            report.recovery_ms.len(),
            {
                let mut r = report.recovery_ms.clone();
                r.sort_unstable();
                r.get(r.len() / 2).copied().unwrap_or(0)
            },
            report.availability_pct(),
            report.completed,
            report.checks,
            report.violation_count,
        );
        for v in &report.violations {
            eprintln!("  VIOLATION: {v}");
        }
        reports.push(report);
    }

    // Campaign document: per-round reports plus a rollup.
    let total_violations: u64 = reports.iter().map(|r| r.violation_count).sum();
    let mut doc = String::with_capacity(4096);
    doc.push_str("{\n\"bench\": \"chaos_campaign\",\n");
    doc.push_str(&format!(
        "\"summary\": {{\"rounds\": {}, \"total_faults\": {}, \"total_recoveries\": {}, \
         \"total_completed_ops\": {}, \"total_checks\": {}, \"total_violations\": {}}},\n",
        reports.len(),
        reports.iter().map(|r| r.fault_log.len()).sum::<usize>(),
        reports.iter().map(|r| r.recovery_ms.len()).sum::<usize>(),
        reports.iter().map(|r| r.completed).sum::<u64>(),
        reports.iter().map(|r| r.checks).sum::<u64>(),
        total_violations,
    ));
    doc.push_str("\"rounds\": [\n");
    for (i, r) in reports.iter().enumerate() {
        doc.push_str(&r.to_json());
        if i + 1 < reports.len() {
            doc.push_str(",\n");
        }
    }
    doc.push_str("]\n}\n");
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out}");
    if total_violations > 0 {
        eprintln!("chaos campaign FAILED: {total_violations} invariant violations");
        std::process::exit(1);
    }
    println!("chaos campaign passed: zero invariant violations");
}
