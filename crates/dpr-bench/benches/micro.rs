//! Criterion microbenchmarks for the core data structures: hash index,
//! record log, record serialization, epoch protection, Zipfian generation,
//! latency histogram.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpr_core::{Key, LightEpoch, Value, Version};
use dpr_faster::record::Record;
use dpr_faster::{index::HashIndex, RecordLog};
use dpr_storage::MemLogDevice;
use dpr_ycsb::{LatencyHistogram, Zipfian};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash-index");
    g.throughput(Throughput::Elements(1));
    let idx = HashIndex::new(1 << 16);
    for i in 0..10_000u64 {
        let k = Key::from_u64(i);
        let head = idx.head(&k);
        let _ = idx.try_publish(&k, head, i);
    }
    let mut i = 0u64;
    g.bench_function("publish", |b| {
        b.iter(|| {
            let k = Key::from_u64(i % 10_000);
            let head = idx.head(&k);
            let _ = idx.try_publish(black_box(&k), head, i);
            i += 1;
        })
    });
    g.bench_function("lookup", |b| {
        b.iter(|| {
            let k = Key::from_u64(i % 10_000);
            black_box(idx.head(&k));
            i += 1;
        })
    });
    g.finish();
}

fn bench_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("record-log");
    g.throughput(Throughput::Elements(1));
    let log = RecordLog::new(Arc::new(MemLogDevice::null()), 1 << 24);
    let mut i = 0u64;
    g.bench_function("append", |b| {
        b.iter(|| {
            black_box(log.append(Key::from_u64(i), Value::from_u64(i), Version(1), false));
            i += 1;
        })
    });
    g.bench_function("get-resident", |b| {
        b.iter(|| {
            let addr = i % log.tail().max(1);
            black_box(log.get(addr).unwrap());
            i += 1;
        })
    });
    g.finish();
}

fn bench_record_serde(c: &mut Criterion) {
    let mut g = c.benchmark_group("record-serde");
    let rec = Record::new(Key::from_u64(7), Value::from_u64(9), Version(3), 42, false);
    let mut buf = Vec::with_capacity(64);
    g.bench_function("serialize", |b| {
        b.iter(|| {
            buf.clear();
            rec.serialize_into(black_box(&mut buf));
        })
    });
    rec.serialize_into(&mut buf);
    g.bench_function("deserialize", |b| {
        b.iter(|| black_box(Record::deserialize(&buf)))
    });
    g.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch");
    let epoch = LightEpoch::new(64);
    g.bench_function("protect-drop", |b| {
        b.iter(|| {
            let guard = epoch.protect();
            black_box(&guard);
        })
    });
    let guard = epoch.protect();
    g.bench_function("refresh", |b| b.iter(|| guard.refresh()));
    drop(guard);
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf");
    g.throughput(Throughput::Elements(1));
    let z = Zipfian::scrambled(1_000_000, 0.99);
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_function("next", |b| b.iter(|| black_box(z.next(&mut rng))));
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency-histogram");
    g.throughput(Throughput::Elements(1));
    let mut h = LatencyHistogram::new();
    let mut i = 0u64;
    g.bench_function("record", |b| {
        b.iter(|| {
            h.record(Duration::from_nanos(i % 10_000_000));
            i += 1;
        })
    });
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_index, bench_log, bench_record_serde, bench_epoch, bench_zipf, bench_histogram
);
criterion_main!(micro);
