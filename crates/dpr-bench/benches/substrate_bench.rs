//! Criterion benchmarks for the non-FASTER substrates: the Redis-like
//! store, the Cassandra-like commit-log store, the shared log, and the
//! storage devices.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpr_cassandra::{CassandraConfig, CassandraStore, CommitLogSync};
use dpr_core::{Key, ShardId, Value};
use dpr_log::{ConsumerId, SharedLog};
use dpr_redis::{Command, RedisConfig, RedisStore};
use dpr_storage::{LogDevice, MemBlobStore, MemLogDevice};
use std::sync::Arc;
use std::time::Duration;

fn bench_redis(c: &mut Criterion) {
    let mut g = c.benchmark_group("redis-store");
    g.throughput(Throughput::Elements(1));
    let mut store =
        RedisStore::new(RedisConfig::default(), Arc::new(MemBlobStore::new()), None).unwrap();
    for i in 0..100_000u64 {
        store
            .execute(&Command::Set(Key::from_u64(i), Value::from_u64(i)))
            .unwrap();
    }
    let mut i = 0u64;
    g.bench_function("set", |b| {
        b.iter(|| {
            store
                .execute(&Command::Set(
                    Key::from_u64(i % 100_000),
                    Value::from_u64(i),
                ))
                .unwrap();
            i += 1;
        })
    });
    g.bench_function("get", |b| {
        b.iter(|| {
            black_box(
                store
                    .execute(&Command::Get(Key::from_u64(i % 100_000)))
                    .unwrap(),
            );
            i += 1;
        })
    });
    g.finish();
}

fn bench_cassandra(c: &mut Criterion) {
    let mut g = c.benchmark_group("cassandra-store");
    g.throughput(Throughput::Elements(1));
    for (name, sync) in [
        ("write-off", CommitLogSync::Off),
        ("write-periodic", CommitLogSync::Periodic),
        ("write-group", CommitLogSync::Group),
    ] {
        let store = CassandraStore::new(CassandraConfig { sync }, Arc::new(MemLogDevice::null()));
        let mut i = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                store
                    .write(Key::from_u64(i % 100_000), Some(Value::from_u64(i)))
                    .unwrap();
                i += 1;
            })
        });
    }
    g.finish();
}

fn bench_shared_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("shared-log");
    g.throughput(Throughput::Elements(1));
    let log = SharedLog::new(
        ShardId(0),
        Arc::new(MemLogDevice::null()),
        Arc::new(MemBlobStore::new()),
    );
    let payload = Bytes::from_static(b"0123456789abcdef");
    g.bench_function("enqueue", |b| {
        b.iter(|| {
            black_box(log.enqueue(payload.clone()));
        })
    });
    let mut consumer = 0u64;
    g.bench_function("poll-16", |b| {
        b.iter(|| {
            consumer += 1;
            black_box(log.poll(ConsumerId(consumer), 16));
        })
    });
    g.finish();
}

fn bench_device(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem-log-device");
    let dev = MemLogDevice::null();
    let payload = [7u8; 64];
    g.throughput(Throughput::Bytes(64));
    g.bench_function("append-64B", |b| {
        b.iter(|| {
            black_box(dev.append(&payload).unwrap());
        })
    });
    let mut buf = [0u8; 64];
    let mut addr = 0u64;
    g.bench_function("read-64B", |b| {
        b.iter(|| {
            black_box(dev.read(addr % dev.tail().max(1), &mut buf).unwrap());
            addr += 64;
        })
    });
    g.finish();
}

criterion_group!(
    name = substrates;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_redis, bench_cassandra, bench_shared_log, bench_device
);
criterion_main!(substrates);
