//! Criterion benchmarks for the single-node FASTER-style store and the DPR
//! finder algorithms.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpr_core::{Key, SessionId, ShardId, Token, Value, Version};
use dpr_faster::{FasterConfig, FasterKv};
use dpr_metadata::{MetadataStore, SimulatedSqlStore};
use dpr_storage::{MemBlobStore, MemLogDevice};
use libdpr::{ApproximateFinder, DprFinder, ExactFinder, HybridFinder};
use std::sync::Arc;
use std::time::Duration;

fn store() -> Arc<FasterKv> {
    FasterKv::new(
        FasterConfig {
            index_buckets: 1 << 16,
            memory_budget_records: 1 << 24,
            auto_maintenance: true,
            ..FasterConfig::default()
        },
        Arc::new(MemLogDevice::null()),
        Arc::new(MemBlobStore::new()),
    )
}

fn bench_faster_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("faster");
    g.throughput(Throughput::Elements(1));
    let kv = store();
    let session = kv.start_session(SessionId(1));
    for i in 0..100_000u64 {
        session
            .upsert(Key::from_u64(i), Value::from_u64(i))
            .unwrap();
    }
    let mut i = 0u64;
    g.bench_function("upsert", |b| {
        b.iter(|| {
            session
                .upsert(Key::from_u64(i % 100_000), Value::from_u64(i))
                .unwrap();
            i += 1;
        })
    });
    g.bench_function("read", |b| {
        b.iter(|| {
            black_box(session.read(&Key::from_u64(i % 100_000)).unwrap());
            i += 1;
        })
    });
    g.bench_function("rmw", |b| {
        b.iter(|| {
            session
                .rmw(Key::from_u64(i % 100_000), |old| {
                    Value::from_u64(old.and_then(|v| v.as_u64()).unwrap_or(0) + 1)
                })
                .unwrap();
            i += 1;
        })
    });
    g.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("faster-checkpoint");
    g.sample_size(10);
    let kv = store();
    let session = kv.start_session(SessionId(1));
    g.bench_function("fold-over-1k-dirty", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                session
                    .upsert(Key::from_u64(i), Value::from_u64(i))
                    .unwrap();
            }
            let target = kv.durable_version().next();
            kv.request_checkpoint(None);
            assert!(kv.wait_for_durable(target, Duration::from_secs(10)));
        })
    });
    g.finish();
}

fn finder_setup(meta: &Arc<SimulatedSqlStore>, shards: u32) {
    for s in 0..shards {
        meta.register_worker(ShardId(s)).unwrap();
    }
}

fn bench_finders(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpr-finder");
    let shards = 8;
    type FinderMaker = Box<dyn Fn(Arc<SimulatedSqlStore>) -> Box<dyn DprFinder>>;
    let makers: Vec<(&str, FinderMaker)> = vec![
        (
            "exact",
            Box::new(|m| Box::new(ExactFinder::new(m)) as Box<dyn DprFinder>),
        ),
        (
            "approximate",
            Box::new(|m| Box::new(ApproximateFinder::new(m)) as Box<dyn DprFinder>),
        ),
        (
            "hybrid",
            Box::new(|m| Box::new(HybridFinder::new(m)) as Box<dyn DprFinder>),
        ),
    ];
    for (name, make) in makers {
        let meta = Arc::new(SimulatedSqlStore::new());
        finder_setup(&meta, shards);
        let finder = make(meta);
        let mut v = 1u64;
        g.bench_function(&format!("{name}-report+refresh"), |b| {
            b.iter(|| {
                for s in 0..shards {
                    finder
                        .report_commit(
                            Token::new(ShardId(s), Version(v)),
                            vec![Token::new(
                                ShardId((s + 1) % shards),
                                Version(v.saturating_sub(1)),
                            )],
                        )
                        .unwrap();
                }
                finder.refresh().unwrap();
                black_box(finder.current_cut().unwrap());
                v += 1;
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = store_benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = bench_faster_ops, bench_checkpoint, bench_finders
);
criterion_main!(store_benches);
