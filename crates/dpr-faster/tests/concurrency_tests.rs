//! Concurrency correctness under checkpoints: RMW atomicity, read
//! linearization against a monotone counter, and commit-point consistency
//! across racing sessions.

use dpr_core::{Key, SessionId, Value, Version};
use dpr_faster::{FasterConfig, FasterKv, OpOutcome};
use dpr_storage::{MemBlobStore, MemLogDevice};
use std::sync::Arc;
use std::time::Duration;

fn store() -> Arc<FasterKv> {
    FasterKv::new(
        FasterConfig {
            index_buckets: 1 << 10,
            memory_budget_records: 1 << 22,
            auto_maintenance: true,
            ..FasterConfig::default()
        },
        Arc::new(MemLogDevice::null()),
        Arc::new(MemBlobStore::new()),
    )
}

#[test]
fn rmw_increments_are_never_lost_across_threads_and_checkpoints() {
    let kv = store();
    let threads = 4u64;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let kv = kv.clone();
            scope.spawn(move || {
                let session = kv.start_session(SessionId(t));
                for _ in 0..per_thread {
                    session
                        .rmw(Key::from_u64(0), |old| {
                            Value::from_u64(old.and_then(|v| v.as_u64()).unwrap_or(0) + 1)
                        })
                        .unwrap();
                }
            });
        }
        // Checkpoints race the increments.
        let kv2 = kv.clone();
        scope.spawn(move || {
            for _ in 0..20 {
                kv2.request_checkpoint(None);
                std::thread::sleep(Duration::from_millis(2));
            }
        });
    });
    assert_eq!(
        kv.get(&Key::from_u64(0)).unwrap().unwrap().as_u64(),
        Some(threads * per_thread),
        "every RMW increment must survive checkpoint boundaries"
    );
}

#[test]
fn reads_of_a_monotone_counter_never_go_backwards() {
    // One writer increments a counter; one reader must observe a
    // non-decreasing sequence even across version boundaries.
    let kv = store();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        let writer_kv = kv.clone();
        let writer_stop = stop.clone();
        scope.spawn(move || {
            let session = writer_kv.start_session(SessionId(1));
            let mut v = 0u64;
            while !writer_stop.load(std::sync::atomic::Ordering::Acquire) {
                v += 1;
                session
                    .upsert(Key::from_u64(9), Value::from_u64(v))
                    .unwrap();
            }
        });
        let chk_kv = kv.clone();
        let chk_stop = stop.clone();
        scope.spawn(move || {
            while !chk_stop.load(std::sync::atomic::Ordering::Acquire) {
                chk_kv.request_checkpoint(None);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let reader_kv = kv.clone();
        scope.spawn(move || {
            let session = reader_kv.start_session(SessionId(2));
            let mut last = 0u64;
            for _ in 0..50_000 {
                if let OpOutcome::Read { value: Some(v), .. } =
                    session.read(&Key::from_u64(9)).unwrap()
                {
                    let now = v.as_u64().unwrap();
                    assert!(now >= last, "monotone counter regressed: {last} -> {now}");
                    last = now;
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
    });
}

#[test]
fn racing_sessions_get_consistent_commit_points() {
    // Two sessions race a checkpoint; each commit point must equal a serial
    // the session actually reached, and replaying that many ops of each
    // session against a model must match the recovered state.
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let kv = FasterKv::new(
        FasterConfig {
            index_buckets: 1 << 10,
            memory_budget_records: 1 << 22,
            auto_maintenance: true,
            ..FasterConfig::default()
        },
        device.clone(),
        blobs.clone(),
    );
    let per_session = 5_000u64;
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let kv = kv.clone();
            scope.spawn(move || {
                let session = kv.start_session(SessionId(t));
                for i in 0..per_session {
                    // Session t writes value i to its own key range.
                    session
                        .upsert(Key::from_u64(t * 100_000 + (i % 64)), Value::from_u64(i))
                        .unwrap();
                }
            });
        }
        let kv2 = kv.clone();
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            kv2.request_checkpoint(None);
        });
    });
    // Seal everything that's still volatile so the manifest is final.
    let target = kv.durable_version().next();
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(target, Duration::from_secs(10)));
    drop(kv);
    device.crash();
    let kv = FasterKv::recover(
        FasterConfig {
            index_buckets: 1 << 10,
            memory_budget_records: 1 << 22,
            auto_maintenance: false,
            ..FasterConfig::default()
        },
        device,
        blobs,
        None,
    )
    .unwrap();
    let manifest = kv.recovered_manifest().expect("manifest").clone();
    for t in 0..2u64 {
        let n = manifest
            .commit_points
            .get(&SessionId(t))
            .map(|cp| cp.serial)
            .unwrap_or(0);
        assert!(n <= per_session, "commit point bounded by issued ops");
        // Model: key (t, k) holds the LAST i < n with i % 64 == k.
        for k in 0..64u64 {
            let expect = if n == 0 {
                None
            } else {
                let last = n - 1;
                let candidate = last - ((last % 64 + 64 - k) % 64);
                Some(candidate).filter(|_| candidate < n)
            };
            let got = kv
                .get(&Key::from_u64(t * 100_000 + k))
                .unwrap()
                .and_then(|v| v.as_u64());
            assert_eq!(
                got, expect,
                "session {t} key {k}: commit point {n} must match recovered state"
            );
        }
    }
    assert_eq!(kv.durable_version(), Version(manifest.version.0));
}
