//! Behavioral tests for the FASTER-style store: checkpoints, rollback,
//! crash recovery, pending operations.

use dpr_core::{Key, SessionId, Value, Version};
use dpr_faster::{FasterConfig, FasterKv, OpOutcome, Phase};
use dpr_storage::{MemBlobStore, MemLogDevice};
use std::sync::Arc;
use std::time::Duration;

fn manual_config() -> FasterConfig {
    FasterConfig {
        index_buckets: 1 << 10,
        memory_budget_records: 1 << 20,
        auto_maintenance: false,
        ..FasterConfig::default()
    }
}

fn new_store() -> (Arc<FasterKv>, Arc<MemLogDevice>, Arc<MemBlobStore>) {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let kv = FasterKv::new(manual_config(), device.clone(), blobs.clone());
    (kv, device, blobs)
}

#[test]
fn upsert_read_delete_round_trip() {
    let (kv, _, _) = new_store();
    let s = kv.start_session(SessionId(1));
    s.upsert(Key::from_u64(1), Value::from_u64(10)).unwrap();
    match s.read(&Key::from_u64(1)).unwrap() {
        OpOutcome::Read { value, .. } => assert_eq!(value.unwrap().as_u64(), Some(10)),
        other => panic!("unexpected {other:?}"),
    }
    s.upsert(Key::from_u64(1), Value::from_u64(20)).unwrap();
    match s.read(&Key::from_u64(1)).unwrap() {
        OpOutcome::Read { value, .. } => assert_eq!(value.unwrap().as_u64(), Some(20)),
        other => panic!("unexpected {other:?}"),
    }
    s.delete(Key::from_u64(1)).unwrap();
    match s.read(&Key::from_u64(1)).unwrap() {
        OpOutcome::Read { value, .. } => assert!(value.is_none()),
        other => panic!("unexpected {other:?}"),
    }
    // Absent key.
    match s.read(&Key::from_u64(999)).unwrap() {
        OpOutcome::Read { value, .. } => assert!(value.is_none()),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn rmw_counter_accumulates() {
    let (kv, _, _) = new_store();
    let s = kv.start_session(SessionId(1));
    for _ in 0..10 {
        s.rmw(Key::from_u64(5), |old| {
            Value::from_u64(old.and_then(|v| v.as_u64()).unwrap_or(0) + 1)
        })
        .unwrap();
    }
    match s.read(&Key::from_u64(5)).unwrap() {
        OpOutcome::Read { value, .. } => assert_eq!(value.unwrap().as_u64(), Some(10)),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn checkpoint_commits_version_and_captures_session_serials() {
    let (kv, _, _) = new_store();
    let s = kv.start_session(SessionId(7));
    for i in 0..5u64 {
        s.upsert(Key::from_u64(i), Value::from_u64(i)).unwrap();
    }
    assert_eq!(kv.durable_version(), Version::ZERO);
    assert!(kv.request_checkpoint(None));
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(5)));
    assert_eq!(kv.durable_version(), Version(1));
    assert_eq!(kv.current_version(), Version(2));
    let infos = kv.take_completed_checkpoints();
    assert_eq!(infos.len(), 1);
    assert_eq!(infos[0].version, Version(1));
    let cp = &infos[0].commit_points[&SessionId(7)];
    assert_eq!(cp.serial, 5, "all 5 ops inside version 1");
    assert!(cp.exceptions.is_empty());
}

#[test]
fn duplicate_checkpoint_requests_are_rejected() {
    let (kv, _, _) = new_store();
    assert!(kv.request_checkpoint(None));
    assert!(!kv.request_checkpoint(None), "one already queued");
}

#[test]
fn ops_after_boundary_are_in_next_version() {
    let (kv, _, _) = new_store();
    let s = kv.start_session(SessionId(1));
    let before = s.upsert(Key::from_u64(1), Value::from_u64(1)).unwrap();
    assert_eq!(before.version(), Some(Version(1)));
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(5)));
    let after = s.upsert(Key::from_u64(2), Value::from_u64(2)).unwrap();
    assert_eq!(after.version(), Some(Version(2)));
}

#[test]
fn checkpoint_fast_forward_reaches_target_version() {
    let (kv, _, _) = new_store();
    kv.request_checkpoint(Some(Version(10)));
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(5)));
    assert_eq!(
        kv.current_version(),
        Version(10),
        "fast-forwarded past 2..9"
    );
    let s = kv.start_session(SessionId(1));
    let out = s.upsert(Key::from_u64(1), Value::from_u64(1)).unwrap();
    assert_eq!(out.version(), Some(Version(10)));
}

#[test]
fn crash_recovery_restores_committed_prefix_only() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    {
        let kv = FasterKv::new(manual_config(), device.clone(), blobs.clone());
        let s = kv.start_session(SessionId(1));
        for i in 0..20u64 {
            s.upsert(Key::from_u64(i), Value::from_u64(i)).unwrap();
        }
        kv.request_checkpoint(None);
        assert!(kv.wait_for_durable(Version(1), Duration::from_secs(5)));
        // Uncommitted writes in version 2 — should vanish on crash.
        for i in 0..20u64 {
            s.upsert(Key::from_u64(i), Value::from_u64(i + 1000))
                .unwrap();
        }
        s.upsert(Key::from_u64(777), Value::from_u64(777)).unwrap();
    }
    device.crash();
    let kv = FasterKv::recover(manual_config(), device, blobs, None).unwrap();
    assert_eq!(kv.durable_version(), Version(1));
    for i in 0..20u64 {
        let v = kv.get(&Key::from_u64(i)).unwrap().unwrap();
        assert_eq!(v.as_u64(), Some(i), "committed value for key {i}");
    }
    assert!(
        kv.get(&Key::from_u64(777)).unwrap().is_none(),
        "v2 write lost"
    );
    // The recovered store keeps working.
    let s = kv.start_session(SessionId(2));
    s.upsert(Key::from_u64(777), Value::from_u64(1)).unwrap();
    assert!(kv.get(&Key::from_u64(777)).unwrap().is_some());
}

#[test]
fn recovery_of_empty_store_is_empty() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let kv = FasterKv::recover(manual_config(), device, blobs, None).unwrap();
    assert_eq!(kv.durable_version(), Version::ZERO);
    assert!(kv.get(&Key::from_u64(1)).unwrap().is_none());
}

#[test]
fn rollback_discards_versions_above_safe_point() {
    let (kv, _, _) = new_store();
    let s = kv.start_session(SessionId(1));
    for i in 0..10u64 {
        s.upsert(Key::from_u64(i), Value::from_u64(i)).unwrap();
    }
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(5)));
    // Version-2 writes that will be rolled back.
    for i in 0..10u64 {
        s.upsert(Key::from_u64(i), Value::from_u64(i + 500))
            .unwrap();
    }
    s.upsert(Key::from_u64(42), Value::from_u64(42)).unwrap();
    kv.request_rollback(Version(1));
    // Drive the rollback machine: Throw needs the session to observe.
    for _ in 0..100 {
        kv.tick();
        s.refresh();
        if kv.current_phase() == Phase::Rest && kv.current_version() == Version(3) {
            break;
        }
    }
    assert_eq!(kv.current_phase(), Phase::Rest);
    assert_eq!(kv.current_version(), Version(3), "ops resume in v+1");
    // Rolled-back values invisible; version-1 values restored.
    for i in 0..10u64 {
        match s.read(&Key::from_u64(i)).unwrap() {
            OpOutcome::Read { value, .. } => {
                assert_eq!(value.unwrap().as_u64(), Some(i), "key {i} back to v1")
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    match s.read(&Key::from_u64(42)).unwrap() {
        OpOutcome::Read { value, .. } => assert!(value.is_none(), "v2-only key erased"),
        other => panic!("unexpected {other:?}"),
    }
    // New writes post-rollback are visible.
    s.upsert(Key::from_u64(42), Value::from_u64(4242)).unwrap();
    match s.read(&Key::from_u64(42)).unwrap() {
        OpOutcome::Read { value, .. } => assert_eq!(value.unwrap().as_u64(), Some(4242)),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn rollback_then_checkpoint_then_crash_recovery() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    {
        let kv = FasterKv::new(manual_config(), device.clone(), blobs.clone());
        let s = kv.start_session(SessionId(1));
        s.upsert(Key::from_u64(1), Value::from_u64(1)).unwrap();
        kv.request_checkpoint(None);
        assert!(kv.wait_for_durable(Version(1), Duration::from_secs(5)));
        s.upsert(Key::from_u64(1), Value::from_u64(2)).unwrap(); // v2, doomed
        kv.request_rollback(Version(1));
        for _ in 0..100 {
            kv.tick();
            s.refresh();
            if kv.current_phase() == Phase::Rest && kv.current_version() == Version(3) {
                break;
            }
        }
        s.upsert(Key::from_u64(2), Value::from_u64(3)).unwrap(); // v3
        kv.request_checkpoint(None);
        assert!(kv.wait_for_durable(Version(3), Duration::from_secs(5)));
    }
    device.crash();
    let kv = FasterKv::recover(manual_config(), device, blobs, None).unwrap();
    assert_eq!(kv.durable_version(), Version(3));
    assert_eq!(
        kv.get(&Key::from_u64(1)).unwrap().unwrap().as_u64(),
        Some(1),
        "purged v2 write must not resurrect"
    );
    assert_eq!(
        kv.get(&Key::from_u64(2)).unwrap().unwrap().as_u64(),
        Some(3)
    );
}

#[test]
fn pending_read_resolves_from_device_after_eviction() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let config = FasterConfig {
        index_buckets: 1 << 10,
        memory_budget_records: 0, // floor is 2 pages = 8192 records
        auto_maintenance: false,
        ..FasterConfig::default()
    };
    let kv = FasterKv::new(config, device, blobs);
    let s = kv.start_session(SessionId(1));
    // Write enough records to overflow the memory budget several times.
    let n = 40_000u64;
    for i in 0..n {
        s.upsert(Key::from_u64(i), Value::from_u64(i)).unwrap();
    }
    // Seal and flush so eviction can happen, then evict.
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(30)));
    kv.force_evict();
    // Old keys now live on the device.
    let mut pending = 0;
    let mut direct = 0;
    for i in 0..100u64 {
        match s.read(&Key::from_u64(i)).unwrap() {
            OpOutcome::Pending(_) => pending += 1,
            OpOutcome::Read { value, .. } => {
                assert_eq!(value.unwrap().as_u64(), Some(i));
                direct += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(
        pending > 0,
        "expected evicted keys to go pending (direct={direct})"
    );
    let done = s.complete_pending().unwrap();
    assert_eq!(done.len(), pending);
    for c in &done {
        assert!(!c.lost);
        assert!(c.value.is_some());
    }
}

#[test]
fn commit_point_exceptions_include_outstanding_pendings() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let config = FasterConfig {
        index_buckets: 1 << 10,
        memory_budget_records: 0,
        auto_maintenance: false,
        ..FasterConfig::default()
    };
    let kv = FasterKv::new(config, device, blobs);
    let s = kv.start_session(SessionId(3));
    for i in 0..40_000u64 {
        s.upsert(Key::from_u64(i), Value::from_u64(i)).unwrap();
    }
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(30)));
    kv.force_evict();
    // Issue reads that go pending, then checkpoint with them outstanding.
    let mut pending_serials = Vec::new();
    for i in 0..50u64 {
        if let OpOutcome::Pending(t) = s.read(&Key::from_u64(i)).unwrap() {
            pending_serials.push(t.serial);
        }
    }
    assert!(!pending_serials.is_empty());
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(2), Duration::from_secs(30)));
    let infos = kv.take_completed_checkpoints();
    let cp = &infos.last().unwrap().commit_points[&SessionId(3)];
    for serial in &pending_serials {
        assert!(
            cp.exceptions.contains(serial),
            "pending serial {serial} must be excepted from the commit"
        );
    }
    // Relaxed CPR: the session can still resolve them afterwards.
    let done = s.complete_pending().unwrap();
    assert_eq!(done.len(), pending_serials.len());
}

#[test]
fn concurrent_sessions_with_checkpoints_under_load() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let config = FasterConfig {
        index_buckets: 1 << 12,
        memory_budget_records: 1 << 22,
        auto_maintenance: true,
        ..FasterConfig::default()
    };
    let kv = FasterKv::new(config, device, blobs);
    let threads = 4;
    let ops_per_thread = 20_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let kv = kv.clone();
            scope.spawn(move || {
                let s = kv.start_session(SessionId(t));
                for i in 0..ops_per_thread {
                    let key = Key::from_u64((t * ops_per_thread + i) % 1000);
                    if i % 2 == 0 {
                        s.upsert(key, Value::from_u64(i)).unwrap();
                    } else {
                        s.read(&key).unwrap();
                    }
                }
            });
        }
        // Trigger checkpoints while the workers run.
        let kv2 = kv.clone();
        scope.spawn(move || {
            for _ in 0..5 {
                kv2.request_checkpoint(None);
                std::thread::sleep(Duration::from_millis(5));
            }
        });
    });
    // Let the last checkpoint finish.
    let target = kv.durable_version().next();
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(target, Duration::from_secs(10)));
    assert!(kv.durable_version() >= Version(1));
}

#[test]
fn restore_to_earlier_checkpoint_after_restart() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    {
        let kv = FasterKv::new(manual_config(), device.clone(), blobs.clone());
        let s = kv.start_session(SessionId(1));
        s.upsert(Key::from_u64(1), Value::from_u64(1)).unwrap();
        kv.request_checkpoint(None);
        assert!(kv.wait_for_durable(Version(1), Duration::from_secs(5)));
        s.upsert(Key::from_u64(1), Value::from_u64(2)).unwrap();
        kv.request_checkpoint(None);
        assert!(kv.wait_for_durable(Version(2), Duration::from_secs(5)));
    }
    // Restore(token v1): the DPR cut said v1, even though v2 is durable.
    let kv = FasterKv::recover(manual_config(), device, blobs, Some(Version(1))).unwrap();
    assert_eq!(kv.durable_version(), Version(1));
    assert_eq!(
        kv.get(&Key::from_u64(1)).unwrap().unwrap().as_u64(),
        Some(1)
    );
}
