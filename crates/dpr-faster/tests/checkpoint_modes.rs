//! Snapshot-mode checkpoints, strict CPR, and DPR-tied log garbage
//! collection.

use dpr_core::{CheckpointMode, Key, SessionId, Value, Version};
use dpr_faster::{FasterConfig, FasterKv, OpOutcome};
use dpr_storage::{MemBlobStore, MemLogDevice};
use std::sync::Arc;
use std::time::Duration;

fn snapshot_config() -> FasterConfig {
    FasterConfig {
        index_buckets: 1 << 10,
        memory_budget_records: 1 << 20,
        auto_maintenance: false,
        checkpoint_mode: CheckpointMode::Snapshot,
        strict_cpr: false,
        unflushed_limit_records: None,
        simulated_read_latency: None,
    }
}

#[test]
fn snapshot_checkpoint_recovers_exact_state() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    {
        let kv = FasterKv::new(snapshot_config(), device.clone(), blobs.clone());
        let s = kv.start_session(SessionId(1));
        for i in 0..50u64 {
            s.upsert(Key::from_u64(i), Value::from_u64(i)).unwrap();
        }
        s.delete(Key::from_u64(7)).unwrap();
        kv.request_checkpoint(None);
        assert!(kv.wait_for_durable(Version(1), Duration::from_secs(10)));
        // Uncommitted era.
        s.upsert(Key::from_u64(0), Value::from_u64(999)).unwrap();
    }
    device.crash();
    let kv = FasterKv::recover(snapshot_config(), device, blobs, None).unwrap();
    assert_eq!(kv.durable_version(), Version(1));
    assert_eq!(
        kv.get(&Key::from_u64(0)).unwrap().unwrap().as_u64(),
        Some(0)
    );
    assert!(
        kv.get(&Key::from_u64(7)).unwrap().is_none(),
        "delete captured"
    );
    assert_eq!(
        kv.get(&Key::from_u64(49)).unwrap().unwrap().as_u64(),
        Some(49)
    );
}

#[test]
fn snapshot_recovery_then_foldover_checkpoint_then_crash() {
    // The mixed sequence: snapshot checkpoint → crash → recover → more
    // writes → fold-over checkpoint → crash → recover. Exercises the
    // device-scan-base logic.
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    {
        let kv = FasterKv::new(snapshot_config(), device.clone(), blobs.clone());
        let s = kv.start_session(SessionId(1));
        s.upsert(Key::from_u64(1), Value::from_u64(1)).unwrap();
        kv.request_checkpoint(None);
        assert!(kv.wait_for_durable(Version(1), Duration::from_secs(10)));
    }
    device.crash();
    // Recover with FOLD-OVER config from the snapshot manifest, write more,
    // fold-over checkpoint.
    let foldover = FasterConfig {
        checkpoint_mode: CheckpointMode::FoldOver,
        ..snapshot_config()
    };
    {
        let kv = FasterKv::recover(foldover.clone(), device.clone(), blobs.clone(), None).unwrap();
        let s = kv.start_session(SessionId(2));
        s.upsert(Key::from_u64(2), Value::from_u64(2)).unwrap();
        kv.request_checkpoint(None);
        assert!(kv.wait_for_durable(Version(2), Duration::from_secs(10)));
    }
    device.crash();
    let kv = FasterKv::recover(foldover, device, blobs, None).unwrap();
    assert_eq!(kv.durable_version(), Version(2));
    assert_eq!(
        kv.get(&Key::from_u64(1)).unwrap().unwrap().as_u64(),
        Some(1)
    );
    assert_eq!(
        kv.get(&Key::from_u64(2)).unwrap().unwrap().as_u64(),
        Some(2)
    );
}

#[test]
fn gc_truncates_device_below_snapshot_checkpoint() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let kv = FasterKv::new(snapshot_config(), device.clone(), blobs.clone());
    let s = kv.start_session(SessionId(1));
    for i in 0..20_000u64 {
        s.upsert(Key::from_u64(i % 500), Value::from_u64(i))
            .unwrap();
    }
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(10)));
    // Evict everything so the GC precondition (records off-memory) holds:
    // first the log must be flushed (the snapshot itself does not flush).
    // Another checkpoint in fold-over... instead use force paths:
    let head_before = kv.force_evict();
    // Without flushed records, eviction may be 0; flush happens lazily via
    // fold-over — run a second snapshot checkpoint and force flush through
    // ticks.
    let _ = head_before;
    for i in 0..1000u64 {
        s.upsert(Key::from_u64(i % 500), Value::from_u64(i))
            .unwrap();
    }
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(2), Duration::from_secs(10)));
    // GC below the latest snapshot-covered checkpoint.
    let result = kv.collect_garbage(Version(1)).unwrap();
    // Either nothing was evictable yet (None) or the device was truncated;
    // in both cases recovery from the latest snapshot must still work.
    let _ = result;
    drop(s);
    device.crash();
    let kv = FasterKv::recover(snapshot_config(), device, blobs, None).unwrap();
    assert!(kv.durable_version() >= Version(1));
    assert!(kv.get(&Key::from_u64(100)).unwrap().is_some());
}

#[test]
fn gc_refuses_foldover_checkpoints_and_future_versions() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let config = FasterConfig {
        index_buckets: 1 << 10,
        memory_budget_records: 1 << 20,
        auto_maintenance: false,
        checkpoint_mode: CheckpointMode::FoldOver,
        strict_cpr: false,
        unflushed_limit_records: None,
        simulated_read_latency: None,
    };
    let kv = FasterKv::new(config, device, blobs);
    let s = kv.start_session(SessionId(1));
    s.upsert(Key::from_u64(1), Value::from_u64(1)).unwrap();
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(10)));
    // Fold-over checkpoints never allow truncation (the log IS the state).
    assert_eq!(kv.collect_garbage(Version(1)).unwrap(), None);
    // GC beyond the durable version is an error.
    assert!(kv.collect_garbage(Version(9)).is_err());
}

#[test]
fn strict_cpr_never_returns_pending() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let config = FasterConfig {
        index_buckets: 1 << 10,
        memory_budget_records: 0, // tiny: floor 2 pages
        auto_maintenance: false,
        checkpoint_mode: CheckpointMode::FoldOver,
        strict_cpr: true,
        unflushed_limit_records: None,
        simulated_read_latency: None,
    };
    let kv = FasterKv::new(config, device, blobs);
    let s = kv.start_session(SessionId(1));
    let n = 40_000u64;
    for i in 0..n {
        s.upsert(Key::from_u64(i), Value::from_u64(i)).unwrap();
    }
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(1), Duration::from_secs(30)));
    kv.force_evict();
    // Reads and RMWs on evicted keys resolve inline under strict CPR.
    for i in 0..100u64 {
        match s.read(&Key::from_u64(i)).unwrap() {
            OpOutcome::Read { value, .. } => {
                assert_eq!(value.unwrap().as_u64(), Some(i));
            }
            other => panic!("strict CPR must not go pending: {other:?}"),
        }
        match s
            .rmw(Key::from_u64(i), |old| {
                Value::from_u64(old.and_then(|v| v.as_u64()).unwrap_or(0) + 1)
            })
            .unwrap()
        {
            OpOutcome::Mutated { .. } => {}
            other => panic!("strict CPR must not go pending: {other:?}"),
        }
    }
    // And no exception lists: checkpoint commit points are clean.
    kv.request_checkpoint(None);
    assert!(kv.wait_for_durable(Version(2), Duration::from_secs(30)));
    for info in kv.take_completed_checkpoints() {
        for cp in info.commit_points.values() {
            assert!(cp.exceptions.is_empty(), "strict CPR has no exceptions");
        }
    }
}
