//! Property tests on the HybridLog: under random interleavings of appends,
//! seals, flushes, evictions and device crashes, every committed record is
//! always readable (resident or via the device) and equals what was
//! written.

use dpr_core::{Key, Value, Version};
use dpr_faster::log::RecordRef;
use dpr_faster::RecordLog;
use dpr_storage::MemLogDevice;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Action {
    Append(u8),
    SealAndFlush,
    Evict,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        6 => (0..64u8).prop_map(Action::Append),
        1 => Just(Action::SealAndFlush),
        1 => Just(Action::Evict),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_record_readable_under_random_maintenance(
        actions in prop::collection::vec(action_strategy(), 1..200)
    ) {
        let device = Arc::new(MemLogDevice::null());
        let log = RecordLog::new(device, 0); // min budget: 2 pages
        let mut model: Vec<u64> = Vec::new(); // addr -> value (dense)
        for a in &actions {
            match a {
                Action::Append(v) => {
                    let rec = log.append(
                        Key::from_u64(model.len() as u64),
                        Value::from_u64(u64::from(*v)),
                        Version(1),
                        false,
                    );
                    prop_assert_eq!(rec.address(), model.len() as u64);
                    model.push(u64::from(*v));
                }
                Action::SealAndFlush => {
                    let until = log.seal_to_tail();
                    log.flush_until(until).unwrap();
                }
                Action::Evict => {
                    log.maybe_evict();
                }
            }
        }
        // Every address must be readable with the right contents, resident
        // or not.
        for (addr, &expected) in model.iter().enumerate() {
            let addr = addr as u64;
            let value = match log.get(addr).unwrap() {
                RecordRef::Resident(r) => r.read_value(),
                RecordRef::OnDisk => log.read_from_device(addr).unwrap().read_value(),
            };
            prop_assert_eq!(value.as_u64(), Some(expected), "addr {}", addr);
        }
        // Invariants on the region pointers.
        prop_assert!(log.head() <= log.flushed() || log.flushed() == 0);
        prop_assert!(log.flushed() <= log.tail());
        prop_assert!(log.read_only() <= log.tail());
    }

    #[test]
    fn crash_preserves_flushed_prefix_exactly(
        n_before in 1usize..500,
        n_after in 0usize..200,
    ) {
        let device = Arc::new(MemLogDevice::null());
        {
            let log = RecordLog::new(device.clone(), 1 << 20);
            for i in 0..n_before as u64 {
                log.append(Key::from_u64(i), Value::from_u64(i * 3), Version(1), false);
            }
            log.seal_to_tail();
            log.flush_until(n_before as u64).unwrap();
            // Unflushed suffix.
            for i in 0..n_after as u64 {
                log.append(Key::from_u64(i), Value::from_u64(999), Version(2), false);
            }
        }
        device.crash();
        let (log, recs) = RecordLog::recover(
            device,
            1 << 20,
            u64::MAX >> 8,
            Version(9),
            &[],
            0,
        ).unwrap();
        prop_assert_eq!(recs.len(), n_before, "exactly the flushed prefix");
        prop_assert_eq!(log.tail(), n_before as u64);
        for (i, rec) in recs.iter().enumerate() {
            prop_assert_eq!(rec.read_value().as_u64(), Some(i as u64 * 3));
        }
    }
}

#[test]
fn device_gc_frees_space_and_later_reads_fail_cleanly() {
    let device = Arc::new(MemLogDevice::null());
    let log = RecordLog::new(device.clone(), 0);
    let n = 3 * 4096u64; // three pages
    for i in 0..n {
        log.append(Key::from_u64(i), Value::from_u64(i), Version(1), false);
    }
    log.seal_to_tail();
    log.flush_until(n).unwrap();
    log.evict_to(2 * 4096);
    assert_eq!(log.head(), 2 * 4096);
    // GC below one page boundary (must be ≤ head).
    assert!(log.truncate_device_below(3 * 4096).is_err(), "above head");
    let off = log.truncate_device_below(4096).unwrap();
    assert!(off > 0);
    // Records in [4096, head) still readable from device; below are gone.
    assert!(log.read_from_device(4096).is_ok());
    assert!(log.read_from_device(0).is_err());
    let _ = device;
}
