//! Checkpoint manifests and per-session commit points.

use dpr_core::{DprError, Result, SessionId, Version};
use dpr_storage::BlobStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a session's prefix stood when a version was sealed.
///
/// Under relaxed CPR (§5.4), the recovered prefix for a session is "all
/// operations with serial below `serial`, *except* those listed in
/// `exceptions`" — the PENDING operations that had been issued but not yet
/// resolved when the version boundary passed (Fig. 7's missing op 11).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommitPoint {
    /// Exclusive upper bound of committed serial numbers.
    pub serial: u64,
    /// Serial numbers below `serial` that are NOT included (unresolved
    /// PENDING operations at the boundary).
    pub exceptions: Vec<u64>,
}

/// Durable description of one checkpoint, stored in the blob store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Version this checkpoint commits.
    pub version: Version,
    /// Record address one past the last record included.
    pub until_address: u64,
    /// Version ranges `(lo, hi]` that have been rolled back and must never
    /// be recovered.
    pub purged: Vec<(Version, Version)>,
    /// Per-session commit points at this version boundary.
    pub commit_points: BTreeMap<SessionId, CommitPoint>,
    /// For snapshot-mode checkpoints: the blob holding the full state image
    /// (fold-over checkpoints recover from the log instead).
    #[serde(default)]
    pub snapshot_blob: Option<String>,
    /// Device offset at which this log incarnation's address 0 begins.
    #[serde(default)]
    pub device_scan_base: u64,
}

/// Magic prefix of the binary manifest encoding ("DPRM" + format version 1).
const MANIFEST_MAGIC: u32 = 0x4450_524D;
const MANIFEST_FORMAT: u16 = 1;

thread_local! {
    /// Reusable encode buffer: checkpoints complete on the worker tick
    /// thread at a steady cadence, and serde_json's per-write allocation
    /// churn showed up as the largest *background* allocation source in
    /// allocation profiles (see `dpr-bench --bin allocstacks`).
    static ENCODE_SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian reader over a manifest blob.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| DprError::Storage("manifest decode: truncated".into()))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl CheckpointManifest {
    /// Blob name for a version's manifest.
    #[must_use]
    pub fn blob_name(version: Version) -> String {
        format!("chkpt-{:020}", version.0)
    }

    /// Serialize into `out` using the compact binary format. Fixed-width
    /// little-endian fields; all collections are length-prefixed.
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, MANIFEST_MAGIC);
        put_u16(out, MANIFEST_FORMAT);
        put_u64(out, self.version.0);
        put_u64(out, self.until_address);
        put_u64(out, self.device_scan_base);
        match &self.snapshot_blob {
            Some(name) => {
                out.push(1);
                put_u32(out, name.len() as u32);
                out.extend_from_slice(name.as_bytes());
            }
            None => out.push(0),
        }
        put_u32(out, self.purged.len() as u32);
        for (lo, hi) in &self.purged {
            put_u64(out, lo.0);
            put_u64(out, hi.0);
        }
        put_u32(out, self.commit_points.len() as u32);
        for (session, cp) in &self.commit_points {
            put_u64(out, session.0);
            put_u64(out, cp.serial);
            put_u32(out, cp.exceptions.len() as u32);
            for &e in &cp.exceptions {
                put_u64(out, e);
            }
        }
    }

    fn decode(data: &[u8]) -> Result<Self> {
        let mut r = Reader { data, pos: 0 };
        if r.u32()? != MANIFEST_MAGIC {
            return Err(DprError::Storage("manifest decode: bad magic".into()));
        }
        let format = r.u16()?;
        if format != MANIFEST_FORMAT {
            return Err(DprError::Storage(format!(
                "manifest decode: unknown format {format}"
            )));
        }
        let version = Version(r.u64()?);
        let until_address = r.u64()?;
        let device_scan_base = r.u64()?;
        let snapshot_blob = match r.take(1)?[0] {
            0 => None,
            1 => {
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                Some(
                    std::str::from_utf8(bytes)
                        .map_err(|e| DprError::Storage(format!("manifest decode: {e}")))?
                        .to_owned(),
                )
            }
            b => {
                return Err(DprError::Storage(format!(
                    "manifest decode: bad snapshot tag {b}"
                )))
            }
        };
        let npurged = r.u32()? as usize;
        let mut purged = Vec::with_capacity(npurged.min(1024));
        for _ in 0..npurged {
            purged.push((Version(r.u64()?), Version(r.u64()?)));
        }
        let npoints = r.u32()? as usize;
        let mut commit_points = BTreeMap::new();
        for _ in 0..npoints {
            let session = SessionId(r.u64()?);
            let serial = r.u64()?;
            let nexc = r.u32()? as usize;
            let mut exceptions = Vec::with_capacity(nexc.min(1024));
            for _ in 0..nexc {
                exceptions.push(r.u64()?);
            }
            commit_points.insert(session, CommitPoint { serial, exceptions });
        }
        Ok(CheckpointManifest {
            version,
            until_address,
            purged,
            commit_points,
            snapshot_blob,
            device_scan_base,
        })
    }

    /// Persist the manifest.
    pub fn write_to(&self, blobs: &dyn BlobStore) -> Result<()> {
        ENCODE_SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            self.encode_into(&mut buf);
            blobs.put(&Self::blob_name(self.version), &buf)
        })
    }

    /// Load the manifest for `version`, if present. Blobs written by older
    /// builds (JSON) are still readable: anything without the binary magic
    /// falls back to the serde decoder.
    pub fn read_from(blobs: &dyn BlobStore, version: Version) -> Result<Option<Self>> {
        match blobs.get(&Self::blob_name(version))? {
            Some(data) => {
                let m = if data.len() >= 4 && data[..4] == MANIFEST_MAGIC.to_le_bytes() {
                    Self::decode(&data)?
                } else {
                    serde_json::from_slice(&data)
                        .map_err(|e| DprError::Storage(format!("manifest decode: {e}")))?
                };
                Ok(Some(m))
            }
            None => Ok(None),
        }
    }

    /// The latest manifest at or below `at_most` (used by `Restore`).
    pub fn latest(blobs: &dyn BlobStore, at_most: Option<Version>) -> Result<Option<Self>> {
        let names = blobs.list("chkpt-")?;
        for name in names.iter().rev() {
            let v: u64 = name
                .trim_start_matches("chkpt-")
                .parse()
                .map_err(|_| DprError::Storage(format!("bad manifest name {name}")))?;
            if at_most.is_none_or(|m| Version(v) <= m) {
                return Self::read_from(blobs, Version(v));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_storage::MemBlobStore;

    fn manifest(v: u64) -> CheckpointManifest {
        CheckpointManifest {
            version: Version(v),
            until_address: v * 100,
            purged: vec![(Version(1), Version(2))],
            commit_points: BTreeMap::from([(
                SessionId(1),
                CommitPoint {
                    serial: 10,
                    exceptions: vec![7],
                },
            )]),
            snapshot_blob: None,
            device_scan_base: 0,
        }
    }

    #[test]
    fn write_read_round_trip() {
        let blobs = MemBlobStore::new();
        let m = manifest(3);
        m.write_to(&blobs).unwrap();
        let back = CheckpointManifest::read_from(&blobs, Version(3))
            .unwrap()
            .unwrap();
        assert_eq!(back, m);
        assert!(CheckpointManifest::read_from(&blobs, Version(4))
            .unwrap()
            .is_none());
    }

    #[test]
    fn latest_finds_newest_at_or_below_bound() {
        let blobs = MemBlobStore::new();
        for v in [1, 3, 7] {
            manifest(v).write_to(&blobs).unwrap();
        }
        assert_eq!(
            CheckpointManifest::latest(&blobs, None)
                .unwrap()
                .unwrap()
                .version,
            Version(7)
        );
        assert_eq!(
            CheckpointManifest::latest(&blobs, Some(Version(5)))
                .unwrap()
                .unwrap()
                .version,
            Version(3)
        );
        assert!(CheckpointManifest::latest(&blobs, Some(Version::ZERO))
            .unwrap()
            .is_none());
    }

    #[test]
    fn blob_names_sort_numerically() {
        // Zero padding makes lexicographic order equal numeric order.
        assert!(
            CheckpointManifest::blob_name(Version(2)) < CheckpointManifest::blob_name(Version(10))
        );
    }
}
