//! Checkpoint manifests and per-session commit points.

use dpr_core::{DprError, Result, SessionId, Version};
use dpr_storage::BlobStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a session's prefix stood when a version was sealed.
///
/// Under relaxed CPR (§5.4), the recovered prefix for a session is "all
/// operations with serial below `serial`, *except* those listed in
/// `exceptions`" — the PENDING operations that had been issued but not yet
/// resolved when the version boundary passed (Fig. 7's missing op 11).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommitPoint {
    /// Exclusive upper bound of committed serial numbers.
    pub serial: u64,
    /// Serial numbers below `serial` that are NOT included (unresolved
    /// PENDING operations at the boundary).
    pub exceptions: Vec<u64>,
}

/// Durable description of one checkpoint, stored in the blob store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Version this checkpoint commits.
    pub version: Version,
    /// Record address one past the last record included.
    pub until_address: u64,
    /// Version ranges `(lo, hi]` that have been rolled back and must never
    /// be recovered.
    pub purged: Vec<(Version, Version)>,
    /// Per-session commit points at this version boundary.
    pub commit_points: BTreeMap<SessionId, CommitPoint>,
    /// For snapshot-mode checkpoints: the blob holding the full state image
    /// (fold-over checkpoints recover from the log instead).
    #[serde(default)]
    pub snapshot_blob: Option<String>,
    /// Device offset at which this log incarnation's address 0 begins.
    #[serde(default)]
    pub device_scan_base: u64,
}

impl CheckpointManifest {
    /// Blob name for a version's manifest.
    #[must_use]
    pub fn blob_name(version: Version) -> String {
        format!("chkpt-{:020}", version.0)
    }

    /// Persist the manifest.
    pub fn write_to(&self, blobs: &dyn BlobStore) -> Result<()> {
        let data = serde_json::to_vec(self)
            .map_err(|e| DprError::Storage(format!("manifest encode: {e}")))?;
        blobs.put(&Self::blob_name(self.version), &data)
    }

    /// Load the manifest for `version`, if present.
    pub fn read_from(blobs: &dyn BlobStore, version: Version) -> Result<Option<Self>> {
        match blobs.get(&Self::blob_name(version))? {
            Some(data) => {
                let m = serde_json::from_slice(&data)
                    .map_err(|e| DprError::Storage(format!("manifest decode: {e}")))?;
                Ok(Some(m))
            }
            None => Ok(None),
        }
    }

    /// The latest manifest at or below `at_most` (used by `Restore`).
    pub fn latest(blobs: &dyn BlobStore, at_most: Option<Version>) -> Result<Option<Self>> {
        let names = blobs.list("chkpt-")?;
        for name in names.iter().rev() {
            let v: u64 = name
                .trim_start_matches("chkpt-")
                .parse()
                .map_err(|_| DprError::Storage(format!("bad manifest name {name}")))?;
            if at_most.is_none_or(|m| Version(v) <= m) {
                return Self::read_from(blobs, Version(v));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_storage::MemBlobStore;

    fn manifest(v: u64) -> CheckpointManifest {
        CheckpointManifest {
            version: Version(v),
            until_address: v * 100,
            purged: vec![(Version(1), Version(2))],
            commit_points: BTreeMap::from([(
                SessionId(1),
                CommitPoint {
                    serial: 10,
                    exceptions: vec![7],
                },
            )]),
            snapshot_blob: None,
            device_scan_base: 0,
        }
    }

    #[test]
    fn write_read_round_trip() {
        let blobs = MemBlobStore::new();
        let m = manifest(3);
        m.write_to(&blobs).unwrap();
        let back = CheckpointManifest::read_from(&blobs, Version(3))
            .unwrap()
            .unwrap();
        assert_eq!(back, m);
        assert!(CheckpointManifest::read_from(&blobs, Version(4))
            .unwrap()
            .is_none());
    }

    #[test]
    fn latest_finds_newest_at_or_below_bound() {
        let blobs = MemBlobStore::new();
        for v in [1, 3, 7] {
            manifest(v).write_to(&blobs).unwrap();
        }
        assert_eq!(
            CheckpointManifest::latest(&blobs, None)
                .unwrap()
                .unwrap()
                .version,
            Version(7)
        );
        assert_eq!(
            CheckpointManifest::latest(&blobs, Some(Version(5)))
                .unwrap()
                .unwrap()
                .version,
            Version(3)
        );
        assert!(CheckpointManifest::latest(&blobs, Some(Version::ZERO))
            .unwrap()
            .is_none());
    }

    #[test]
    fn blob_names_sort_numerically() {
        // Zero padding makes lexicographic order equal numeric order.
        assert!(
            CheckpointManifest::blob_name(Version(2)) < CheckpointManifest::blob_name(Version(10))
        );
    }
}
