//! The lock-free hash index.
//!
//! A flat array of 2^k buckets, each an `AtomicU64` holding the logical
//! address of the most recent record hashed to it (offset by one so zero
//! means empty). Different keys that share a bucket simply share the chain —
//! lookups compare full keys while walking `prev` pointers, which is also
//! how rollback reads "travel back" past invalidated versions (§5.5: "one
//! can access all versions that are not garbage-collected by traversing the
//! hash chain").

use crate::record::NONE_ADDRESS;
use dpr_core::Key;
use std::sync::atomic::{AtomicU64, Ordering};

/// The hash index.
pub struct HashIndex {
    buckets: Box<[AtomicU64]>,
    mask: u64,
}

impl HashIndex {
    /// Create an index with at least `min_buckets` buckets (rounded up to a
    /// power of two).
    #[must_use]
    pub fn new(min_buckets: usize) -> Self {
        let n = min_buckets.next_power_of_two().max(64);
        let buckets = (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        HashIndex {
            buckets: buckets.into_boxed_slice(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_for(&self, key: &Key) -> &AtomicU64 {
        &self.buckets[(key.hash64() & self.mask) as usize]
    }

    /// Head address of the chain for `key`, or [`NONE_ADDRESS`].
    #[must_use]
    pub fn head(&self, key: &Key) -> u64 {
        match self.bucket_for(key).load(Ordering::Acquire) {
            0 => NONE_ADDRESS,
            a => a - 1,
        }
    }

    /// Publish `new_addr` as the chain head for `key` iff the head is still
    /// `expected` (or empty when `expected == NONE_ADDRESS`). Returns the
    /// observed head on failure so the caller can re-link and retry.
    pub fn try_publish(&self, key: &Key, expected: u64, new_addr: u64) -> Result<(), u64> {
        let bucket = self.bucket_for(key);
        let expected_raw = if expected == NONE_ADDRESS {
            0
        } else {
            expected + 1
        };
        match bucket.compare_exchange(
            expected_raw,
            new_addr + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(observed) => Err(if observed == 0 {
                NONE_ADDRESS
            } else {
                observed - 1
            }),
        }
    }

    /// Unconditionally set the chain head (recovery rebuild only).
    pub fn set_head(&self, key: &Key, addr: u64) {
        self.bucket_for(key).store(
            if addr == NONE_ADDRESS { 0 } else { addr + 1 },
            Ordering::Release,
        );
    }

    /// Clear the index.
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index_has_no_heads() {
        let idx = HashIndex::new(128);
        assert_eq!(idx.head(&Key::from_u64(5)), NONE_ADDRESS);
    }

    #[test]
    fn publish_and_lookup() {
        let idx = HashIndex::new(128);
        let k = Key::from_u64(1);
        idx.try_publish(&k, NONE_ADDRESS, 10).unwrap();
        assert_eq!(idx.head(&k), 10);
        idx.try_publish(&k, 10, 20).unwrap();
        assert_eq!(idx.head(&k), 20);
    }

    #[test]
    fn stale_publish_fails_with_observed_head() {
        let idx = HashIndex::new(128);
        let k = Key::from_u64(1);
        idx.try_publish(&k, NONE_ADDRESS, 10).unwrap();
        match idx.try_publish(&k, NONE_ADDRESS, 20) {
            Err(observed) => assert_eq!(observed, 10),
            Ok(()) => panic!("stale CAS must fail"),
        }
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        assert_eq!(HashIndex::new(100).buckets(), 128);
        assert_eq!(HashIndex::new(1).buckets(), 64);
    }

    #[test]
    fn concurrent_publishes_linearize() {
        let idx = std::sync::Arc::new(HashIndex::new(64));
        let k = Key::from_u64(99);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let idx = idx.clone();
                let k = k.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        let mine = t * 1000 + i;
                        let mut expected = idx.head(&k);
                        while let Err(seen) = idx.try_publish(&k, expected, mine) {
                            expected = seen;
                        }
                    }
                });
            }
        });
        // Some thread's last publish won; head must be one of the published
        // addresses (t * 1000 + i with t < 8, i < 100).
        let head = idx.head(&k);
        assert!(head < 8000, "head {head} out of range");
        assert!(head % 1000 < 100, "head {head} not a published address");
    }
}
