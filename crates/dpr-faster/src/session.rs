//! Client sessions: sequential logical threads of execution (§5.1).
//!
//! Every operation gets a *serial number* in its session. Under relaxed CPR
//! (§5.4) operations that touch evicted (on-device) state return
//! [`OpOutcome::Pending`]; the session buffers them and resolves them in
//! [`Session::complete_pending`], and later operations do not depend on them
//! until that explicit resolution — which is what keeps checkpoint commits
//! from blocking on in-flight I/O or dormant sessions.

use crate::state::SystemState;
use crate::store::FasterKv;
use dpr_core::{Key, SessionId, Value, Version};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A handle to a pending (unresolved) operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingToken {
    /// The serial number the operation occupies in its session.
    pub serial: u64,
}

/// Result of issuing one operation on a session.
#[derive(Debug)]
pub enum OpOutcome {
    /// A read that completed against resident state.
    Read {
        /// The value, or `None` if the key is absent/deleted.
        value: Option<Value>,
        /// Version the read executed in.
        version: Version,
        /// Serial number assigned.
        serial: u64,
    },
    /// An upsert/RMW/delete that completed against resident state.
    Mutated {
        /// Version the mutation executed in.
        version: Version,
        /// Serial number assigned.
        serial: u64,
    },
    /// The operation touched evicted state and went PENDING (§5.4).
    Pending(PendingToken),
}

impl OpOutcome {
    /// The serial number of this operation.
    #[must_use]
    pub fn serial(&self) -> u64 {
        match self {
            OpOutcome::Read { serial, .. } | OpOutcome::Mutated { serial, .. } => *serial,
            OpOutcome::Pending(t) => t.serial,
        }
    }

    /// The version the op executed in, if it has completed.
    #[must_use]
    pub fn version(&self) -> Option<Version> {
        match self {
            OpOutcome::Read { version, .. } | OpOutcome::Mutated { version, .. } => Some(*version),
            OpOutcome::Pending(_) => None,
        }
    }
}

/// A resolved PENDING operation.
#[derive(Debug)]
pub struct CompletedOp {
    /// Serial number of the original operation.
    pub serial: u64,
    /// Read result (`None` for mutations or absent keys).
    pub value: Option<Value>,
    /// Version the operation finally executed in.
    pub version: Version,
    /// True if the operation was lost to a rollback and never executed.
    pub lost: bool,
}

/// The user-defined modification applied by a pending RMW.
pub type RmwFn = Box<dyn Fn(Option<&Value>) -> Value + Send>;

pub(crate) enum PendingKind {
    Read,
    Rmw(RmwFn),
}

pub(crate) struct PendingOp {
    pub key: Key,
    pub kind: PendingKind,
    /// Chain address at which the walk left memory (diagnostics; the
    /// completion path re-walks from the index head).
    #[allow(dead_code)]
    pub addr: u64,
}

pub(crate) struct SessionCore {
    /// Last observed global state; ops execute in `observed.version`.
    pub observed: SystemState,
    /// Next serial number to assign.
    pub next_serial: u64,
    /// Unresolved PENDING ops by serial.
    pub outstanding: BTreeMap<u64, PendingOp>,
    /// PENDING ops lost to a rollback, surfaced at the next
    /// `complete_pending`.
    pub lost: Vec<u64>,
}

pub(crate) struct SessionShared {
    pub id: SessionId,
    pub core: Mutex<SessionCore>,
}

impl SessionShared {
    pub(crate) fn new(id: SessionId, observed: SystemState) -> Self {
        SessionShared {
            id,
            core: Mutex::new(SessionCore {
                observed,
                next_serial: 0,
                outstanding: BTreeMap::new(),
                lost: Vec::new(),
            }),
        }
    }
}

/// A client session on a [`FasterKv`] store.
///
/// Sessions are `Send` (they may migrate across threads) but not `Sync`;
/// each is a single sequential stream of operations, the granularity at
/// which prefix recoverability is defined.
pub struct Session {
    pub(crate) store: Arc<FasterKv>,
    pub(crate) shared: Arc<SessionShared>,
}

impl Session {
    /// This session's globally unique id.
    #[must_use]
    pub fn id(&self) -> SessionId {
        self.shared.id
    }

    /// Serial number the next operation will receive.
    #[must_use]
    pub fn next_serial(&self) -> u64 {
        self.shared.core.lock().next_serial
    }

    /// Read `key`. Completes immediately for resident keys; goes PENDING if
    /// the chain leads below the in-memory region.
    pub fn read(&self, key: &Key) -> dpr_core::Result<OpOutcome> {
        self.store.op_read(&self.shared, key)
    }

    /// Blind upsert of `key = value`.
    pub fn upsert(&self, key: Key, value: Value) -> dpr_core::Result<OpOutcome> {
        self.store.op_upsert(&self.shared, key, value)
    }

    /// Read-modify-write: applies `f` to the current value (or `None`).
    pub fn rmw(
        &self,
        key: Key,
        f: impl Fn(Option<&Value>) -> Value + Send + 'static,
    ) -> dpr_core::Result<OpOutcome> {
        self.store.op_rmw(&self.shared, key, Box::new(f))
    }

    /// Delete `key` (writes a tombstone).
    pub fn delete(&self, key: Key) -> dpr_core::Result<OpOutcome> {
        self.store.op_delete(&self.shared, key)
    }

    /// Resolve all outstanding PENDING operations, returning their results
    /// in serial order. Also surfaces operations lost to rollbacks.
    pub fn complete_pending(&self) -> dpr_core::Result<Vec<CompletedOp>> {
        self.store.op_complete_pending(&self.shared)
    }

    /// Participate in the state machine without issuing an operation. Call
    /// periodically from otherwise-idle loops.
    pub fn refresh(&self) {
        self.store.session_refresh(&self.shared);
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.store.drop_session(&self.shared);
    }
}
