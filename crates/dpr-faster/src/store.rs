//! The FASTER-style key-value store with CPR checkpoints and non-blocking
//! rollback.
//!
//! Threads (sessions) coordinate loosely through the global
//! [`SystemState`]: each op refreshes the session's observed state, and the
//! checkpoint / rollback machines advance when every session has observed
//! the current phase. Idle sessions are advanced *on their behalf* (their
//! per-session lock is taken by the advancer), so a dormant session never
//! blocks a commit — the store-level half of relaxed CPR (§5.4).

use crate::checkpoint::{CheckpointManifest, CommitPoint};
use crate::index::HashIndex;
use crate::log::{RecordLog, RecordRef};
use crate::record::{Record, NONE_ADDRESS};
use crate::session::{
    CompletedOp, OpOutcome, PendingKind, PendingOp, PendingToken, RmwFn, Session, SessionCore,
    SessionShared,
};
use crate::state::{GlobalState, Phase, SystemState};
use dpr_core::{DprError, Key, Result, SessionId, Value, Version};
use dpr_storage::{BlobStore, LogDevice};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Store configuration.
#[derive(Debug, Clone)]
pub struct FasterConfig {
    /// Minimum hash-index buckets (rounded up to a power of two).
    pub index_buckets: usize,
    /// Records kept resident before eviction to the device begins.
    pub memory_budget_records: usize,
    /// Spawn a background maintenance thread that drives flushes, purges and
    /// state-machine progress. Disable for deterministic unit tests that
    /// call [`FasterKv::tick`] manually.
    pub auto_maintenance: bool,
    /// How checkpoints capture state: fold-over (the paper's evaluation
    /// mode) or full snapshot.
    pub checkpoint_mode: dpr_core::CheckpointMode,
    /// Strict CPR (§5.4): operations that would go PENDING resolve
    /// synchronously instead, so the prefix guarantee has no exception
    /// lists. Default is relaxed, as in FASTER.
    pub strict_cpr: bool,
    /// Bound on unflushed records (HybridLog's volatile region). When set,
    /// the maintenance thread rolls the read-only boundary and flushes
    /// continuously, and appends beyond the bound stall until the device
    /// catches up — making device speed throughput-relevant, as in real
    /// FASTER. `None` = unbounded (no backpressure).
    pub unflushed_limit_records: Option<u64>,
    /// Simulated latency of one device read (records below the head).
    /// Strict CPR pays it per operation; relaxed CPR pays it once per
    /// `complete_pending` batch, modeling FASTER's concurrent I/O issue.
    /// `None` = instantaneous reads.
    pub simulated_read_latency: Option<Duration>,
}

impl Default for FasterConfig {
    fn default() -> Self {
        FasterConfig {
            index_buckets: 1 << 16,
            memory_budget_records: 1 << 22,
            auto_maintenance: true,
            checkpoint_mode: dpr_core::CheckpointMode::FoldOver,
            strict_cpr: false,
            unflushed_limit_records: None,
            simulated_read_latency: None,
        }
    }
}

/// A completed checkpoint, surfaced to the DPR layer.
#[derive(Debug, Clone)]
pub struct CheckpointInfo {
    /// The version this checkpoint committed.
    pub version: Version,
    /// One past the last record address captured.
    pub until_address: u64,
    /// Per-session commit points at the version boundary.
    pub commit_points: BTreeMap<SessionId, CommitPoint>,
}

#[derive(Debug)]
enum Request {
    Checkpoint { target: Option<Version> },
    Rollback { v_safe: Version },
}

#[derive(Debug, Clone, Copy)]
enum MachineKind {
    /// Committing `commit_version`; ops move to `target`.
    Checkpoint {
        commit_version: Version,
        target: Version,
    },
    /// Discarding `(v_safe, v_lost]`; ops move to `v_lost + 1`.
    Rollback { v_safe: Version, v_lost: Version },
}

struct MachineCtx {
    kind: MachineKind,
    /// Fold-over capture boundary, set at the `InProgress → WaitFlush`
    /// transition.
    until_address: Option<u64>,
    /// For snapshot-mode checkpoints: blob name once written.
    snapshot_blob: Option<String>,
    /// Telemetry only (None while disabled): when the machine left Rest.
    started_at: Option<std::time::Instant>,
    /// Telemetry only: when the current phase was entered.
    phase_entered: Option<std::time::Instant>,
}

impl MachineCtx {
    fn now() -> Option<std::time::Instant> {
        dpr_telemetry::enabled().then(std::time::Instant::now)
    }

    /// Record the time spent in the phase being left and restart the
    /// phase clock.
    fn lap(&mut self, phase_histogram: &'static dpr_telemetry::Histogram) {
        if let Some(entered) = self.phase_entered.take() {
            phase_histogram.record_micros(entered.elapsed());
        }
        self.phase_entered = Self::now();
    }
}

/// Version-boundary capture state, consulted by sessions as they cross.
enum BoundaryKind {
    Checkpoint,
    Rollback,
}

struct Boundary {
    kind: BoundaryKind,
    points: BTreeMap<SessionId, CommitPoint>,
}

/// The store. Construct with [`FasterKv::new`] or [`FasterKv::recover`];
/// interact through [`Session`]s.
///
/// ```
/// use dpr_core::{Key, SessionId, Value, Version};
/// use dpr_faster::{FasterConfig, FasterKv};
/// use dpr_storage::{MemBlobStore, MemLogDevice};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let kv = FasterKv::new(
///     FasterConfig::default(),
///     Arc::new(MemLogDevice::null()),
///     Arc::new(MemBlobStore::new()),
/// );
/// let session = kv.start_session(SessionId(1));
/// session.upsert(Key::from_u64(1), Value::from_u64(42)).unwrap();
/// // Commit() — a non-blocking fold-over checkpoint:
/// kv.request_checkpoint(None);
/// assert!(kv.wait_for_durable(Version(1), Duration::from_secs(5)));
/// ```
pub struct FasterKv {
    config: FasterConfig,
    index: HashIndex,
    log: RecordLog,
    blobs: Arc<dyn BlobStore>,
    global: GlobalState,
    machine: Mutex<Option<MachineCtx>>,
    boundary: Mutex<Option<Boundary>>,
    requests: Mutex<VecDeque<Request>>,
    sessions: RwLock<HashMap<SessionId, Arc<SessionShared>>>,
    purged: RwLock<Vec<(Version, Version)>>,
    completed: Mutex<Vec<CheckpointInfo>>,
    durable_version: AtomicU64,
    recovered_manifest: Option<CheckpointManifest>,
    /// Final commit points of sessions that have ended: carried into every
    /// later manifest so a client can learn its surviving prefix even after
    /// its server-side session closed.
    departed: Mutex<BTreeMap<SessionId, CommitPoint>>,
    /// Chaos fault point: while `Some(deadline)` is in the future, the
    /// checkpoint machine parks in `WaitFlush` as if the flush device
    /// hung (see [`FasterKv::stall_checkpoints_for`]).
    checkpoint_stall: Mutex<Option<std::time::Instant>>,
    shutdown: AtomicBool,
}

enum Find {
    Found { value: Option<Value> },
    OnDisk { addr: u64 },
}

impl FasterKv {
    /// Create an empty store.
    pub fn new(
        config: FasterConfig,
        device: Arc<dyn LogDevice>,
        blobs: Arc<dyn BlobStore>,
    ) -> Arc<FasterKv> {
        let kv = Arc::new(FasterKv {
            index: HashIndex::new(config.index_buckets),
            log: RecordLog::new(device, config.memory_budget_records),
            blobs,
            global: GlobalState::new(),
            machine: Mutex::new(None),
            boundary: Mutex::new(None),
            requests: Mutex::new(VecDeque::new()),
            sessions: RwLock::new(HashMap::new()),
            purged: RwLock::new(Vec::new()),
            completed: Mutex::new(Vec::new()),
            durable_version: AtomicU64::new(0),
            recovered_manifest: None,
            departed: Mutex::new(BTreeMap::new()),
            checkpoint_stall: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            config,
        });
        if let Some(limit) = kv.config.unflushed_limit_records {
            kv.log.set_unflushed_limit(limit);
        }
        if kv.config.auto_maintenance {
            Self::spawn_maintenance(&kv);
        }
        kv
    }

    /// Recover a store from its durable log and the latest checkpoint
    /// manifest at or below `at_most` (the shard's entry in the DPR cut).
    pub fn recover(
        config: FasterConfig,
        device: Arc<dyn LogDevice>,
        blobs: Arc<dyn BlobStore>,
        at_most: Option<Version>,
    ) -> Result<Arc<FasterKv>> {
        let manifest = CheckpointManifest::latest(blobs.as_ref(), at_most)?;
        let (version, until, purged, recovered_manifest) = match &manifest {
            Some(m) => (
                m.version,
                m.until_address,
                m.purged.clone(),
                manifest.clone(),
            ),
            None => (Version::ZERO, 0, Vec::new(), None),
        };
        let index = HashIndex::new(config.index_buckets);
        let log = match recovered_manifest
            .as_ref()
            .and_then(|m| m.snapshot_blob.as_deref())
        {
            Some(snapshot) => {
                // Snapshot checkpoint: rebuild from the full state image;
                // the log prefix (possibly garbage-collected) is dead, and
                // future flushes land after the current device tail.
                let base = device.tail();
                let log = RecordLog::with_scan_base(device, config.memory_budget_records, base);
                for (key, value) in Self::read_snapshot(blobs.as_ref(), snapshot)? {
                    let rec = log.append(key, value, version, false);
                    let head = index.head(rec.key());
                    rec.set_prev(head);
                    index.set_head(rec.key(), rec.address());
                }
                log
            }
            None => {
                // Fold-over checkpoint: replay the durable log prefix from
                // this incarnation's base.
                let scan_from = recovered_manifest
                    .as_ref()
                    .map_or(0, |m| m.device_scan_base);
                let (log, records) = RecordLog::recover(
                    device,
                    config.memory_budget_records,
                    until,
                    version,
                    &purged,
                    scan_from,
                )?;
                for rec in &records {
                    if rec.meta().invalid {
                        continue;
                    }
                    let head = index.head(rec.key());
                    rec.set_prev(head);
                    index.set_head(rec.key(), rec.address());
                }
                log
            }
        };
        let global = GlobalState::new();
        global.store(SystemState {
            phase: Phase::Rest,
            version: version.next().max(Version::FIRST),
        });
        let kv = Arc::new(FasterKv {
            index,
            log,
            blobs,
            global,
            machine: Mutex::new(None),
            boundary: Mutex::new(None),
            requests: Mutex::new(VecDeque::new()),
            sessions: RwLock::new(HashMap::new()),
            purged: RwLock::new(purged),
            completed: Mutex::new(Vec::new()),
            durable_version: AtomicU64::new(version.0),
            departed: Mutex::new(
                recovered_manifest
                    .as_ref()
                    .map(|m| m.commit_points.clone())
                    .unwrap_or_default(),
            ),
            recovered_manifest,
            checkpoint_stall: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            config,
        });
        if let Some(limit) = kv.config.unflushed_limit_records {
            kv.log.set_unflushed_limit(limit);
        }
        if kv.config.auto_maintenance {
            Self::spawn_maintenance(&kv);
        }
        Ok(kv)
    }

    fn spawn_maintenance(kv: &Arc<FasterKv>) {
        let weak: Weak<FasterKv> = Arc::downgrade(kv);
        std::thread::Builder::new()
            .name("faster-maint".into())
            .spawn(move || loop {
                let Some(kv) = weak.upgrade() else { return };
                if kv.shutdown.load(Ordering::Acquire) {
                    return;
                }
                kv.tick();
                kv.continuous_flush();
                kv.log.maybe_evict();
                drop(kv);
                std::thread::sleep(Duration::from_micros(200));
            })
            .expect("spawn maintenance thread");
    }

    /// Stop the maintenance thread (idempotent). Sessions remain usable but
    /// no further checkpoints complete automatically.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    // ---------------------------------------------------------------- sessions

    /// Open a session with the given globally unique id.
    pub fn start_session(self: &Arc<Self>, id: SessionId) -> Session {
        let shared = Arc::new(SessionShared::new(id, self.global.load()));
        self.sessions.write().insert(id, shared.clone());
        Session {
            store: self.clone(),
            shared,
        }
    }

    pub(crate) fn drop_session(&self, shared: &Arc<SessionShared>) {
        {
            let mut core = shared.core.lock();
            let global = self.global.load();
            if core.observed != global {
                self.apply_crossing(shared.id, &mut core, global);
                core.observed = global;
            }
            // Ops still outstanding at departure never complete; keep the
            // gauge honest.
            crate::metrics::pending_ops().sub(core.outstanding.len() as i64);
            // Record the session's final prefix so later checkpoints keep
            // reporting it (a departed session's ops are all in versions at
            // or below its departure version).
            self.departed.lock().insert(
                shared.id,
                CommitPoint {
                    serial: core.next_serial,
                    exceptions: core.outstanding.keys().copied().collect(),
                },
            );
        }
        self.sessions.write().remove(&shared.id);
    }

    pub(crate) fn session_refresh(&self, shared: &Arc<SessionShared>) {
        let mut core = shared.core.lock();
        self.refresh_locked(shared.id, &mut core);
        drop(core);
        self.try_advance(false);
    }

    fn refresh_locked(&self, id: SessionId, core: &mut SessionCore) {
        let global = self.global.load();
        if core.observed != global {
            self.apply_crossing(id, core, global);
            core.observed = global;
        }
    }

    /// Apply version-boundary side effects as a session's observed state
    /// moves to `new`.
    fn apply_crossing(&self, id: SessionId, core: &mut SessionCore, new: SystemState) {
        if new.version <= core.observed.version {
            return;
        }
        let mut boundary = self.boundary.lock();
        if let Some(b) = boundary.as_mut() {
            match b.kind {
                BoundaryKind::Checkpoint => {
                    b.points.entry(id).or_insert_with(|| CommitPoint {
                        serial: core.next_serial,
                        exceptions: core.outstanding.keys().copied().collect(),
                    });
                }
                BoundaryKind::Rollback => {
                    // PENDING ops issued before the failure are lost.
                    let lost: Vec<u64> = core.outstanding.keys().copied().collect();
                    crate::metrics::pending_ops().sub(lost.len() as i64);
                    core.outstanding.clear();
                    core.lost.extend(lost);
                }
            }
        }
    }

    /// True when every registered session has observed `target`, advancing
    /// idle sessions on their behalf.
    fn all_sessions_at(&self, target: SystemState) -> bool {
        let sessions: Vec<Arc<SessionShared>> = self.sessions.read().values().cloned().collect();
        for s in sessions {
            let Some(mut core) = s.core.try_lock() else {
                return false;
            };
            if core.observed != target {
                self.apply_crossing(s.id, &mut core, target);
                core.observed = target;
            }
        }
        true
    }

    // ---------------------------------------------------------------- ops

    fn is_purged(&self, v: Version) -> bool {
        self.purged.read().iter().any(|&(lo, hi)| v > lo && v <= hi)
    }

    /// Walk the in-memory chain for `key` starting at its bucket head.
    fn find_resident(&self, key: &Key) -> Result<Find> {
        let mut addr = self.index.head(key);
        loop {
            if addr == NONE_ADDRESS {
                return Ok(Find::Found { value: None });
            }
            match self.get_record_spin(addr)? {
                RecordRef::Resident(rec) => {
                    if rec.key() == key {
                        let m = rec.meta();
                        if m.invalid || self.is_purged(m.version) {
                            addr = rec.prev();
                            continue;
                        }
                        if m.tombstone {
                            return Ok(Find::Found { value: None });
                        }
                        return Ok(Find::Found {
                            value: Some(rec.read_value()),
                        });
                    }
                    addr = rec.prev();
                }
                RecordRef::OnDisk => return Ok(Find::OnDisk { addr }),
            }
        }
    }

    /// `log.get` with a bounded spin for the publish window between address
    /// allocation and slot store.
    fn get_record_spin(&self, addr: u64) -> Result<RecordRef> {
        for _ in 0..1024 {
            match self.log.get(addr) {
                Ok(r) => return Ok(r),
                Err(_) => std::hint::spin_loop(),
            }
        }
        self.log.get(addr)
    }

    /// Continue a chain walk below the in-memory region by reading records
    /// from the device.
    fn find_from_disk(&self, key: &Key, mut addr: u64) -> Result<Option<Value>> {
        loop {
            if addr == NONE_ADDRESS {
                return Ok(None);
            }
            if addr >= self.log.head() {
                // Walk climbed back into memory (possible after eviction
                // races); restart resident walk from this address.
                match self.get_record_spin(addr)? {
                    RecordRef::Resident(rec) => {
                        if rec.key() == key {
                            let m = rec.meta();
                            if !m.invalid && !self.is_purged(m.version) {
                                return Ok(if m.tombstone {
                                    None
                                } else {
                                    Some(rec.read_value())
                                });
                            }
                        }
                        addr = rec.prev();
                        continue;
                    }
                    RecordRef::OnDisk => {}
                }
            }
            let rec = self.log.read_from_device(addr)?;
            if rec.key() == key {
                let m = rec.meta();
                if !m.invalid && !self.is_purged(m.version) {
                    return Ok(if m.tombstone {
                        None
                    } else {
                        Some(rec.read_value())
                    });
                }
            }
            addr = rec.prev();
        }
    }

    /// Append a record and publish it at the head of `key`'s chain,
    /// retrying the CAS as needed. Failed attempts are invalidated in place.
    fn append_and_publish(
        &self,
        key: Key,
        value: Value,
        version: Version,
        tombstone: bool,
    ) -> Arc<Record> {
        let rec = self.log.append(key, value, version, tombstone);
        let mut expected = self.index.head(rec.key());
        loop {
            rec.set_prev(expected);
            match self.index.try_publish(rec.key(), expected, rec.address()) {
                Ok(()) => return rec,
                Err(observed) => expected = observed,
            }
        }
    }

    /// Charge the configured device-read latency (one I/O round trip).
    fn charge_read(&self) {
        if let Some(d) = self.config.simulated_read_latency {
            std::thread::sleep(d);
        }
    }

    /// Whether `rec` may be updated in place by a session at `version`: the
    /// CPR rule — same version, above the read-only boundary, live.
    fn in_place_ok(&self, rec: &Record, version: Version) -> bool {
        let m = rec.meta();
        rec.address() >= self.log.read_only() && m.version == version && !m.tombstone && !m.invalid
    }

    /// Find the newest live record for `key` while it remains in memory;
    /// returns the record if resident, or the disk handoff address.
    fn find_resident_record(
        &self,
        key: &Key,
    ) -> Result<std::result::Result<Option<Arc<Record>>, u64>> {
        let mut addr = self.index.head(key);
        loop {
            if addr == NONE_ADDRESS {
                return Ok(Ok(None));
            }
            match self.get_record_spin(addr)? {
                RecordRef::Resident(rec) => {
                    if rec.key() == key {
                        let m = rec.meta();
                        if m.invalid || self.is_purged(m.version) {
                            addr = rec.prev();
                            continue;
                        }
                        return Ok(Ok(Some(rec)));
                    }
                    addr = rec.prev();
                }
                RecordRef::OnDisk => return Ok(Err(addr)),
            }
        }
    }

    pub(crate) fn op_read(&self, shared: &Arc<SessionShared>, key: &Key) -> Result<OpOutcome> {
        let mut core = shared.core.lock();
        self.refresh_locked(shared.id, &mut core);
        let version = core.observed.version;
        let serial = core.next_serial;
        core.next_serial += 1;
        match self.find_resident(key)? {
            Find::Found { value } => Ok(OpOutcome::Read {
                value,
                version,
                serial,
            }),
            Find::OnDisk { addr } => {
                if self.config.strict_cpr {
                    // Strict CPR (§5.4): resolve the I/O inline so the
                    // serial order is exactly the completion order — paying
                    // a full I/O round trip per operation.
                    self.charge_read();
                    let value = self.find_from_disk(key, addr)?;
                    return Ok(OpOutcome::Read {
                        value,
                        version,
                        serial,
                    });
                }
                core.outstanding.insert(
                    serial,
                    PendingOp {
                        key: key.clone(),
                        kind: PendingKind::Read,
                        addr,
                    },
                );
                crate::metrics::pending_ops().add(1);
                Ok(OpOutcome::Pending(PendingToken { serial }))
            }
        }
    }

    pub(crate) fn op_upsert(
        &self,
        shared: &Arc<SessionShared>,
        key: Key,
        value: Value,
    ) -> Result<OpOutcome> {
        let mut core = shared.core.lock();
        self.refresh_locked(shared.id, &mut core);
        let version = core.observed.version;
        let serial = core.next_serial;
        core.next_serial += 1;
        // Try in-place against the newest resident record for this key;
        // otherwise append (blind upserts never need the disk).
        if let Ok(Ok(Some(rec))) = self.find_resident_record(&key) {
            if self.in_place_ok(&rec, version) {
                rec.write_value(value);
                return Ok(OpOutcome::Mutated { version, serial });
            }
        }
        self.append_and_publish(key, value, version, false);
        Ok(OpOutcome::Mutated { version, serial })
    }

    pub(crate) fn op_delete(&self, shared: &Arc<SessionShared>, key: Key) -> Result<OpOutcome> {
        let mut core = shared.core.lock();
        self.refresh_locked(shared.id, &mut core);
        let version = core.observed.version;
        let serial = core.next_serial;
        core.next_serial += 1;
        self.append_and_publish(key, Value(bytes::Bytes::new()), version, true);
        Ok(OpOutcome::Mutated { version, serial })
    }

    pub(crate) fn op_rmw(
        &self,
        shared: &Arc<SessionShared>,
        key: Key,
        f: RmwFn,
    ) -> Result<OpOutcome> {
        let mut core = shared.core.lock();
        self.refresh_locked(shared.id, &mut core);
        let version = core.observed.version;
        let serial = core.next_serial;
        core.next_serial += 1;
        match self.rmw_attempt(&key, &f, version)? {
            Some(()) => Ok(OpOutcome::Mutated { version, serial }),
            None => {
                if self.config.strict_cpr {
                    self.charge_read();
                    self.resolve_rmw_from_disk(&key, &f, version)?;
                    return Ok(OpOutcome::Mutated { version, serial });
                }
                core.outstanding.insert(
                    serial,
                    PendingOp {
                        key,
                        kind: PendingKind::Rmw(f),
                        addr: 0,
                    },
                );
                crate::metrics::pending_ops().add(1);
                Ok(OpOutcome::Pending(PendingToken { serial }))
            }
        }
    }

    /// Resolve an RMW whose chain leads to the device, synchronously.
    fn resolve_rmw_from_disk(&self, key: &Key, f: &RmwFn, version: Version) -> Result<()> {
        loop {
            match self.rmw_attempt(key, f, version)? {
                Some(()) => return Ok(()),
                None => {
                    let addr = match self.find_resident(key)? {
                        Find::OnDisk { addr } => addr,
                        Find::Found { .. } => continue,
                    };
                    let old = self.find_from_disk(key, addr)?;
                    let new = f(old.as_ref());
                    if self.rcu_publish(key, new, version) {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// One RMW attempt against resident state; `None` means the chain went
    /// to disk and the op must go PENDING.
    fn rmw_attempt(&self, key: &Key, f: &RmwFn, version: Version) -> Result<Option<()>> {
        loop {
            match self.find_resident_record(key)? {
                Ok(Some(rec)) => {
                    let m = rec.meta();
                    if self.in_place_ok(&rec, version) {
                        rec.modify_value(|v| f(Some(v)));
                        return Ok(Some(()));
                    }
                    let old = if m.tombstone {
                        None
                    } else {
                        Some(rec.read_value())
                    };
                    let new = f(old.as_ref());
                    if self.rcu_publish(key, new, version) {
                        return Ok(Some(()));
                    }
                    // Chain head changed under us; retry from the top.
                }
                Ok(None) => {
                    let new = f(None);
                    if self.rcu_publish(key, new, version) {
                        return Ok(Some(()));
                    }
                }
                Err(_disk_addr) => return Ok(None),
            }
        }
    }

    /// Publish an RCU record if the chain head is unchanged; on failure the
    /// garbage record is invalidated and the caller retries.
    fn rcu_publish(&self, key: &Key, value: Value, version: Version) -> bool {
        let expected = self.index.head(key);
        let rec = self.log.append(key.clone(), value, version, false);
        rec.set_prev(expected);
        match self.index.try_publish(key, expected, rec.address()) {
            Ok(()) => true,
            Err(_) => {
                rec.invalidate();
                false
            }
        }
    }

    pub(crate) fn op_complete_pending(
        &self,
        shared: &Arc<SessionShared>,
    ) -> Result<Vec<CompletedOp>> {
        let mut core = shared.core.lock();
        self.refresh_locked(shared.id, &mut core);
        let version = core.observed.version;
        let mut out = Vec::new();
        for serial in core.lost.drain(..) {
            out.push(CompletedOp {
                serial,
                value: None,
                version,
                lost: true,
            });
        }
        let pending: Vec<(u64, PendingOp)> =
            std::mem::take(&mut core.outstanding).into_iter().collect();
        crate::metrics::pending_ops().sub(pending.len() as i64);
        if !pending.is_empty() {
            // Relaxed CPR issues the batched I/Os concurrently; the batch
            // completes in ~one device round trip.
            self.charge_read();
        }
        for (serial, op) in pending {
            match op.kind {
                PendingKind::Read => {
                    // Re-check memory first (the key may have been written
                    // since), then chase the chain through the device.
                    let value = match self.find_resident(&op.key)? {
                        Find::Found { value } => value,
                        Find::OnDisk { addr } => self.find_from_disk(&op.key, addr)?,
                    };
                    out.push(CompletedOp {
                        serial,
                        value,
                        version,
                        lost: false,
                    });
                }
                PendingKind::Rmw(f) => {
                    self.resolve_rmw_from_disk(&op.key, &f, version)?;
                    out.push(CompletedOp {
                        serial,
                        value: None,
                        version,
                        lost: false,
                    });
                }
            }
        }
        out.sort_by_key(|c| c.serial);
        Ok(out)
    }

    // ---------------------------------------------------------------- control

    /// Request a checkpoint (the `Commit()` of the StateObject API). If
    /// `target` is given, operations fast-forward to at least that version
    /// afterwards (§3.4 `Vmax` catch-up). Returns false if a machine or
    /// request is already queued.
    pub fn request_checkpoint(&self, target: Option<Version>) -> bool {
        // Check the machine first and drop its guard before touching the
        // request queue: `try_advance` acquires machine → requests, so
        // holding requests while waiting on machine would deadlock.
        if self.machine.lock().is_some() {
            return false;
        }
        let mut reqs = self.requests.lock();
        if !reqs.is_empty() {
            return false;
        }
        reqs.push_back(Request::Checkpoint { target });
        true
    }

    /// Request a rollback of all versions above `v_safe` (the `Restore()`
    /// of the StateObject API, non-blocking per §5.5).
    pub fn request_rollback(&self, v_safe: Version) {
        self.requests.lock().push_back(Request::Rollback { v_safe });
    }

    /// Chaos fault point: park checkpoint completion for `duration`, as if
    /// the flush device hung. The CPR machine stays in `WaitFlush` (ops
    /// keep executing, versions keep advancing) so the cluster cut lag
    /// `Vmax − Vsafe` grows until the stall expires; calling again
    /// extends the stall to the later deadline.
    pub fn stall_checkpoints_for(&self, duration: Duration) {
        let deadline = std::time::Instant::now() + duration;
        let mut stall = self.checkpoint_stall.lock();
        *stall = Some(match *stall {
            Some(existing) => existing.max(deadline),
            None => deadline,
        });
    }

    /// Lift any active checkpoint stall (chaos harness heals the device).
    pub fn clear_checkpoint_stall(&self) {
        *self.checkpoint_stall.lock() = None;
    }

    /// Drive the state machine one step, performing heavy work (flush,
    /// purge) inline. The maintenance thread calls this continuously;
    /// deterministic tests call it manually.
    pub fn tick(&self) {
        self.try_advance(true);
    }

    /// With a bounded volatile region, roll the read-only boundary and
    /// flush sealed pages continuously (real FASTER flushes closed pages as
    /// the tail advances, not only at checkpoints). Safe because records
    /// below the read-only boundary are never updated in place.
    pub fn continuous_flush(&self) {
        let Some(limit) = self.config.unflushed_limit_records else {
            return;
        };
        let target = self.log.tail().saturating_sub(limit / 2);
        self.log.advance_read_only(target);
        let read_only = self.log.read_only();
        if self.log.flushed() < read_only {
            let _ = self.log.flush_until(read_only);
        }
    }

    /// Version of the latest durable checkpoint.
    #[must_use]
    pub fn durable_version(&self) -> Version {
        Version(self.durable_version.load(Ordering::Acquire))
    }

    /// Version operations currently execute in.
    #[must_use]
    pub fn current_version(&self) -> Version {
        self.global.load().version
    }

    /// Current phase (for tests and metrics).
    #[must_use]
    pub fn current_phase(&self) -> Phase {
        self.global.load().phase
    }

    /// Drain completed checkpoints since the last call.
    #[must_use]
    pub fn take_completed_checkpoints(&self) -> Vec<CheckpointInfo> {
        std::mem::take(&mut *self.completed.lock())
    }

    /// The manifest this store was recovered from, if any.
    #[must_use]
    pub fn recovered_manifest(&self) -> Option<&CheckpointManifest> {
        self.recovered_manifest.as_ref()
    }

    /// Block until `version` is durable, ticking the machine. Returns false
    /// on timeout.
    pub fn wait_for_durable(&self, version: Version, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        while self.durable_version() < version {
            self.tick();
            if start.elapsed() > timeout {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    fn try_advance(&self, heavy: bool) {
        let Some(mut machine) = self.machine.try_lock() else {
            return;
        };
        let state = self.global.load();
        match state.phase {
            Phase::Rest => {
                let req = self.requests.lock().pop_front();
                match req {
                    None => {}
                    Some(Request::Checkpoint { target }) => {
                        let commit_version = state.version;
                        let target = target.unwrap_or(Version::ZERO).max(commit_version.next());
                        let now = MachineCtx::now();
                        *machine = Some(MachineCtx {
                            kind: MachineKind::Checkpoint {
                                commit_version,
                                target,
                            },
                            until_address: None,
                            snapshot_blob: None,
                            started_at: now,
                            phase_entered: now,
                        });
                        crate::metrics::phase_span(Phase::Rest, Phase::Prepare, commit_version);
                        *self.boundary.lock() = Some(Boundary {
                            kind: BoundaryKind::Checkpoint,
                            points: BTreeMap::new(),
                        });
                        self.global.store(SystemState {
                            phase: Phase::Prepare,
                            version: commit_version,
                        });
                    }
                    Some(Request::Rollback { v_safe }) => {
                        let v_lost = state.version;
                        if v_safe >= v_lost {
                            // Nothing beyond the safe point exists.
                            return;
                        }
                        self.purged.write().push((v_safe, v_lost));
                        let now = MachineCtx::now();
                        *machine = Some(MachineCtx {
                            kind: MachineKind::Rollback { v_safe, v_lost },
                            until_address: None,
                            snapshot_blob: None,
                            started_at: now,
                            phase_entered: now,
                        });
                        crate::metrics::rollback_throw().inc();
                        crate::metrics::phase_span(Phase::Rest, Phase::Throw, v_lost);
                        *self.boundary.lock() = Some(Boundary {
                            kind: BoundaryKind::Rollback,
                            points: BTreeMap::new(),
                        });
                        self.global.store(SystemState {
                            phase: Phase::Throw,
                            version: v_lost.next(),
                        });
                    }
                }
            }
            Phase::Prepare => {
                if self.all_sessions_at(state) {
                    let Some(ctx) = machine.as_mut() else { return };
                    let MachineKind::Checkpoint { target, .. } = ctx.kind else {
                        return;
                    };
                    ctx.lap(crate::metrics::phase_prepare());
                    crate::metrics::phase_span(Phase::Prepare, Phase::InProgress, target);
                    self.global.store(SystemState {
                        phase: Phase::InProgress,
                        version: target,
                    });
                }
            }
            Phase::InProgress => {
                if self.all_sessions_at(state) {
                    let Some(ctx) = machine.as_mut() else { return };
                    // All sessions are in the new version: the old version's
                    // records all sit below the current tail. Seal it.
                    ctx.until_address = Some(self.log.seal_to_tail());
                    ctx.lap(crate::metrics::phase_in_progress());
                    crate::metrics::phase_span(Phase::InProgress, Phase::WaitFlush, state.version);
                    self.global.store(SystemState {
                        phase: Phase::WaitFlush,
                        version: state.version,
                    });
                }
            }
            Phase::WaitFlush => {
                // Chaos fault point: a stalled flush device parks the
                // machine here; ops keep executing in the in-progress
                // version and the cut lag grows until the stall expires.
                {
                    let mut stall = self.checkpoint_stall.lock();
                    if let Some(deadline) = *stall {
                        if std::time::Instant::now() < deadline {
                            return;
                        }
                        *stall = None;
                    }
                }
                let Some(ctx) = machine.as_mut() else { return };
                let until = ctx.until_address.expect("sealed before WaitFlush");
                let MachineKind::Checkpoint {
                    commit_version,
                    target,
                } = ctx.kind
                else {
                    return;
                };
                let capture_done = match self.config.checkpoint_mode {
                    dpr_core::CheckpointMode::FoldOver => {
                        if heavy && self.log.flushed() < until {
                            if let Err(e) = self.log.flush_until(until) {
                                // Flush failures leave the machine parked;
                                // retried next tick.
                                debug_assert!(false, "flush failed: {e}");
                                return;
                            }
                        }
                        self.log.flushed() >= until
                    }
                    dpr_core::CheckpointMode::Snapshot => {
                        if ctx.snapshot_blob.is_none() && heavy {
                            // Full state image of everything at or below the
                            // committing version.
                            match self.write_snapshot(commit_version) {
                                Ok(name) => ctx.snapshot_blob = Some(name),
                                Err(e) => {
                                    debug_assert!(false, "snapshot failed: {e}");
                                    return;
                                }
                            }
                        }
                        ctx.snapshot_blob.is_some()
                    }
                };
                if capture_done {
                    ctx.lap(crate::metrics::phase_wait_flush());
                    if let Some(started) = ctx.started_at.take() {
                        crate::metrics::checkpoint_total().record_micros(started.elapsed());
                    }
                    crate::metrics::checkpoints().inc();
                    crate::metrics::phase_span(Phase::WaitFlush, Phase::Rest, commit_version);
                    let snapshot_blob = ctx.snapshot_blob.take();
                    let mut points = self
                        .boundary
                        .lock()
                        .take()
                        .map(|b| b.points)
                        .unwrap_or_default();
                    // Departed sessions keep their final prefix in every
                    // later manifest.
                    for (id, cp) in self.departed.lock().iter() {
                        points.entry(*id).or_insert_with(|| cp.clone());
                    }
                    let manifest = CheckpointManifest {
                        version: commit_version,
                        until_address: until,
                        purged: self.purged.read().clone(),
                        commit_points: points,
                        snapshot_blob,
                        device_scan_base: self.log.scan_base(),
                    };
                    if manifest.write_to(self.blobs.as_ref()).is_ok() {
                        self.durable_version
                            .fetch_max(commit_version.0, Ordering::AcqRel);
                        // Hand the commit points to the DPR layer without
                        // cloning the per-session map.
                        self.completed.lock().push(CheckpointInfo {
                            version: commit_version,
                            until_address: until,
                            commit_points: manifest.commit_points,
                        });
                    }
                    *machine = None;
                    self.global.store(SystemState {
                        phase: Phase::Rest,
                        version: target,
                    });
                }
            }
            Phase::Throw => {
                if self.all_sessions_at(state) {
                    crate::metrics::phase_span(Phase::Throw, Phase::Purge, state.version);
                    self.global.store(SystemState {
                        phase: Phase::Purge,
                        version: state.version,
                    });
                }
            }
            Phase::Purge => {
                if !heavy {
                    return;
                }
                let Some(ctx) = machine.as_ref() else { return };
                let MachineKind::Rollback { v_safe, v_lost } = ctx.kind else {
                    return;
                };
                self.log.purge_versions(v_safe, v_lost);
                // Stale manifests for discarded versions must not be used
                // for future recovery.
                for v in (v_safe.0 + 1)..=v_lost.0 {
                    let _ = self
                        .blobs
                        .delete(&CheckpointManifest::blob_name(Version(v)));
                }
                // The durable version cannot exceed the safe point anymore.
                let cur = self.durable_version.load(Ordering::Acquire);
                if cur > v_safe.0 {
                    self.durable_version.store(v_safe.0, Ordering::Release);
                }
                crate::metrics::rollback_purge().inc();
                crate::metrics::phase_span(Phase::Purge, Phase::Rest, state.version);
                *self.boundary.lock() = None;
                *machine = None;
                self.global.store(SystemState {
                    phase: Phase::Rest,
                    version: state.version,
                });
            }
        }
    }

    /// Direct read for tests/examples outside any session: walks memory and
    /// device, honoring tombstones and purges.
    pub fn get(self: &Arc<Self>, key: &Key) -> Result<Option<Value>> {
        match self.find_resident(key)? {
            Find::Found { value } => Ok(value),
            Find::OnDisk { addr } => self.find_from_disk(key, addr),
        }
    }

    /// Scan the live state: the newest valid value per key, skipping
    /// tombstoned, invalid, and purged records. Used by key migration
    /// (§5.3) — an O(log) pass, not a hot-path operation.
    pub fn scan_live(&self) -> Result<Vec<(Key, Value)>> {
        self.scan_live_upto(Version(u64::MAX >> 8))
    }

    /// Like [`FasterKv::scan_live`], but only considering records written at
    /// or below `max_version` (snapshot checkpoints capture the state as of
    /// the committing version).
    pub fn scan_live_upto(&self, max_version: Version) -> Result<Vec<(Key, Value)>> {
        let mut newest: HashMap<Key, (u64, Option<Value>)> = HashMap::new();
        for addr in 0..self.log.tail() {
            let rec = match self.get_record_spin(addr)? {
                RecordRef::Resident(r) => r,
                RecordRef::OnDisk => Arc::new(self.log.read_from_device(addr)?),
            };
            let m = rec.meta();
            if m.invalid || m.version > max_version || self.is_purged(m.version) {
                continue;
            }
            let value = if m.tombstone {
                None
            } else {
                Some(rec.read_value())
            };
            match newest.entry(rec.key().clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if addr >= e.get().0 {
                        e.insert((addr, value));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((addr, value));
                }
            }
        }
        Ok(newest
            .into_iter()
            .filter_map(|(k, (_, v))| v.map(|v| (k, v)))
            .collect())
    }

    /// Number of records in the log (diagnostics).
    #[must_use]
    pub fn log_tail(&self) -> u64 {
        self.log.tail()
    }

    /// Evict every flushed, sealed page from memory (tests and memory
    /// pressure simulations). Returns the new head address.
    pub fn force_evict(&self) -> u64 {
        self.log.evict_to(self.log.flushed())
    }

    /// Write a full state image for a snapshot-mode checkpoint.
    fn write_snapshot(&self, version: Version) -> Result<String> {
        let live = self.scan_live_upto(version)?;
        let mut buf = Vec::with_capacity(16 + live.len() * 24);
        buf.extend_from_slice(&(live.len() as u64).to_le_bytes());
        for (k, v) in &live {
            buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
            buf.extend_from_slice(k.as_bytes());
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(v.as_bytes());
        }
        let name = format!("snap-{:020}", version.0);
        self.blobs.put(&name, &buf)?;
        Ok(name)
    }

    fn read_snapshot(blobs: &dyn BlobStore, name: &str) -> Result<Vec<(Key, Value)>> {
        let corrupt = || DprError::Storage(format!("corrupt snapshot {name}"));
        let data = blobs
            .get(name)?
            .ok_or_else(|| DprError::Storage(format!("missing snapshot {name}")))?;
        if data.len() < 8 {
            return Err(corrupt());
        }
        let count = u64::from_le_bytes(data[0..8].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(count);
        let mut pos = 8;
        for _ in 0..count {
            if data.len() < pos + 4 {
                return Err(corrupt());
            }
            let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if data.len() < pos + klen + 4 {
                return Err(corrupt());
            }
            let key = Key(bytes::Bytes::copy_from_slice(&data[pos..pos + klen]));
            pos += klen;
            let vlen = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if data.len() < pos + vlen {
                return Err(corrupt());
            }
            let value = Value(bytes::Bytes::copy_from_slice(&data[pos..pos + vlen]));
            pos += vlen;
            out.push((key, value));
        }
        Ok(out)
    }

    /// Garbage-collect durable log space below the checkpoint of `version`
    /// (which must be covered by the DPR cut — "D-FASTER only
    /// garbage-collects FASTER log entries that are in the DPR guarantee",
    /// §5.5).
    ///
    /// Only *snapshot* checkpoints make the log prefix redundant: a
    /// fold-over checkpoint's state IS the log, so truncating below it would
    /// lose live records that were never overwritten. Records below the
    /// boundary must also already be evicted from memory. Manifests older
    /// than `version` are deleted (no longer restorable). Returns the record
    /// address the durable log now starts at, or `None` if there was nothing
    /// safe to collect.
    pub fn collect_garbage(&self, version: Version) -> Result<Option<u64>> {
        if version > self.durable_version() {
            return Err(DprError::Invalid(format!(
                "cannot GC at {version}: durable only to {}",
                self.durable_version()
            )));
        }
        let Some(manifest) = CheckpointManifest::read_from(self.blobs.as_ref(), version)? else {
            return Ok(None);
        };
        if manifest.snapshot_blob.is_none() {
            // Fold-over: the log prefix is the only copy of live records.
            return Ok(None);
        }
        if manifest.until_address == 0 || manifest.until_address > self.log.head() {
            // Nothing below the boundary, or records still resident.
            return Ok(None);
        }
        self.log.truncate_device_below(manifest.until_address)?;
        // Older manifests reference truncated data; drop them.
        for name in self.blobs.list("chkpt-")? {
            let v: u64 = name
                .trim_start_matches("chkpt-")
                .parse()
                .unwrap_or(u64::MAX);
            if v < version.0 {
                let _ = self.blobs.delete(&name);
            }
        }
        Ok(Some(manifest.until_address))
    }

    /// True when no checkpoint/rollback machine is running or queued.
    #[must_use]
    pub fn machine_idle(&self) -> bool {
        // Lock order machine → requests, matching `try_advance` (the guards
        // of a `&&` chain live to the end of the statement).
        self.machine.lock().is_none()
            && self.requests.lock().is_empty()
            && self.global.load().phase == Phase::Rest
    }

    /// Request a rollback to `v_safe` and wait for the machine to finish
    /// (the worker-facing synchronous `Restore()`; the store-internal
    /// machine is still non-blocking for sessions).
    pub fn restore_sync(&self, v_safe: Version, timeout: Duration) -> Result<()> {
        // Wait out any in-flight checkpoint first so the rollback is queued
        // against a quiescent machine.
        let start = std::time::Instant::now();
        while !self.machine_idle() {
            self.tick();
            if start.elapsed() > timeout {
                return Err(DprError::Timeout);
            }
            std::thread::yield_now();
        }
        self.request_rollback(v_safe);
        while !self.machine_idle() {
            self.tick();
            if start.elapsed() > timeout {
                return Err(DprError::Timeout);
            }
            std::thread::yield_now();
        }
        Ok(())
    }
}

impl Drop for FasterKv {
    fn drop(&mut self) {
        self.shutdown();
    }
}
