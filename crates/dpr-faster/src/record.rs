//! Log records.
//!
//! A record is one version of one key. Records are reachable through the
//! hash index (bucket head → `prev` chain) and live at a logical address in
//! the [`crate::log::RecordLog`]. The metadata word packs the CPR version
//! with tombstone/invalid flags so rollback can invalidate records with a
//! single atomic store and readers can filter with a single atomic load.

use dpr_core::{Key, Value, Version};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel logical address meaning "no previous record".
pub const NONE_ADDRESS: u64 = u64::MAX;

const VERSION_MASK: u64 = (1 << 48) - 1;
const TOMBSTONE_BIT: u64 = 1 << 62;
const INVALID_BIT: u64 = 1 << 63;

/// Decoded view of a record's metadata word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// CPR version the record was written in.
    pub version: Version,
    /// True if the record is a delete marker.
    pub tombstone: bool,
    /// True if the record was invalidated by a rollback (§5.5 PURGE).
    pub invalid: bool,
}

impl RecordMeta {
    fn pack(self) -> u64 {
        let mut w = self.version.0 & VERSION_MASK;
        if self.tombstone {
            w |= TOMBSTONE_BIT;
        }
        if self.invalid {
            w |= INVALID_BIT;
        }
        w
    }

    fn unpack(w: u64) -> Self {
        RecordMeta {
            version: Version(w & VERSION_MASK),
            tombstone: w & TOMBSTONE_BIT != 0,
            invalid: w & INVALID_BIT != 0,
        }
    }
}

/// One record in the HybridLog.
///
/// `value` sits behind a lightweight rwlock: in-place updates in the mutable
/// region take the write lock for the duration of the copy, and the flusher
/// takes the read lock while serializing — giving torn-write-free fold-over
/// checkpoints without stopping writers globally.
pub struct Record {
    key: Key,
    value: RwLock<Value>,
    meta: AtomicU64,
    prev: AtomicU64,
    address: u64,
}

impl Record {
    /// Create a record at `address` written in `version`.
    #[must_use]
    pub fn new(key: Key, value: Value, version: Version, address: u64, tombstone: bool) -> Self {
        Record {
            key,
            value: RwLock::new(value),
            meta: AtomicU64::new(
                RecordMeta {
                    version,
                    tombstone,
                    invalid: false,
                }
                .pack(),
            ),
            prev: AtomicU64::new(NONE_ADDRESS),
            address,
        }
    }

    /// The record's key.
    #[must_use]
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// The record's logical address.
    #[must_use]
    pub fn address(&self) -> u64 {
        self.address
    }

    /// Snapshot the current value.
    #[must_use]
    pub fn read_value(&self) -> Value {
        self.value.read().clone()
    }

    /// Replace the value in place (caller must have verified the CPR
    /// in-place-update rules).
    pub fn write_value(&self, v: Value) {
        *self.value.write() = v;
    }

    /// Read-modify-write the value in place under the write lock, so the
    /// read and write are atomic with respect to other updaters.
    pub fn modify_value(&self, f: impl FnOnce(&Value) -> Value) {
        let mut guard = self.value.write();
        let new = f(&guard);
        *guard = new;
    }

    /// Decoded metadata.
    #[must_use]
    pub fn meta(&self) -> RecordMeta {
        RecordMeta::unpack(self.meta.load(Ordering::Acquire))
    }

    /// Mark the record invalid (rollback PURGE). Idempotent.
    pub fn invalidate(&self) {
        self.meta.fetch_or(INVALID_BIT, Ordering::AcqRel);
    }

    /// Previous record in this hash chain, or [`NONE_ADDRESS`].
    #[must_use]
    pub fn prev(&self) -> u64 {
        self.prev.load(Ordering::Acquire)
    }

    /// Set the chain predecessor. Only called by the inserting thread before
    /// the record is published in its bucket.
    pub fn set_prev(&self, prev: u64) {
        self.prev.store(prev, Ordering::Release);
    }

    /// Serialized byte size (for flush accounting).
    #[must_use]
    pub fn serialized_len(&self) -> usize {
        8 + 8 + 8 + 4 + 4 + self.key.len() + self.value.read().len()
    }

    /// Serialize into `out` for the durable log.
    ///
    /// Layout: `address u64 | meta u64 | prev u64 | key_len u32 | value_len
    /// u32 | key | value`, all little-endian. `prev` is written so hash
    /// chains can be traversed across the disk portion of the log. The value
    /// is snapshotted under its read lock so flush never observes a torn
    /// write.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let value = self.value.read();
        out.extend_from_slice(&self.address.to_le_bytes());
        out.extend_from_slice(&self.meta.load(Ordering::Acquire).to_le_bytes());
        out.extend_from_slice(&self.prev.load(Ordering::Acquire).to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(self.key.as_bytes());
        out.extend_from_slice(value.as_bytes());
    }

    /// Deserialize a record from `buf`, returning the record and bytes
    /// consumed, or `None` if `buf` is truncated.
    #[must_use]
    pub fn deserialize(buf: &[u8]) -> Option<(Record, usize)> {
        if buf.len() < 32 {
            return None;
        }
        let address = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let meta_word = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let prev = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let key_len = u32::from_le_bytes(buf[24..28].try_into().unwrap()) as usize;
        let val_len = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
        let total = 32 + key_len + val_len;
        if buf.len() < total {
            return None;
        }
        let key = Key(bytes::Bytes::copy_from_slice(&buf[32..32 + key_len]));
        let value = Value(bytes::Bytes::copy_from_slice(
            &buf[32 + key_len..32 + key_len + val_len],
        ));
        let meta = RecordMeta::unpack(meta_word);
        let rec = Record::new(key, value, meta.version, address, meta.tombstone);
        rec.set_prev(prev);
        if meta.invalid {
            rec.invalidate();
        }
        Some((rec, total))
    }
}

impl std::fmt::Debug for Record {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Record")
            .field("key", &self.key)
            .field("address", &self.address)
            .field("meta", &self.meta())
            .field("prev", &self.prev())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_packs_and_unpacks() {
        for (ts, inv) in [(false, false), (true, false), (false, true), (true, true)] {
            let m = RecordMeta {
                version: Version(123_456),
                tombstone: ts,
                invalid: inv,
            };
            assert_eq!(RecordMeta::unpack(m.pack()), m);
        }
    }

    #[test]
    fn invalidate_is_sticky_and_preserves_version() {
        let r = Record::new(Key::from_u64(1), Value::from_u64(2), Version(7), 0, false);
        r.invalidate();
        r.invalidate();
        let m = r.meta();
        assert!(m.invalid);
        assert_eq!(m.version, Version(7));
        assert!(!m.tombstone);
    }

    #[test]
    fn serialize_round_trip() {
        let r = Record::new(
            Key::from("some-key"),
            Value::from("some-value"),
            Version(9),
            42,
            true,
        );
        let mut buf = Vec::new();
        r.serialize_into(&mut buf);
        assert_eq!(buf.len(), r.serialized_len());
        let (back, used) = Record::deserialize(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back.key(), r.key());
        assert_eq!(back.read_value(), r.read_value());
        assert_eq!(back.meta(), r.meta());
        assert_eq!(back.address(), 42);
    }

    #[test]
    fn deserialize_rejects_truncation() {
        let r = Record::new(Key::from_u64(1), Value::from_u64(2), Version(1), 0, false);
        let mut buf = Vec::new();
        r.serialize_into(&mut buf);
        for cut in [0, 10, buf.len() - 1] {
            assert!(Record::deserialize(&buf[..cut]).is_none());
        }
    }

    #[test]
    fn modify_value_is_atomic_read_modify_write() {
        let r = Record::new(Key::from_u64(1), Value::from_u64(0), Version(1), 0, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        r.modify_value(|v| Value::from_u64(v.as_u64().unwrap() + 1));
                    }
                });
            }
        });
        assert_eq!(r.read_value().as_u64(), Some(4000));
    }
}
