//! The global system state shared by the checkpoint and rollback state
//! machines.
//!
//! FASTER threads "loosely coordinate to step through a series of global
//! transitions" (§5.5): the store keeps one packed [`SystemState`] word, and
//! every session keeps its last observed copy. Transitions fire only when
//! all sessions have observed the current state (or are idle and can be
//! advanced on their behalf), which is what makes checkpoints and rollbacks
//! non-blocking.

use dpr_core::Version;
use std::sync::atomic::{AtomicU64, Ordering};

/// Phases of the unified state machine.
///
/// `Rest → Prepare → InProgress → WaitFlush → Rest` is the CPR checkpoint
/// machine; `Rest → Throw → Purge → Rest` is the rollback machine of §5.5
/// (Fig. 8). At most one machine runs at a time, which is also what
/// "prevents concurrent checkpoints from occurring" during rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Normal operation.
    Rest = 0,
    /// Checkpoint requested; threads acknowledge while still in version `v`.
    Prepare = 1,
    /// Threads move to `v+1`; in-place updates of `v` records stop.
    InProgress = 2,
    /// The `v` prefix is sealed and being flushed.
    WaitFlush = 3,
    /// Rollback requested; threads move to `v+1` and readers start ignoring
    /// the lost version range.
    Throw = 4,
    /// Lost entries are being marked invalid in the log.
    Purge = 5,
}

impl Phase {
    fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Rest,
            1 => Phase::Prepare,
            2 => Phase::InProgress,
            3 => Phase::WaitFlush,
            4 => Phase::Throw,
            5 => Phase::Purge,
            _ => unreachable!("bad phase {v}"),
        }
    }
}

/// One observable state of the store: the phase plus the version operations
/// execute in while the store is in this state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemState {
    /// Current phase.
    pub phase: Phase,
    /// Version assigned to operations executed under this state.
    pub version: Version,
}

impl SystemState {
    /// Initial state: REST in version 1.
    #[must_use]
    pub fn initial() -> SystemState {
        SystemState {
            phase: Phase::Rest,
            version: Version::FIRST,
        }
    }

    /// Pack into a single word (phase in the top byte).
    #[must_use]
    pub fn pack(self) -> u64 {
        ((self.phase as u64) << 56) | (self.version.0 & ((1 << 56) - 1))
    }

    /// Unpack from a word.
    #[must_use]
    pub fn unpack(w: u64) -> SystemState {
        SystemState {
            phase: Phase::from_u8((w >> 56) as u8),
            version: Version(w & ((1 << 56) - 1)),
        }
    }
}

/// Atomic cell holding the global [`SystemState`].
#[derive(Debug)]
pub struct GlobalState(AtomicU64);

impl GlobalState {
    /// New cell at the initial state.
    #[must_use]
    pub fn new() -> Self {
        GlobalState(AtomicU64::new(SystemState::initial().pack()))
    }

    /// Load the current state.
    #[must_use]
    pub fn load(&self) -> SystemState {
        SystemState::unpack(self.0.load(Ordering::Acquire))
    }

    /// Store a new state.
    pub fn store(&self, s: SystemState) {
        self.0.store(s.pack(), Ordering::Release);
    }
}

impl Default for GlobalState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trip_all_phases() {
        for phase in [
            Phase::Rest,
            Phase::Prepare,
            Phase::InProgress,
            Phase::WaitFlush,
            Phase::Throw,
            Phase::Purge,
        ] {
            let s = SystemState {
                phase,
                version: Version(123_456_789),
            };
            assert_eq!(SystemState::unpack(s.pack()), s);
        }
    }

    #[test]
    fn initial_state_is_rest_v1() {
        let g = GlobalState::new();
        let s = g.load();
        assert_eq!(s.phase, Phase::Rest);
        assert_eq!(s.version, Version(1));
    }

    #[test]
    fn store_load_round_trip() {
        let g = GlobalState::new();
        let s = SystemState {
            phase: Phase::Throw,
            version: Version(9),
        };
        g.store(s);
        assert_eq!(g.load(), s);
    }
}
