//! Metric accessors for the FASTER-style store.
//!
//! Every metric defined here is documented (name, unit, paper
//! cross-reference) in `docs/OBSERVABILITY.md`; keep the two in sync.

use crate::state::Phase;
use dpr_core::Version;
use dpr_telemetry::metric_fn;

metric_fn!(
    /// CPR checkpoints completed (§5.4).
    pub(crate) fn checkpoints() -> Counter =
        ("dpr_faster_checkpoints_total", Count,
         "CPR checkpoints completed (Rest -> ... -> Rest cycles)")
);

metric_fn!(
    /// Time spent in the Prepare phase (waiting for all sessions to observe).
    pub(crate) fn phase_prepare() -> Histogram =
        ("dpr_faster_checkpoint_prepare_us", Micros,
         "Time a checkpoint spent in Prepare (sessions acknowledging in the old version)")
);

metric_fn!(
    /// Time spent in the InProgress phase (sessions moving to the new version).
    pub(crate) fn phase_in_progress() -> Histogram =
        ("dpr_faster_checkpoint_in_progress_us", Micros,
         "Time a checkpoint spent in InProgress (sessions moving to the new version)")
);

metric_fn!(
    /// Time spent in WaitFlush (sealing and flushing the committed prefix).
    pub(crate) fn phase_wait_flush() -> Histogram =
        ("dpr_faster_checkpoint_wait_flush_us", Micros,
         "Time a checkpoint spent in WaitFlush (flush or snapshot capture + manifest write)")
);

metric_fn!(
    /// Whole-checkpoint duration, Rest to Rest.
    pub(crate) fn checkpoint_total() -> Histogram =
        ("dpr_faster_checkpoint_total_us", Micros,
         "Whole-checkpoint duration from the Prepare transition back to Rest")
);

metric_fn!(
    /// Rollback THROW transitions (§5.5 non-blocking rollback, first half).
    pub(crate) fn rollback_throw() -> Counter =
        ("dpr_faster_rollback_throw_total", Count,
         "Rollback Throw phases entered (lost version range published, PENDING ops dropped)")
);

metric_fn!(
    /// Rollback PURGE completions (§5.5 non-blocking rollback, second half).
    pub(crate) fn rollback_purge() -> Counter =
        ("dpr_faster_rollback_purge_total", Count,
         "Rollback Purge phases completed (lost log entries invalidated)")
);

metric_fn!(
    /// Operations currently PENDING on device I/O (relaxed CPR, §5.4).
    pub(crate) fn pending_ops() -> Gauge =
        ("dpr_faster_pending_ops", Ops,
         "Operations currently PENDING on device I/O across all sessions")
);

/// Record a CPR state-machine transition into the span ring.
pub(crate) fn phase_span(from: Phase, to: Phase, version: Version) {
    dpr_telemetry::global().span("dpr-faster", "phase", || {
        format!("{from:?} -> {to:?} (v{})", version.0)
    });
}
