//! The HybridLog: a paged, address-ordered record log spanning memory and a
//! storage device.
//!
//! Logical addresses are record sequence numbers. The address space is
//! divided by three monotone pointers:
//!
//! ```text
//!   0 ........ head ........ read_only ........ tail
//!   [ on disk ][ in-memory, read-only ][ mutable  ]
//! ```
//!
//! * `tail` — next address to allocate; appends are a `fetch_add`.
//! * `read_only` — records below may not be updated in place (they are part
//!   of a captured checkpoint); updates copy to the tail (RCU).
//! * `head` — records below have been evicted from memory and live only on
//!   the device; touching them makes an operation go `PENDING`.
//! * `flushed` (≤ `tail`, ≥ `head`) — records below have been serialized
//!   and flushed to the device.
//!
//! A *fold-over checkpoint* simply advances `read_only` to the tail and
//! flushes — the in-memory mutable region "folds over" into the durable
//! prefix, exactly the checkpoint variant used in the paper's evaluation.

use crate::record::Record;
use dpr_core::{DprError, Key, Result, Value, Version};
use dpr_storage::LogDevice;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Records per page.
const PAGE_RECORDS: usize = 4096;

enum PageState {
    InMemory(Box<[OnceLock<Arc<Record>>]>),
    Evicted,
}

struct Page {
    state: RwLock<PageState>,
}

impl Page {
    fn new() -> Self {
        let slots = (0..PAGE_RECORDS)
            .map(|_| OnceLock::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Page {
            state: RwLock::new(PageState::InMemory(slots)),
        }
    }
}

/// Result of looking up a record by address.
pub enum RecordRef {
    /// Record resident in memory.
    Resident(Arc<Record>),
    /// Record evicted to the device; the caller must go PENDING and use
    /// [`RecordLog::read_from_device`].
    OnDisk,
}

/// Dense index of flushed records: record address → (device offset,
/// serialized length). Record addresses are allocated densely and flushed
/// strictly in order, so the flushed span is always one contiguous address
/// range `[base, base + entries.len())`. A deque keeps both ends cheap:
/// flushes push onto the back (amortized allocation-free), device
/// truncation pops from the front.
#[derive(Default)]
struct DiskIndex {
    base: u64,
    entries: std::collections::VecDeque<(u64, u32)>,
}

impl DiskIndex {
    fn get(&self, addr: u64) -> Option<(u64, u32)> {
        let i = addr.checked_sub(self.base)?;
        self.entries.get(i as usize).copied()
    }

    fn push(&mut self, addr: u64, entry: (u64, u32)) {
        if self.entries.is_empty() {
            self.base = addr;
        }
        debug_assert_eq!(
            addr,
            self.base + self.entries.len() as u64,
            "non-contiguous flush address"
        );
        self.entries.push_back(entry);
    }

    /// Drop entries for addresses below `addr`.
    fn truncate_below(&mut self, addr: u64) {
        while self.base < addr {
            if self.entries.pop_front().is_none() {
                self.base = addr;
                break;
            }
            self.base += 1;
        }
    }
}

/// Reusable buffers for [`RecordLog::flush_until`], owned by the flush lock
/// so a single flusher at a time reuses them across calls.
#[derive(Default)]
struct FlushScratch {
    /// Serialized record bytes for the current flush span.
    buf: Vec<u8>,
    /// `(record address, relative offset, serialized length)` per record.
    offsets: Vec<(u64, u64, u32)>,
}

/// The paged record log.
pub struct RecordLog {
    pages: RwLock<Vec<Arc<Page>>>,
    tail: AtomicU64,
    read_only: AtomicU64,
    head: AtomicU64,
    flushed: AtomicU64,
    device: Arc<dyn LogDevice>,
    /// record address → (device offset, serialized length)
    disk_index: RwLock<DiskIndex>,
    /// Serializes flushers and holds the reusable serialization buffers —
    /// continuous flush runs every tick, so per-call `Vec` churn adds up.
    flush_lock: Mutex<FlushScratch>,
    /// Maximum records kept in memory before eviction kicks in.
    memory_budget: usize,
    /// Device offset at which this log incarnation's address 0 begins
    /// (non-zero after a snapshot recovery left old bytes on the device).
    scan_base: u64,
    /// Maximum unflushed records before appends apply backpressure
    /// (`u64::MAX` = unbounded). Models HybridLog's bounded in-memory
    /// buffer: a slow device eventually stalls the tail.
    unflushed_limit: AtomicU64,
}

impl RecordLog {
    /// Create an empty log over `device`, keeping at most `memory_budget`
    /// records resident.
    #[must_use]
    pub fn new(device: Arc<dyn LogDevice>, memory_budget: usize) -> Self {
        Self::with_scan_base(device, memory_budget, 0)
    }

    /// Create an empty log whose address 0 maps to device offset `base`
    /// (used after snapshot recovery, where older device bytes are dead).
    #[must_use]
    pub fn with_scan_base(device: Arc<dyn LogDevice>, memory_budget: usize, base: u64) -> Self {
        RecordLog {
            pages: RwLock::new(Vec::new()),
            tail: AtomicU64::new(0),
            read_only: AtomicU64::new(0),
            head: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
            device,
            disk_index: RwLock::new(DiskIndex::default()),
            flush_lock: Mutex::new(FlushScratch::default()),
            memory_budget: memory_budget.max(2 * PAGE_RECORDS),
            scan_base: base,
            unflushed_limit: AtomicU64::new(u64::MAX),
        }
    }

    /// Bound the unflushed (volatile) region to `limit` records; appends
    /// beyond it block until the flusher catches up.
    pub fn set_unflushed_limit(&self, limit: u64) {
        self.unflushed_limit.store(limit.max(1), Ordering::Release);
    }

    /// Advance the read-only boundary toward `addr` (rolling mutable-region
    /// lag; fetch-max, clamped to the tail). Records below become
    /// read-copy-update-only and thus safe to flush continuously.
    pub fn advance_read_only(&self, addr: u64) -> u64 {
        let target = addr.min(self.tail());
        self.read_only.fetch_max(target, Ordering::AcqRel);
        self.read_only()
    }

    /// Device offset where this incarnation's serialized records begin.
    #[must_use]
    pub fn scan_base(&self) -> u64 {
        self.scan_base
    }

    /// Next address to allocate.
    #[must_use]
    pub fn tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    /// Read-only boundary: records below may not be updated in place.
    #[must_use]
    pub fn read_only(&self) -> u64 {
        self.read_only.load(Ordering::Acquire)
    }

    /// First in-memory address.
    #[must_use]
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Flush frontier: records below are durable.
    #[must_use]
    pub fn flushed(&self) -> u64 {
        self.flushed.load(Ordering::Acquire)
    }

    /// Number of records currently resident in memory.
    #[must_use]
    pub fn resident_records(&self) -> u64 {
        self.tail() - self.head()
    }

    fn ensure_page(&self, page_idx: usize) -> Arc<Page> {
        {
            let pages = self.pages.read();
            if let Some(p) = pages.get(page_idx) {
                return p.clone();
            }
        }
        let mut pages = self.pages.write();
        while pages.len() <= page_idx {
            pages.push(Arc::new(Page::new()));
        }
        pages[page_idx].clone()
    }

    /// Append a new record, returning it. The record is placed in the log
    /// but not yet linked into any hash chain — the caller publishes it.
    pub fn append(&self, key: Key, value: Value, version: Version, tombstone: bool) -> Arc<Record> {
        // Backpressure: with a bounded volatile region, the tail cannot run
        // ahead of the flusher indefinitely (the paper's checkpoint
        // "thrashing" regime is exactly this stall).
        let limit = self.unflushed_limit.load(Ordering::Acquire);
        if limit != u64::MAX {
            while self
                .tail
                .load(Ordering::Acquire)
                .saturating_sub(self.flushed())
                >= limit
            {
                std::thread::sleep(std::time::Duration::from_micros(20));
            }
        }
        let addr = self.tail.fetch_add(1, Ordering::AcqRel);
        let page = self.ensure_page((addr as usize) / PAGE_RECORDS);
        let record = Arc::new(Record::new(key, value, version, addr, tombstone));
        let state = page.state.read();
        match &*state {
            PageState::InMemory(slots) => {
                assert!(
                    slots[(addr as usize) % PAGE_RECORDS]
                        .set(record.clone())
                        .is_ok(),
                    "address allocated twice"
                );
            }
            PageState::Evicted => unreachable!("appending into evicted page"),
        }
        record
    }

    /// Look up the record at `addr`.
    pub fn get(&self, addr: u64) -> Result<RecordRef> {
        if addr >= self.tail() {
            return Err(DprError::Invalid(format!("address {addr} beyond tail")));
        }
        let page = {
            let pages = self.pages.read();
            pages
                .get((addr as usize) / PAGE_RECORDS)
                .cloned()
                .ok_or_else(|| DprError::Invalid(format!("no page for {addr}")))?
        };
        let state = page.state.read();
        match &*state {
            PageState::InMemory(slots) => {
                match slots[(addr as usize) % PAGE_RECORDS].get() {
                    Some(r) => Ok(RecordRef::Resident(r.clone())),
                    // Slot allocated but record not yet stored: treat as a
                    // transient miss; callers retry. This window is a few
                    // instructions wide.
                    None => Err(DprError::Invalid(format!("address {addr} not ready"))),
                }
            }
            PageState::Evicted => Ok(RecordRef::OnDisk),
        }
    }

    /// Advance the read-only boundary to the current tail (fold-over) and
    /// return the captured boundary.
    pub fn seal_to_tail(&self) -> u64 {
        let tail = self.tail();
        self.read_only.fetch_max(tail, Ordering::AcqRel);
        tail
    }

    /// Serialize and flush all records in `[flushed, until)` to the device.
    /// Returns the new flush frontier. Serialized records are written in
    /// address order; the durable layout is a sequential scan.
    pub fn flush_until(&self, until: u64) -> Result<u64> {
        let mut scratch = self.flush_lock.lock();
        let start = self.flushed();
        let until = until.min(self.tail());
        if until <= start {
            return Ok(start);
        }
        let FlushScratch { buf, offsets } = &mut *scratch;
        buf.clear();
        offsets.clear();
        offsets.reserve((until - start) as usize);
        let base = {
            // Serialize each record, tracking its relative offset.
            for addr in start..until {
                // Spin out the tiny publish window between address
                // allocation and slot store.
                let rec = loop {
                    match self.get(addr) {
                        Ok(RecordRef::Resident(r)) => break r,
                        Ok(RecordRef::OnDisk) => {
                            return Err(DprError::Invalid(format!(
                                "record {addr} evicted before flush"
                            )))
                        }
                        Err(_) => std::hint::spin_loop(),
                    }
                };
                let off = buf.len() as u64;
                rec.serialize_into(buf);
                offsets.push((addr, off, (buf.len() as u64 - off) as u32));
            }
            self.device.append(buf)?
        };
        self.device.flush()?;
        {
            let mut idx = self.disk_index.write();
            for &(addr, off, len) in offsets.iter() {
                idx.push(addr, (base + off, len));
            }
        }
        self.flushed.fetch_max(until, Ordering::AcqRel);
        Ok(self.flushed())
    }

    /// Read a record back from the device (PENDING completion path).
    pub fn read_from_device(&self, addr: u64) -> Result<Record> {
        let (off, len) = self
            .disk_index
            .read()
            .get(addr)
            .ok_or_else(|| DprError::Storage(format!("record {addr} not on device")))?;
        let mut buf = vec![0u8; len as usize];
        dpr_storage::device::read_exact(self.device.as_ref(), off, &mut buf)?;
        let (rec, _) = Record::deserialize(&buf)
            .ok_or_else(|| DprError::Storage(format!("corrupt record at {off}")))?;
        if rec.address() != addr {
            return Err(DprError::Storage(format!(
                "record address mismatch: wanted {addr}, found {}",
                rec.address()
            )));
        }
        Ok(rec)
    }

    /// Evict whole pages below `new_head` from memory. Only flushed records
    /// may be evicted; `new_head` is clamped to the flush frontier and page
    /// alignment.
    pub fn evict_to(&self, new_head: u64) -> u64 {
        let target = new_head.min(self.flushed()).min(self.read_only()) / PAGE_RECORDS as u64
            * PAGE_RECORDS as u64;
        let cur = self.head();
        if target <= cur {
            return cur;
        }
        let pages = self.pages.read();
        for page_idx in (cur as usize / PAGE_RECORDS)..(target as usize / PAGE_RECORDS) {
            if let Some(page) = pages.get(page_idx) {
                *page.state.write() = PageState::Evicted;
            }
        }
        self.head.fetch_max(target, Ordering::AcqRel);
        self.head()
    }

    /// If the resident set exceeds the memory budget, evict the oldest
    /// flushed pages. Returns the head after any eviction.
    pub fn maybe_evict(&self) -> u64 {
        let resident = self.resident_records();
        if resident as usize > self.memory_budget {
            let excess = resident as usize - self.memory_budget / 2;
            self.evict_to(self.head() + excess as u64)
        } else {
            self.head()
        }
    }

    /// Invalidate every in-memory record whose version lies in
    /// `(v_safe, v_max]` — the PURGE step of the rollback state machine.
    /// Returns how many records were invalidated.
    pub fn purge_versions(&self, v_safe: Version, v_max: Version) -> u64 {
        let mut count = 0;
        for addr in self.head()..self.tail() {
            if let Ok(RecordRef::Resident(rec)) = self.get(addr) {
                let m = rec.meta();
                if !m.invalid && m.version > v_safe && m.version <= v_max {
                    rec.invalidate();
                    count += 1;
                }
            }
        }
        count
    }

    /// Garbage-collect the device bytes of records below `addr` (§5.5:
    /// "D-FASTER only garbage-collects FASTER log entries that are in the
    /// DPR guarantee"). Requires the records to already be evicted from
    /// memory (otherwise a later eviction would lose them). Returns the
    /// first device offset retained.
    pub fn truncate_device_below(&self, addr: u64) -> Result<u64> {
        if addr > self.head() {
            return Err(DprError::Invalid(format!(
                "cannot GC below {addr}: head at {} (records still resident)",
                self.head()
            )));
        }
        let mut idx = self.disk_index.write();
        let offset = match idx.get(addr) {
            Some((off, _)) => off,
            // Nothing flushed at/after addr yet → nothing to truncate.
            None => return Ok(0),
        };
        self.device.truncate_before(offset)?;
        idx.truncate_below(addr);
        Ok(offset)
    }

    /// Rebuild a log from the device's durable prefix (crash recovery).
    ///
    /// Scans serialized records sequentially, placing each at its original
    /// address, stopping at `until_address`. Records with version greater
    /// than `max_version` or inside a purged range are placed but marked
    /// invalid, so chains stay structurally intact while their data is
    /// unreachable.
    pub fn recover(
        device: Arc<dyn LogDevice>,
        memory_budget: usize,
        until_address: u64,
        max_version: Version,
        purged: &[(Version, Version)],
        scan_from: u64,
    ) -> Result<(Self, Vec<Arc<Record>>)> {
        let log = RecordLog::with_scan_base(device.clone(), memory_budget, scan_from);
        let durable = device.durable_frontier();
        let mut recovered = Vec::new();
        let mut offset = scan_from;
        let mut buf = vec![0u8; 1 << 16];
        let mut carry: Vec<u8> = Vec::new();
        'scan: while offset < durable && (recovered.len() as u64) < until_address {
            let n = device.read(offset, &mut buf)?;
            if n == 0 {
                break;
            }
            carry.extend_from_slice(&buf[..n]);
            offset += n as u64;
            let mut consumed = 0;
            while let Some((rec, used)) = Record::deserialize(&carry[consumed..]) {
                consumed += used;
                let expected = recovered.len() as u64;
                if rec.address() != expected {
                    return Err(DprError::Storage(format!(
                        "log scan out of order: wanted address {expected}, found {}",
                        rec.address()
                    )));
                }
                let m = rec.meta();
                let dead = m.version > max_version
                    || purged
                        .iter()
                        .any(|&(lo, hi)| m.version > lo && m.version <= hi);
                let placed =
                    log.append(rec.key().clone(), rec.read_value(), m.version, m.tombstone);
                if m.invalid || dead {
                    placed.invalidate();
                }
                recovered.push(placed);
                if recovered.len() as u64 >= until_address {
                    break 'scan;
                }
            }
            carry.drain(..consumed);
        }
        // Everything recovered is durable already and read-only.
        let tail = log.tail();
        log.flushed.store(tail, Ordering::Release);
        log.read_only.store(tail, Ordering::Release);
        // Rebuild the disk index by re-serializing lengths (offsets are a
        // sequential prefix; recompute from sizes).
        {
            let mut idx = log.disk_index.write();
            let mut off = scan_from;
            for rec in &recovered {
                let len = rec.serialized_len() as u64;
                idx.push(rec.address(), (off, len as u32));
                off += len;
            }
        }
        Ok((log, recovered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_storage::MemLogDevice;

    fn mem_log(budget: usize) -> RecordLog {
        RecordLog::new(Arc::new(MemLogDevice::null()), budget)
    }

    #[test]
    fn append_assigns_sequential_addresses() {
        let log = mem_log(1 << 20);
        for i in 0..10u64 {
            let r = log.append(Key::from_u64(i), Value::from_u64(i), Version(1), false);
            assert_eq!(r.address(), i);
        }
        assert_eq!(log.tail(), 10);
    }

    #[test]
    fn get_resident_record() {
        let log = mem_log(1 << 20);
        log.append(Key::from_u64(7), Value::from_u64(70), Version(1), false);
        match log.get(0).unwrap() {
            RecordRef::Resident(r) => assert_eq!(r.read_value().as_u64(), Some(70)),
            RecordRef::OnDisk => panic!("should be resident"),
        }
        assert!(log.get(5).is_err());
    }

    #[test]
    fn flush_then_read_from_device() {
        let log = mem_log(1 << 20);
        for i in 0..100u64 {
            log.append(Key::from_u64(i), Value::from_u64(i * 2), Version(1), false);
        }
        log.seal_to_tail();
        assert_eq!(log.flush_until(100).unwrap(), 100);
        let rec = log.read_from_device(42).unwrap();
        assert_eq!(rec.read_value().as_u64(), Some(84));
        assert_eq!(rec.address(), 42);
    }

    #[test]
    fn eviction_respects_flush_frontier_and_pages() {
        let log = mem_log(1 << 20);
        let n = 2 * PAGE_RECORDS as u64 + 100;
        for i in 0..n {
            log.append(Key::from_u64(i), Value::from_u64(i), Version(1), false);
        }
        // Nothing flushed → nothing evictable.
        assert_eq!(log.evict_to(n), 0);
        log.seal_to_tail();
        log.flush_until(n).unwrap();
        let head = log.evict_to(PAGE_RECORDS as u64 + 10);
        assert_eq!(head, PAGE_RECORDS as u64, "page aligned");
        match log.get(0).unwrap() {
            RecordRef::OnDisk => {}
            RecordRef::Resident(_) => panic!("evicted record still resident"),
        }
        // Evicted records readable from device.
        let r = log.read_from_device(0).unwrap();
        assert_eq!(r.read_value().as_u64(), Some(0));
    }

    #[test]
    fn purge_invalidates_version_range_only() {
        let log = mem_log(1 << 20);
        for v in 1..=5u64 {
            for i in 0..10u64 {
                log.append(Key::from_u64(i), Value::from_u64(v), Version(v), false);
            }
        }
        // Range (2, 4] covers versions 3 and 4 only: 20 records.
        let purged = log.purge_versions(Version(2), Version(4));
        assert_eq!(purged, 20);
        for addr in 0..log.tail() {
            if let RecordRef::Resident(r) = log.get(addr).unwrap() {
                let m = r.meta();
                let in_range = m.version > Version(2) && m.version <= Version(4);
                assert_eq!(m.invalid, in_range, "addr {addr}");
            }
        }
    }

    #[test]
    fn recovery_round_trip_skips_over_version_records() {
        let device = Arc::new(MemLogDevice::null());
        {
            let log = RecordLog::new(device.clone(), 1 << 20);
            for i in 0..50u64 {
                log.append(Key::from_u64(i), Value::from_u64(i), Version(1), false);
            }
            for i in 0..50u64 {
                log.append(
                    Key::from_u64(i),
                    Value::from_u64(i + 1000),
                    Version(2),
                    false,
                );
            }
            log.seal_to_tail();
            log.flush_until(100).unwrap();
        }
        // Recover only version ≤ 1, up to the full flushed prefix.
        let (log, recs) = RecordLog::recover(device, 1 << 20, 100, Version(1), &[], 0).unwrap();
        assert_eq!(recs.len(), 100);
        assert_eq!(log.tail(), 100);
        let live = recs.iter().filter(|r| !r.meta().invalid).count();
        assert_eq!(live, 50, "version-2 records invalidated");
        // until_address truncates the scan.
    }

    #[test]
    fn recovery_honors_until_address() {
        let device = Arc::new(MemLogDevice::null());
        {
            let log = RecordLog::new(device.clone(), 1 << 20);
            for i in 0..80u64 {
                log.append(Key::from_u64(i), Value::from_u64(i), Version(1), false);
            }
            log.seal_to_tail();
            log.flush_until(80).unwrap();
        }
        let (log, recs) = RecordLog::recover(device, 1 << 20, 30, Version(9), &[], 0).unwrap();
        assert_eq!(recs.len(), 30);
        assert_eq!(log.tail(), 30);
    }

    #[test]
    fn recovery_honors_purged_ranges() {
        let device = Arc::new(MemLogDevice::null());
        {
            let log = RecordLog::new(device.clone(), 1 << 20);
            for v in 1..=4u64 {
                log.append(Key::from_u64(v), Value::from_u64(v), Version(v), false);
            }
            log.seal_to_tail();
            log.flush_until(4).unwrap();
        }
        let (_, recs) = RecordLog::recover(
            device,
            1 << 20,
            4,
            Version(4),
            &[(Version(1), Version(2))],
            0,
        )
        .unwrap();
        let live: Vec<u64> = recs
            .iter()
            .filter(|r| !r.meta().invalid)
            .map(|r| r.meta().version.0)
            .collect();
        assert_eq!(live, vec![1, 3, 4], "versions 2 purged, (1,2] range");
    }
}
