//! # dpr-faster
//!
//! A from-scratch, FASTER-style concurrent key-value cache-store — the
//! `StateObject` implementation D-FASTER builds on (§5).
//!
//! Architecture, following the paper and the FASTER/CPR lineage it cites:
//!
//! * a **hash index** of lock-free buckets mapping key hashes to the head of
//!   a per-bucket chain of records ([`index`]);
//! * a **HybridLog** of records identified by monotonically increasing
//!   logical addresses, spanning a mutable in-memory region (in-place
//!   updates), a read-only in-memory region (read-copy-update), and stable
//!   storage ([`log`]);
//! * **sessions** — sequential logical threads of execution with serial
//!   numbers and relaxed-CPR `PENDING` operations (§5.4) ([`session`]);
//! * a **CPR checkpoint state machine** (`REST → PREPARE → IN_PROGRESS →
//!   WAIT_FLUSH → REST`) providing non-blocking fold-over checkpoints, and
//!   the **rollback state machine** (`REST → THROW → PURGE → REST`) of §5.5
//!   providing non-blocking `Restore()` ([`state`], [`store`]);
//! * **crash recovery** from a checkpoint manifest + the durable log prefix
//!   ([`checkpoint`]).
//!
//! The store exposes exactly the paper's `StateObject` API surface: `Op()`
//! (read/upsert/RMW/delete returning *uncommitted* results), `Commit()`
//! (request a checkpoint; completed checkpoints carry a commit descriptor
//! per session), and `Restore()` (non-blocking rollback of live state, or
//! crash-restart recovery).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod index;
pub mod log;
mod metrics;
pub mod record;
pub mod session;
pub mod state;
pub mod store;

pub use checkpoint::{CheckpointManifest, CommitPoint};
pub use log::RecordLog;
pub use record::{Record, RecordMeta, NONE_ADDRESS};
pub use session::{OpOutcome, PendingToken, Session};
pub use state::{Phase, SystemState};
pub use store::{CheckpointInfo, FasterConfig, FasterKv};
