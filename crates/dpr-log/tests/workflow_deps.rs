//! Protocol-level reproduction of the paper's Example 2: a workflow whose
//! operators pass messages through DPR-wrapped shared logs. A downstream
//! dequeue may observe an upstream enqueue before it commits, and the
//! resulting output can never commit unless its whole causal prefix does.

use bytes::Bytes;
use dpr_core::{SessionId, ShardId, Token, Version};
use dpr_log::{ConsumerId, SharedLog};
use dpr_metadata::{MetadataStore, SimulatedSqlStore};
use dpr_storage::{MemBlobStore, MemLogDevice};
use libdpr::{DprClientSession, DprFinder, ExactFinder, StateObject};
use std::sync::Arc;

fn log(shard: u32) -> SharedLog {
    SharedLog::new(
        ShardId(shard),
        Arc::new(MemLogDevice::null()),
        Arc::new(MemBlobStore::new()),
    )
}

/// Report one shard's completed commits to the finder with the given deps.
fn pump(finder: &dyn DprFinder, so: &SharedLog, deps: Vec<Token>) {
    for d in so.take_commits() {
        finder
            .report_commit(Token::new(so.shard(), d.version), deps.clone())
            .unwrap();
    }
}

#[test]
fn downstream_output_cannot_commit_before_upstream_input() {
    let meta = Arc::new(SimulatedSqlStore::new());
    meta.register_worker(ShardId(0)).unwrap();
    meta.register_worker(ShardId(1)).unwrap();
    let finder = ExactFinder::new(meta.clone());

    let upstream = log(0); // queue between source and operator
    let downstream = log(1); // queue between operator and sink
    let mut operator = DprClientSession::new(SessionId(1));

    // Source enqueues into the upstream log (uncommitted).
    let (_, v_up) = upstream.enqueue(Bytes::from_static(b"input"));

    // The operator dequeues the *uncommitted* input and enqueues its output
    // downstream; its session carries the dependency.
    let h1 = operator.begin_batch(ShardId(0), 1).unwrap();
    let (got, v_read) = upstream.poll(ConsumerId(1), 1);
    assert_eq!(got.len(), 1, "sees the enqueue before commit");
    operator
        .process_reply(&libdpr::BatchReply {
            shard: ShardId(0),
            world_line: Default::default(),
            version: v_read,
            first_serial: h1.first_serial,
            op_count: 1,
        })
        .unwrap();
    let h2 = operator.begin_batch(ShardId(1), 1).unwrap();
    assert_eq!(
        h2.deps,
        vec![Token::new(ShardId(0), v_read)],
        "output batch declares its dependency on the input version"
    );
    let (_, v_down) = downstream.enqueue(Bytes::from_static(b"output"));
    operator
        .process_reply(&libdpr::BatchReply {
            shard: ShardId(1),
            world_line: Default::default(),
            version: v_down,
            first_serial: h2.first_serial,
            op_count: 1,
        })
        .unwrap();

    // The downstream shard commits its version FIRST — but the DPR cut must
    // hold it back because the upstream input is still volatile.
    assert!(downstream.request_commit(None));
    pump(&finder, &downstream, h2.deps.clone());
    finder.refresh().unwrap();
    let cut = finder.current_cut().unwrap();
    assert_eq!(
        cut[&ShardId(1)],
        Version::ZERO,
        "output version withheld from the cut until input commits"
    );
    assert_eq!(operator.refresh_commit(&cut), 0);

    // Upstream commits; now both enter the cut and the operator's whole
    // prefix commits.
    assert!(upstream.request_commit(None));
    pump(&finder, &upstream, vec![]);
    finder.refresh().unwrap();
    let cut = finder.current_cut().unwrap();
    assert!(cut[&ShardId(0)] >= v_up);
    assert!(cut[&ShardId(1)] >= v_down);
    assert_eq!(operator.refresh_commit(&cut), 2, "both ops committed");
}

#[test]
fn rollback_erases_dequeue_with_its_enqueue() {
    // If the input is lost to a failure, the consumer offset movement that
    // read it must roll back too — otherwise the operator would silently
    // skip the re-delivered input.
    let upstream = log(0);
    upstream.enqueue(Bytes::from_static(b"committed"));
    upstream.request_commit(None);
    upstream.take_commits();

    // Uncommitted input read by the operator.
    upstream.enqueue(Bytes::from_static(b"volatile"));
    let (got, _) = upstream.poll(ConsumerId(7), 10);
    assert_eq!(got.len(), 2);

    // Failure: roll back to v1.
    upstream.restore(Version(1)).unwrap();
    assert_eq!(upstream.len(), 1);
    assert_eq!(
        upstream.consumer_offset(ConsumerId(7)),
        0,
        "offset restored to the v1 boundary (before any poll in v1 committed)"
    );
    // Re-delivery works: the committed entry is polled again.
    let (redelivered, _) = upstream.poll(ConsumerId(7), 10);
    assert_eq!(redelivered.len(), 1);
    assert_eq!(redelivered[0].payload, Bytes::from_static(b"committed"));
}
