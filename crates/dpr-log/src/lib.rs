//! # dpr-log
//!
//! A Kafka-like persistent shared log as a DPR `StateObject` — the third
//! kind of cache-store the paper names ("logging systems such as Kafka",
//! §1) and the substrate of its serverless-workflow example (Example 2).
//!
//! One [`SharedLog`] is one shard (a topic partition): producers `enqueue`
//! entries that become visible to consumers *immediately*, before
//! durability; `Commit()` seals the current version by flushing the entry
//! prefix to the device; `Restore()` truncates back to a committed version.
//! Consumer offsets are part of the recovered state: a dequeue that read an
//! uncommitted entry is itself uncommitted, and rolls back with it —
//! exactly the dependency Example 2 relies on.

#![warn(missing_docs)]

use bytes::Bytes;
use dpr_core::{DprError, Result, ShardId, Version};
use dpr_storage::{BlobStore, LogDevice};
use libdpr::{CommitDescriptor, StateObject};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A consumer group identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConsumerId(pub u64);

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Dense offset within this log.
    pub offset: u64,
    /// Version the entry was enqueued in (its commit unit).
    pub version: Version,
    /// Payload bytes.
    pub payload: Bytes,
}

#[derive(Debug, Serialize, Deserialize)]
struct LogManifest {
    version: Version,
    /// One past the last entry offset included in this version.
    until_offset: u64,
    /// Consumer offsets captured at the version boundary.
    consumers: BTreeMap<ConsumerId, u64>,
}

impl LogManifest {
    fn blob_name(version: Version) -> String {
        format!("log-chkpt-{:020}", version.0)
    }
}

struct LogInner {
    entries: Vec<Entry>,
    consumers: BTreeMap<ConsumerId, u64>,
    /// Entry offset up to which the device holds serialized entries.
    flushed_entries: u64,
    /// Versions sealed but whose flush has not completed (version → until).
    sealing: BTreeMap<Version, u64>,
    completed: Vec<CommitDescriptor>,
}

/// A Kafka-like shared log shard with DPR semantics.
///
/// ```
/// use dpr_log::{ConsumerId, SharedLog};
/// use dpr_core::ShardId;
/// use dpr_storage::{MemBlobStore, MemLogDevice};
/// use libdpr::StateObject;
/// use std::sync::Arc;
///
/// let log = SharedLog::new(
///     ShardId(0),
///     Arc::new(MemLogDevice::null()),
///     Arc::new(MemBlobStore::new()),
/// );
/// log.enqueue(bytes::Bytes::from_static(b"hello"));
/// // Visible to consumers before commit:
/// let (entries, _) = log.poll(ConsumerId(1), 10);
/// assert_eq!(entries.len(), 1);
/// // Committed lazily:
/// log.request_commit(None);
/// assert_eq!(log.take_commits().len(), 1);
/// ```
pub struct SharedLog {
    shard: ShardId,
    device: Arc<dyn LogDevice>,
    blobs: Arc<dyn BlobStore>,
    inner: Mutex<LogInner>,
    current_version: AtomicU64,
    durable_version: AtomicU64,
}

fn encode_entry(e: &Entry, out: &mut Vec<u8>) {
    out.extend_from_slice(&e.offset.to_le_bytes());
    out.extend_from_slice(&e.version.0.to_le_bytes());
    out.extend_from_slice(&(e.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&e.payload);
}

fn decode_entry(buf: &[u8]) -> Option<(Entry, usize)> {
    if buf.len() < 20 {
        return None;
    }
    let offset = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    let version = Version(u64::from_le_bytes(buf[8..16].try_into().unwrap()));
    let len = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
    if buf.len() < 20 + len {
        return None;
    }
    Some((
        Entry {
            offset,
            version,
            payload: Bytes::copy_from_slice(&buf[20..20 + len]),
        },
        20 + len,
    ))
}

impl SharedLog {
    /// Create an empty log shard.
    pub fn new(shard: ShardId, device: Arc<dyn LogDevice>, blobs: Arc<dyn BlobStore>) -> Self {
        SharedLog {
            shard,
            device,
            blobs,
            inner: Mutex::new(LogInner {
                entries: Vec::new(),
                consumers: BTreeMap::new(),
                flushed_entries: 0,
                sealing: BTreeMap::new(),
                completed: Vec::new(),
            }),
            current_version: AtomicU64::new(1),
            durable_version: AtomicU64::new(0),
        }
    }

    /// Enqueue a payload; visible to consumers immediately, committed
    /// lazily. Returns the entry offset and the version it executed in.
    pub fn enqueue(&self, payload: Bytes) -> (u64, Version) {
        let mut inner = self.inner.lock();
        let version = Version(self.current_version.load(Ordering::Acquire));
        let offset = inner.entries.len() as u64;
        inner.entries.push(Entry {
            offset,
            version,
            payload,
        });
        (offset, version)
    }

    /// Read the entry at `offset`, if present.
    pub fn read(&self, offset: u64) -> Option<Entry> {
        self.inner.lock().entries.get(offset as usize).cloned()
    }

    /// Dequeue up to `max` entries for `consumer`, advancing its offset.
    /// Returns the entries and the version the dequeue executed in (the
    /// dequeue is an operation too — it commits with the consumer-offset
    /// movement it caused).
    pub fn poll(&self, consumer: ConsumerId, max: usize) -> (Vec<Entry>, Version) {
        let mut inner = self.inner.lock();
        let version = Version(self.current_version.load(Ordering::Acquire));
        let start = *inner.consumers.get(&consumer).unwrap_or(&0);
        let end = (start as usize + max).min(inner.entries.len());
        let out: Vec<Entry> = inner.entries[start as usize..end].to_vec();
        inner.consumers.insert(consumer, end as u64);
        (out, version)
    }

    /// Committed offset of `consumer`.
    pub fn consumer_offset(&self, consumer: ConsumerId) -> u64 {
        *self.inner.lock().consumers.get(&consumer).unwrap_or(&0)
    }

    /// Total entries (committed or not).
    pub fn len(&self) -> u64 {
        self.inner.lock().entries.len() as u64
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drive sealed versions to durability: flush newly sealed entries and
    /// complete their manifests. Returns completed versions. (The embedding
    /// worker calls this from its control loop; the flush itself charges
    /// the device's latency model.)
    pub fn pump(&self) -> Result<Vec<Version>> {
        // Snapshot what to do under the lock, do I/O outside it.
        let (to_flush, pending): (u64, Vec<(Version, u64)>) = {
            let inner = self.inner.lock();
            let max_until = inner.sealing.values().copied().max().unwrap_or(0);
            (
                max_until.saturating_sub(inner.flushed_entries),
                inner.sealing.iter().map(|(v, u)| (*v, *u)).collect(),
            )
        };
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        if to_flush > 0 {
            let mut buf = Vec::new();
            let (start, entries): (u64, Vec<Entry>) = {
                let inner = self.inner.lock();
                let start = inner.flushed_entries;
                let until = inner.sealing.values().copied().max().unwrap_or(start);
                (
                    start,
                    inner.entries[start as usize..until as usize].to_vec(),
                )
            };
            for e in &entries {
                encode_entry(e, &mut buf);
            }
            self.device.append(&buf)?;
            self.device.flush()?;
            let mut inner = self.inner.lock();
            inner.flushed_entries = inner.flushed_entries.max(start + entries.len() as u64);
        }
        let mut done = Vec::new();
        let mut inner = self.inner.lock();
        let flushed = inner.flushed_entries;
        let consumers = inner.consumers.clone();
        let ready: Vec<(Version, u64)> = inner
            .sealing
            .iter()
            .filter(|&(_, &until)| until <= flushed)
            .map(|(v, u)| (*v, *u))
            .collect();
        for (version, until) in ready {
            let manifest = LogManifest {
                version,
                until_offset: until,
                consumers: consumers.clone(),
            };
            let Ok(data) = serde_json::to_vec(&manifest) else {
                continue;
            };
            if self
                .blobs
                .put(&LogManifest::blob_name(version), &data)
                .is_ok()
            {
                self.durable_version.fetch_max(version.0, Ordering::AcqRel);
                inner.completed.push(CommitDescriptor { version });
                inner.sealing.remove(&version);
                done.push(version);
            }
        }
        Ok(done)
    }

    /// Recover a log shard from its device and manifests after a crash.
    pub fn recover(
        shard: ShardId,
        device: Arc<dyn LogDevice>,
        blobs: Arc<dyn BlobStore>,
        at_most: Option<Version>,
    ) -> Result<SharedLog> {
        // Latest manifest at or below the bound.
        let names = blobs.list("log-chkpt-")?;
        let mut manifest: Option<LogManifest> = None;
        for name in names.iter().rev() {
            let v: u64 = name
                .trim_start_matches("log-chkpt-")
                .parse()
                .map_err(|_| DprError::Storage(format!("bad manifest {name}")))?;
            if at_most.is_none_or(|m| Version(v) <= m) {
                let data = blobs
                    .get(name)?
                    .ok_or_else(|| DprError::Storage(format!("missing blob {name}")))?;
                manifest = Some(
                    serde_json::from_slice(&data)
                        .map_err(|e| DprError::Storage(format!("manifest decode: {e}")))?,
                );
                break;
            }
        }
        let (version, until, consumers) = match manifest {
            Some(m) => (m.version, m.until_offset, m.consumers),
            None => (Version::ZERO, 0, BTreeMap::new()),
        };
        // Replay entries from the device up to the manifest boundary.
        let durable = device.durable_frontier();
        let mut entries = Vec::new();
        let mut offset = 0u64;
        let mut carry: Vec<u8> = Vec::new();
        let mut buf = vec![0u8; 1 << 16];
        'scan: while offset < durable && (entries.len() as u64) < until {
            let n = device.read(offset, &mut buf)?;
            if n == 0 {
                break;
            }
            carry.extend_from_slice(&buf[..n]);
            offset += n as u64;
            let mut consumed = 0;
            while let Some((e, used)) = decode_entry(&carry[consumed..]) {
                consumed += used;
                if e.offset != entries.len() as u64 {
                    return Err(DprError::Storage(format!(
                        "log scan out of order at {}",
                        e.offset
                    )));
                }
                entries.push(e);
                if entries.len() as u64 >= until {
                    break 'scan;
                }
            }
            carry.drain(..consumed);
        }
        let flushed = entries.len() as u64;
        // Consumer offsets never point past the recovered entries.
        let consumers = consumers
            .into_iter()
            .map(|(c, o)| (c, o.min(flushed)))
            .collect();
        Ok(SharedLog {
            shard,
            device,
            blobs,
            inner: Mutex::new(LogInner {
                entries,
                consumers,
                flushed_entries: flushed,
                sealing: BTreeMap::new(),
                completed: Vec::new(),
            }),
            current_version: AtomicU64::new(version.0 + 1),
            durable_version: AtomicU64::new(version.0),
        })
    }
}

impl StateObject for SharedLog {
    fn shard(&self) -> ShardId {
        self.shard
    }

    fn current_version(&self) -> Version {
        Version(self.current_version.load(Ordering::Acquire))
    }

    fn durable_version(&self) -> Version {
        Version(self.durable_version.load(Ordering::Acquire))
    }

    fn request_commit(&self, target: Option<Version>) -> bool {
        let mut inner = self.inner.lock();
        let sealing = Version(self.current_version.load(Ordering::Acquire));
        if inner.sealing.contains_key(&sealing) {
            return false;
        }
        let until = inner.entries.len() as u64;
        inner.sealing.insert(sealing, until);
        let next = target.map_or(sealing.next(), |t| t.max(sealing.next()));
        self.current_version.store(next.0, Ordering::Release);
        true
    }

    fn take_commits(&self) -> Vec<CommitDescriptor> {
        // Opportunistically drive pending flushes.
        let _ = self.pump();
        std::mem::take(&mut self.inner.lock().completed)
    }

    fn restore(&self, version: Version) -> Result<()> {
        // Find the boundary for `version` from its manifest (or empty).
        let boundary = if version == Version::ZERO {
            LogManifest {
                version: Version::ZERO,
                until_offset: 0,
                consumers: BTreeMap::new(),
            }
        } else {
            let data = self.blobs.get(&LogManifest::blob_name(version))?.ok_or(
                DprError::NoSuchCheckpoint {
                    shard: self.shard,
                    version,
                },
            )?;
            serde_json::from_slice(&data)
                .map_err(|e| DprError::Storage(format!("manifest decode: {e}")))?
        };
        let mut inner = self.inner.lock();
        inner.entries.truncate(boundary.until_offset as usize);
        inner.flushed_entries = inner.flushed_entries.min(boundary.until_offset);
        inner.consumers = boundary.consumers;
        inner.sealing.retain(|&v, _| v <= version);
        inner.completed.retain(|d| d.version <= version);
        let cur = self.current_version.load(Ordering::Acquire);
        self.current_version
            .store(cur.max(version.0 + 1), Ordering::Release);
        self.durable_version.store(
            self.durable_version.load(Ordering::Acquire).min(version.0),
            Ordering::Release,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_storage::{MemBlobStore, MemLogDevice};

    fn log() -> (SharedLog, Arc<MemLogDevice>, Arc<MemBlobStore>) {
        let device = Arc::new(MemLogDevice::null());
        let blobs = Arc::new(MemBlobStore::new());
        (
            SharedLog::new(ShardId(0), device.clone(), blobs.clone()),
            device,
            blobs,
        )
    }

    fn payload(i: u64) -> Bytes {
        Bytes::copy_from_slice(&i.to_be_bytes())
    }

    #[test]
    fn enqueue_is_visible_before_commit() {
        let (log, _, _) = log();
        let (off, v) = log.enqueue(payload(1));
        assert_eq!(off, 0);
        assert_eq!(v, Version(1));
        assert_eq!(log.durable_version(), Version::ZERO, "not committed yet");
        let (got, _) = log.poll(ConsumerId(1), 10);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, payload(1));
    }

    #[test]
    fn poll_advances_consumer_offset_independently() {
        let (log, _, _) = log();
        for i in 0..10 {
            log.enqueue(payload(i));
        }
        let (a1, _) = log.poll(ConsumerId(1), 4);
        assert_eq!(a1.len(), 4);
        let (b1, _) = log.poll(ConsumerId(2), 7);
        assert_eq!(b1.len(), 7);
        let (a2, _) = log.poll(ConsumerId(1), 100);
        assert_eq!(a2.len(), 6);
        assert_eq!(log.consumer_offset(ConsumerId(1)), 10);
        assert_eq!(log.consumer_offset(ConsumerId(2)), 7);
    }

    #[test]
    fn commit_seals_and_reports() {
        let (log, _, _) = log();
        log.enqueue(payload(1));
        assert!(log.request_commit(None));
        assert_eq!(log.current_version(), Version(2));
        let commits = log.take_commits();
        assert_eq!(
            commits,
            vec![CommitDescriptor {
                version: Version(1)
            }]
        );
        assert_eq!(log.durable_version(), Version(1));
        // Nothing new to seal → absorbed as in-flight.
        assert!(log.request_commit(None));
        log.take_commits();
        // Re-sealing the same version is refused.
        let v = log.current_version();
        assert!(log.request_commit(Some(v)));
    }

    #[test]
    fn restore_truncates_uncommitted_entries_and_offsets() {
        let (log, _, _) = log();
        log.enqueue(payload(1)); // v1
        log.request_commit(None);
        log.take_commits();
        log.enqueue(payload(2)); // v2, uncommitted
        log.poll(ConsumerId(1), 10); // consumer read both (offset 2)
        log.restore(Version(1)).unwrap();
        assert_eq!(log.len(), 1, "uncommitted entry truncated");
        assert_eq!(
            log.consumer_offset(ConsumerId(1)),
            0,
            "offset rolled back to the committed boundary capture"
        );
        // New enqueues land in a later version.
        let (_, v) = log.enqueue(payload(3));
        assert!(v >= Version(2));
    }

    #[test]
    fn consumer_offset_commits_with_its_version() {
        let (log, _, _) = log();
        log.enqueue(payload(1));
        log.poll(ConsumerId(1), 10);
        // Commit v1: the boundary captures offset 1.
        log.request_commit(None);
        log.take_commits();
        // v2: read more... nothing to read; enqueue + read.
        log.enqueue(payload(2));
        log.poll(ConsumerId(1), 10);
        assert_eq!(log.consumer_offset(ConsumerId(1)), 2);
        log.restore(Version(1)).unwrap();
        assert_eq!(
            log.consumer_offset(ConsumerId(1)),
            1,
            "offset restored to the v1 capture"
        );
    }

    #[test]
    fn crash_recovery_replays_committed_prefix() {
        let device = Arc::new(MemLogDevice::null());
        let blobs = Arc::new(MemBlobStore::new());
        {
            let log = SharedLog::new(ShardId(0), device.clone(), blobs.clone());
            for i in 0..5 {
                log.enqueue(payload(i));
            }
            log.poll(ConsumerId(9), 3);
            log.request_commit(None);
            log.take_commits();
            // Uncommitted tail.
            for i in 5..8 {
                log.enqueue(payload(i));
            }
        }
        device.crash();
        let log = SharedLog::recover(ShardId(0), device, blobs, None).unwrap();
        assert_eq!(log.durable_version(), Version(1));
        assert_eq!(log.len(), 5, "only committed entries recovered");
        assert_eq!(log.consumer_offset(ConsumerId(9)), 3);
        let (got, _) = log.poll(ConsumerId(9), 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, payload(3));
    }

    #[test]
    fn recovery_at_bound_picks_older_manifest() {
        let device = Arc::new(MemLogDevice::null());
        let blobs = Arc::new(MemBlobStore::new());
        {
            let log = SharedLog::new(ShardId(0), device.clone(), blobs.clone());
            log.enqueue(payload(1));
            log.request_commit(None);
            log.take_commits();
            log.enqueue(payload(2));
            log.request_commit(None);
            log.take_commits();
        }
        let log = SharedLog::recover(ShardId(0), device, blobs, Some(Version(1))).unwrap();
        assert_eq!(log.durable_version(), Version(1));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn empty_recovery() {
        let device = Arc::new(MemLogDevice::null());
        let blobs = Arc::new(MemBlobStore::new());
        let log = SharedLog::recover(ShardId(0), device, blobs, None).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.durable_version(), Version::ZERO);
    }
}
