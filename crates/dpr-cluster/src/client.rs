//! Client-side session handle: routing, batching, windowing, commit
//! tracking, and failure recovery.
//!
//! A [`SessionHandle`] owns one [`DprClientSession`] and knows how to reach
//! every worker: remote shards through the bus, and — in co-located mode —
//! the local worker by direct call, which is the "local execution" fast
//! path of §5.2 (no network, completes on the calling thread).

use crate::message::{ClusterOp, Message, OpResult, RequestMsg};
use crate::transport::{EndpointId, SimNetwork};
use crate::worker::Worker;
use crossbeam::channel::Receiver;
use dpr_core::{DprError, Result, SessionId, ShardId, Version, WorldLine};
use dpr_metadata::{Cut, MetadataStore, OwnershipTable};
use libdpr::{BatchHeader, DprClientSession, SessionStatus};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cumulative per-session counters (the series of Fig. 16).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Ops whose replies have arrived (completed, possibly uncommitted).
    pub completed: u64,
    /// Ops known durably committed via the DPR cut.
    pub committed: u64,
    /// Ops aborted by failures.
    pub aborted: u64,
}

struct InflightBatch {
    shard: ShardId,
    header: BatchHeader,
    ops: Vec<ClusterOp>,
    /// Last transmission time, for stall-triggered retransmission
    /// ([`SessionHandle::resend_stalled`]).
    sent_at: Instant,
}

/// A client session on a DPR cluster.
pub struct SessionHandle {
    dpr: DprClientSession,
    net: Arc<SimNetwork>,
    endpoint: EndpointId,
    inbox: Receiver<Message>,
    ownership: Arc<OwnershipTable>,
    meta: Arc<dyn MetadataStore>,
    workers: Arc<parking_lot::RwLock<HashMap<ShardId, EndpointId>>>,
    /// Co-located worker, if any: batches for its shard bypass the network.
    local: Option<Arc<Worker>>,
    inflight: HashMap<u64, InflightBatch>,
    inflight_ops: u64,
    completed_ops: u64,
    /// Results from the most recent synchronous execute.
    last_results: Vec<(u64, OpResult)>,
}

impl SessionHandle {
    /// Internal constructor — use `Cluster::open_session`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: SessionId,
        world_line: WorldLine,
        net: Arc<SimNetwork>,
        ownership: Arc<OwnershipTable>,
        meta: Arc<dyn MetadataStore>,
        workers: Arc<parking_lot::RwLock<HashMap<ShardId, EndpointId>>>,
        local: Option<Arc<Worker>>,
    ) -> Self {
        let (endpoint, inbox) = net.register();
        SessionHandle {
            dpr: DprClientSession::on_world_line(id, world_line),
            net,
            endpoint,
            inbox,
            ownership,
            meta,
            workers,
            local,
            inflight: HashMap::new(),
            inflight_ops: 0,
            completed_ops: 0,
            last_results: Vec::new(),
        }
    }

    /// Session id.
    #[must_use]
    pub fn id(&self) -> SessionId {
        self.dpr.id()
    }

    /// This session's bus endpoint (chaos harness: install reply-dropping
    /// link faults with [`crate::SimNetwork::set_link_fault`] to exercise
    /// the resend/dedupe path).
    #[must_use]
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            completed: self.completed_ops,
            committed: self.dpr.committed_count(),
            aborted: self.dpr.aborted(),
        }
    }

    /// Ops issued but with no reply yet.
    #[must_use]
    pub fn inflight_ops(&self) -> u64 {
        self.inflight_ops
    }

    /// Issue a batch of operations without waiting for completion. Ops are
    /// grouped by owning shard; groups for a co-located shard execute
    /// immediately on this thread, remote groups go over the bus.
    ///
    /// Returns the serial number assigned to each input op (grouping means
    /// serials are not in input order).
    pub fn issue(&mut self, ops: Vec<ClusterOp>) -> Result<Vec<u64>> {
        // Group ops by owner, preserving intra-shard order and remembering
        // where each op came from.
        let mut serials = vec![0u64; ops.len()];
        let mut groups: HashMap<ShardId, (Vec<ClusterOp>, Vec<usize>)> = HashMap::new();
        for (idx, op) in ops.into_iter().enumerate() {
            let shard = self.resolve_owner(op.key())?;
            let entry = groups.entry(shard).or_default();
            entry.0.push(op);
            entry.1.push(idx);
        }
        for (shard, (group, indices)) in groups {
            let header = self.dpr.begin_batch(shard, group.len() as u32)?;
            for (pos, idx) in indices.into_iter().enumerate() {
                serials[idx] = header.first_serial + pos as u64;
            }
            self.dispatch(shard, header, group)?;
        }
        Ok(serials)
    }

    fn dispatch(&mut self, shard: ShardId, header: BatchHeader, ops: Vec<ClusterOp>) -> Result<()> {
        if let Some(local) = self.local.clone() {
            if local.shard() == shard {
                // Co-located fast path: execute synchronously in-thread.
                match local.execute_local(&header, &ops) {
                    Ok((reply, results)) => {
                        self.dpr.process_reply(&reply)?;
                        self.completed_ops += u64::from(reply.op_count);
                        for (i, r) in results.into_iter().enumerate() {
                            self.last_results.push((header.first_serial + i as u64, r));
                        }
                        return Ok(());
                    }
                    Err(DprError::WorldLineMismatch { current, .. }) => {
                        // Surface failure exactly like a remote rejection.
                        let _ = self.dpr.process_reply(&libdpr::BatchReply {
                            shard,
                            world_line: current,
                            version: Version::ZERO,
                            first_serial: header.first_serial,
                            op_count: header.op_count,
                        });
                        return Err(DprError::WorldLineMismatch {
                            requested: header.world_line,
                            current,
                        });
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        let endpoint = *self
            .workers
            .read()
            .get(&shard)
            .ok_or_else(|| DprError::Invalid(format!("no worker for {shard}")))?;
        self.inflight_ops += u64::from(header.op_count);
        self.inflight.insert(
            header.first_serial,
            InflightBatch {
                shard,
                header: header.clone(),
                ops: ops.clone(),
                sent_at: Instant::now(),
            },
        );
        self.net.send(
            endpoint,
            Message::Request(RequestMsg {
                reply_to: self.endpoint,
                header,
                ops,
            }),
        )
    }

    /// Drain available replies. With `block`, waits up to `timeout` for at
    /// least one reply if any ops are in flight. Returns the number of ops
    /// completed by this call.
    ///
    /// On a world-line mismatch (failure detected), returns
    /// [`DprError::WorldLineMismatch`]; call [`SessionHandle::recover`].
    pub fn poll(&mut self, block: bool, timeout: Duration) -> Result<u64> {
        let mut completed = 0u64;
        let mut failure: Option<DprError> = None;
        let deadline = Instant::now() + timeout;
        loop {
            let msg = if block && completed == 0 && self.inflight_ops > 0 && failure.is_none() {
                match self.inbox.recv_deadline(deadline) {
                    Ok(m) => m,
                    Err(_) => break,
                }
            } else {
                match self.inbox.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            };
            let Message::Response(resp) = msg else {
                continue;
            };
            match resp.outcome {
                Ok((reply, results)) => {
                    if self.inflight.remove(&resp.first_serial).is_none() {
                        // Duplicate reply: a retransmitted batch answered
                        // from the server's dedupe cache after the original
                        // reply already completed it. Already accounted for.
                        continue;
                    }
                    self.inflight_ops -= u64::from(resp.op_count);
                    match self.dpr.process_reply(&reply) {
                        Ok(()) => {
                            completed += u64::from(resp.op_count);
                            self.completed_ops += u64::from(resp.op_count);
                            for (i, r) in results.into_iter().enumerate() {
                                self.last_results.push((resp.first_serial + i as u64, r));
                            }
                        }
                        Err(e @ DprError::WorldLineMismatch { .. }) => failure = Some(e),
                        Err(_) => {}
                    }
                }
                Err(DprError::WorldLineMismatch { current, .. }) => {
                    // Rejected batch: the cluster moved world-lines.
                    if self.inflight.remove(&resp.first_serial).is_none() {
                        continue; // duplicate reply, see above
                    }
                    self.inflight_ops -= u64::from(resp.op_count);
                    let _ = self.dpr.process_reply(&libdpr::BatchReply {
                        shard: ShardId(u32::MAX),
                        world_line: current,
                        version: Version::ZERO,
                        first_serial: resp.first_serial,
                        op_count: resp.op_count,
                    });
                    failure = Some(DprError::WorldLineMismatch {
                        requested: self.dpr.world_line(),
                        current,
                    });
                }
                Err(DprError::Recovering) => {
                    // Shard mid-recovery: resend the batch unchanged. The
                    // shard may have been *removed* by membership churn
                    // while this reply was in flight — then its endpoint is
                    // gone and the ops must be re-routed to the new owners
                    // instead.
                    let endpoint = self
                        .inflight
                        .get(&resp.first_serial)
                        .and_then(|b| self.workers.read().get(&b.shard).copied());
                    match endpoint {
                        Some(endpoint) => {
                            if let Some(batch) = self.inflight.get_mut(&resp.first_serial) {
                                batch.sent_at = Instant::now();
                                let _ = self.net.send(
                                    endpoint,
                                    Message::Request(RequestMsg {
                                        reply_to: self.endpoint,
                                        header: batch.header.clone(),
                                        ops: batch.ops.clone(),
                                    }),
                                );
                            }
                        }
                        None => {
                            if let Some(batch) = self.inflight.remove(&resp.first_serial) {
                                self.inflight_ops -= u64::from(resp.op_count);
                                self.reroute(batch)?;
                            }
                        }
                    }
                }
                Err(DprError::NotOwner { .. }) => {
                    // Ownership moved (§5.3): re-resolve each op's owner and
                    // re-route as single-op batches with their original
                    // serials. Retries with backoff while the partition is
                    // mid-transfer (temporarily un-owned).
                    if let Some(batch) = self.inflight.remove(&resp.first_serial) {
                        self.inflight_ops -= u64::from(resp.op_count);
                        self.reroute(batch)?;
                    }
                }
                Err(_) => {
                    // Other rejections: drop the batch; the serial hole
                    // resolves at the next failure handling or is retried by
                    // the application.
                    if self.inflight.remove(&resp.first_serial).is_some() {
                        self.inflight_ops -= u64::from(resp.op_count);
                    }
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(completed),
        }
    }

    /// Resolve the owner of `key`, retrying while its partition is
    /// mid-transfer (temporarily un-owned, §5.3: "the client retries until
    /// the transfer is complete").
    fn resolve_owner(&self, key: &dpr_core::Key) -> Result<ShardId> {
        for _ in 0..2000 {
            match self.ownership.owner_of(key) {
                Ok(s) => return Ok(s),
                Err(_) => std::thread::sleep(Duration::from_micros(500)),
            }
        }
        Err(DprError::Invalid(format!(
            "partition for {key} stuck un-owned"
        )))
    }

    /// Re-route a rejected batch op-by-op after an ownership change.
    fn reroute(&mut self, batch: InflightBatch) -> Result<()> {
        for (i, op) in batch.ops.into_iter().enumerate() {
            let serial = batch.header.first_serial + i as u64;
            let shard = self.resolve_owner(op.key())?;
            let header = self.dpr.rebatch_header(shard, serial, 1);
            self.dispatch(shard, header, vec![op])?;
        }
        Ok(())
    }

    /// Retransmit every in-flight batch whose reply has been outstanding
    /// for at least `older_than` — the request or its reply may have been
    /// dropped by a lossy link. Retransmitting non-idempotent ops is safe
    /// only when workers run duplicate suppression
    /// ([`crate::ClusterConfig::dedupe_window`] > 0). Batches whose
    /// worker endpoint disappeared (membership churn) are re-routed by
    /// current ownership instead. Returns the number of batches resent.
    pub fn resend_stalled(&mut self, older_than: Duration) -> Result<usize> {
        let now = Instant::now();
        let stalled: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, b)| now.duration_since(b.sent_at) >= older_than)
            .map(|(&serial, _)| serial)
            .collect();
        let mut resent = 0usize;
        for serial in stalled {
            let Some(batch) = self.inflight.get_mut(&serial) else {
                continue;
            };
            let endpoint = self.workers.read().get(&batch.shard).copied();
            match endpoint {
                Some(ep) => {
                    batch.sent_at = now;
                    let msg = Message::Request(RequestMsg {
                        reply_to: self.endpoint,
                        header: batch.header.clone(),
                        ops: batch.ops.clone(),
                    });
                    let _ = self.net.send(ep, msg);
                }
                None => {
                    let batch = self.inflight.remove(&serial).expect("checked above");
                    self.inflight_ops -= u64::from(batch.header.op_count);
                    self.reroute(batch)?;
                }
            }
            resent += 1;
        }
        Ok(resent)
    }

    /// Take the results accumulated by completed ops (serial, result),
    /// sorted by serial.
    pub fn take_results(&mut self) -> Vec<(u64, OpResult)> {
        let mut out = std::mem::take(&mut self.last_results);
        out.sort_by_key(|(s, _)| *s);
        out
    }

    /// Execute ops synchronously, returning results in op order.
    pub fn execute(&mut self, ops: Vec<ClusterOp>) -> Result<Vec<OpResult>> {
        let n = ops.len();
        self.take_results();
        let serials = self.issue(ops)?;
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.inflight_ops > 0 {
            self.poll(true, Duration::from_millis(100))?;
            if Instant::now() > deadline {
                return Err(DprError::Timeout);
            }
        }
        let by_serial: HashMap<u64, OpResult> = self.take_results().into_iter().collect();
        let mut out = Vec::with_capacity(n);
        for s in serials {
            match by_serial.get(&s) {
                Some(r) => out.push(r.clone()),
                None => return Err(DprError::Invalid(format!("missing result for serial {s}"))),
            }
        }
        Ok(out)
    }

    /// Refresh the committed prefix against the given DPR cut, returning the
    /// resolved watermark.
    ///
    /// The caller must know `cut` belongs to this session's world-line: a
    /// cut read after an unnoticed recovery covers post-rollback version
    /// numbers that alias purged pre-crash versions, and applying it would
    /// inflate the prefix past lost operations. When the cut comes straight
    /// from the metadata store, prefer
    /// [`SessionHandle::refresh_commit_safe`].
    pub fn refresh_commit(&mut self, cut: &Cut) -> u64 {
        self.dpr.refresh_commit(cut)
    }

    /// Read the current cut from the metadata store and advance the
    /// committed prefix — but only while the cluster is still on this
    /// session's world-line.
    ///
    /// Reading the cut *before* the world-line check makes the pair safe:
    /// if the check passes, the cut predates any transition and is at most
    /// the frozen recovery cut, so it cannot cover purged versions. On a
    /// mismatch nothing is applied; call [`SessionHandle::recover`].
    pub fn refresh_commit_safe(&mut self) -> Result<u64> {
        let cut = self.meta.read_cut()?;
        let current = self.meta.world_line()?;
        let mine = self.dpr.world_line();
        if current != mine {
            return Err(DprError::WorldLineMismatch {
                requested: mine,
                current,
            });
        }
        Ok(self.dpr.refresh_commit(&cut))
    }

    /// Wait until every issued op is committed per the cut source `read`.
    pub fn wait_all_committed(
        &mut self,
        read_cut: impl Fn() -> Cut,
        timeout: Duration,
    ) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let _ = self.poll(false, Duration::ZERO);
            let cut = read_cut();
            if self.dpr.refresh_commit(&cut) >= self.dpr.issued() {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(DprError::Timeout);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Recover from a failure: wait for cluster recovery to finish, adopt
    /// the new world-line, and compute the surviving prefix. Returns the
    /// number of this session's ops that survived.
    pub fn recover(&mut self, timeout: Duration) -> Result<u64> {
        let deadline = Instant::now() + timeout;
        // Wait until the cluster manager reports recovery complete.
        loop {
            match self.meta.recovery_in_progress()? {
                None => break,
                Some(_) => {
                    if Instant::now() > deadline {
                        return Err(DprError::Timeout);
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }
        let world_line = self.meta.world_line()?;
        let mut cut = self.meta.read_cut()?;
        // Version numbers are ambiguous across world-lines: after rollback,
        // shards resume at `v_lost + 1` and the cut advances again the
        // moment recovery completes, so by now it may cover version numbers
        // the rollback *purged*. Cap each shard's entry by the cut frozen at
        // every world-line transition this session is crossing — only
        // operations below all of those survived.
        let prev = self.dpr.world_line();
        for w in (prev.0 + 1)..=world_line.0 {
            if let Some(frozen) = self.meta.recovery_cut(WorldLine(w))? {
                for (shard, v) in cut.iter_mut() {
                    // A shard absent from the frozen cut did not exist at
                    // the transition, so nothing from before it survives.
                    let cap = frozen.get(shard).copied().unwrap_or(Version::ZERO);
                    *v = (*v).min(cap);
                }
            }
        }
        // Drain stale replies.
        while self.inbox.try_recv().is_ok() {}
        self.inflight.clear();
        self.inflight_ops = 0;
        let survived = match self.dpr.status() {
            SessionStatus::NeedsRecovery { .. } | SessionStatus::Active => {
                self.dpr.handle_failure(world_line, &cut)
            }
        };
        Ok(survived)
    }

    /// The session's current world-line.
    #[must_use]
    pub fn world_line(&self) -> WorldLine {
        self.dpr.world_line()
    }
}
