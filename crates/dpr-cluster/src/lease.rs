//! Worker-side lease caching of ownership and the published cut.
//!
//! With the metadata plane partitioned (see `dpr-metadata::partitioned`),
//! the remaining shared hot spot on the worker request path is the
//! ownership table: every operation validated ownership against the shared
//! `RwLock` table, a cross-worker cache-line handshake per op. The two
//! caches here move both reads worker-local and bound their staleness with
//! explicit fences (documented in `docs/PROTOCOL.md` §11):
//!
//! * [`OwnershipLease`] — a per-worker snapshot of the ownership table.
//!   The fast path is one atomic epoch load plus a lookup in a
//!   worker-local map (uncontended). The table bumps its epoch inside
//!   every ownership *change* (assignment, renounce, claim), so a stale
//!   cache is detected before the next operation is accepted: a renounce's
//!   bump is precisely what fences the old owner during migration. Lease
//!   renewals do not bump the epoch — an expired-looking cached lease
//!   triggers a refill instead, which picks up the renewal.
//! * [`CutLease`] — the TTL cut cache serving `CutReq` polling, upgraded
//!   with a world-line fence: a cached cut is only served while its
//!   world-line matches the worker's, and recovery invalidates it
//!   outright, so a rolled-back worker can never hand out a cut from the
//!   abandoned world-line even within the TTL window.

use dpr_core::{Clock, Key, Result, ShardId, WorldLine};
use dpr_metadata::{Cut, OwnershipEntry, OwnershipTable, VirtualPartition};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A worker's lease-guarded local view of the ownership table.
pub struct OwnershipLease {
    table: Arc<OwnershipTable>,
    shard: ShardId,
    clock: Arc<dyn Clock>,
    cached: RwLock<CachedView>,
}

struct CachedView {
    /// Set by [`OwnershipLease::invalidate`]; forces a refill regardless of
    /// epoch (used on recovery, where staleness tolerance is zero).
    dirty: bool,
    /// The table epoch this view was snapshotted at.
    epoch: u64,
    owners: BTreeMap<VirtualPartition, OwnershipEntry>,
}

impl OwnershipLease {
    /// A lease cache for `shard` over the shared table. Starts dirty, so
    /// the first validation snapshots the table.
    pub fn new(table: Arc<OwnershipTable>, shard: ShardId) -> Self {
        let clock = table.clock();
        OwnershipLease {
            table,
            shard,
            clock,
            cached: RwLock::new(CachedView {
                dirty: true,
                epoch: 0,
                owners: BTreeMap::new(),
            }),
        }
    }

    /// Validate that this worker owns `key` under a live lease — the
    /// per-operation check of §5.3, served from the local view.
    ///
    /// Fast path: one atomic epoch load + one local map lookup. The view
    /// is refilled from the table only when the epoch moved (ownership
    /// changed somewhere), the view was explicitly invalidated, or the
    /// cached lease looks expired (renewals don't bump the epoch).
    pub fn validate(&self, key: &Key) -> bool {
        let vp = self.table.partitioner().partition_of(key);
        let now = self.clock.now_nanos();
        let table_epoch = self.table.epoch();
        {
            let c = self.cached.read();
            if !c.dirty && c.epoch == table_epoch {
                match c.owners.get(&vp) {
                    Some(e) if e.owner == Some(self.shard) => {
                        if e.lease_until_nanos >= now {
                            return true;
                        }
                        // Expired in the cache, but the lease may have been
                        // renewed in the table — refill and re-judge.
                    }
                    // Under a current epoch, "not ours" is authoritative:
                    // assignment changes always bump the epoch.
                    _ => return false,
                }
            }
        }
        self.refill();
        let c = self.cached.read();
        match c.owners.get(&vp) {
            Some(e) => e.owner == Some(self.shard) && e.lease_until_nanos >= now,
            None => false,
        }
    }

    /// Force the next validation to re-snapshot the table (recovery).
    pub fn invalidate(&self) {
        self.cached.write().dirty = true;
        crate::metrics::lease_invalidations().inc();
    }

    fn refill(&self) {
        crate::metrics::lease_refills().inc();
        let (epoch, owners) = self.table.snapshot();
        let mut c = self.cached.write();
        c.epoch = epoch;
        c.owners = owners;
        c.dirty = false;
    }
}

/// World-line-fenced, TTL-bounded cache of `(world_line, cut)`.
pub struct CutLease {
    ttl: Duration,
    inner: Mutex<CutLeaseState>,
}

#[derive(Default)]
struct CutLeaseState {
    at: Option<Instant>,
    value: Option<Arc<(WorldLine, Cut)>>,
}

impl CutLease {
    /// An empty lease with the given TTL.
    #[must_use]
    pub fn new(ttl: Duration) -> Self {
        CutLease {
            ttl,
            inner: Mutex::new(CutLeaseState::default()),
        }
    }

    /// Serve the cached value while it is within the TTL **and** on the
    /// caller's world-line `fence`; otherwise fetch, cache, and serve
    /// fresh. A fetched value from a different world-line (recovery racing
    /// the read) is served but never satisfies the fence, so every read
    /// during the transition sees the latest truth.
    pub fn get(
        &self,
        fence: WorldLine,
        fetch: impl FnOnce() -> Result<(WorldLine, Cut)>,
    ) -> Result<Arc<(WorldLine, Cut)>> {
        let mut s = self.inner.lock();
        let fresh = s.at.is_some_and(|at| at.elapsed() < self.ttl)
            && s.value.as_ref().is_some_and(|v| v.0 == fence);
        if !fresh {
            let value = Arc::new(fetch()?);
            s.at = Some(Instant::now());
            s.value = Some(value);
        }
        Ok(s.value.as_ref().expect("filled above").clone())
    }

    /// Drop the cached value (recovery rolled the world-line).
    pub fn invalidate(&self) {
        let mut s = self.inner.lock();
        s.at = None;
        s.value = None;
        crate::metrics::lease_invalidations().inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::{DprError, SimClock, Version};
    use dpr_metadata::Partitioner;

    fn table(partitions: u32, lease: Duration) -> (Arc<OwnershipTable>, SimClock) {
        let clock = SimClock::new();
        let t = Arc::new(OwnershipTable::new(
            Partitioner::Hash { partitions },
            Arc::new(clock.clone()),
            lease,
        ));
        (t, clock)
    }

    #[test]
    fn cached_validation_matches_table_validation() {
        let (t, _) = table(16, Duration::from_secs(10));
        t.assign_round_robin(&[ShardId(0), ShardId(1)]);
        let lease0 = OwnershipLease::new(t.clone(), ShardId(0));
        let lease1 = OwnershipLease::new(t.clone(), ShardId(1));
        for k in 0..200u64 {
            let key = Key::from_u64(k);
            assert_eq!(lease0.validate(&key), t.validate(ShardId(0), &key));
            assert_eq!(lease1.validate(&key), t.validate(ShardId(1), &key));
        }
    }

    /// The migration fence: a renounce bumps the epoch, so the old owner's
    /// cached lease rejects the very next operation — no write can slip
    /// through on a stale cached view.
    #[test]
    fn renounce_fences_the_old_owners_cache() {
        let (t, _) = table(4, Duration::from_secs(10));
        t.assign_round_robin(&[ShardId(0)]);
        let lease = OwnershipLease::new(t.clone(), ShardId(0));
        // Find a key in partition 2 and warm the cache with it.
        let key = (0..1000u64)
            .map(Key::from_u64)
            .find(|k| t.partitioner().partition_of(k) == VirtualPartition(2))
            .expect("some key hashes to partition 2");
        assert!(lease.validate(&key));
        t.renounce(VirtualPartition(2), ShardId(0)).unwrap();
        assert!(!lease.validate(&key), "stale cache fenced by epoch bump");
        // After the transfer completes, the new owner's cache sees it.
        t.claim(VirtualPartition(2), ShardId(1)).unwrap();
        let lease1 = OwnershipLease::new(t.clone(), ShardId(1));
        assert!(lease1.validate(&key));
        assert!(!lease.validate(&key), "old owner still fenced");
    }

    /// Lease renewal does not bump the epoch; the cache picks it up via a
    /// refill when its cached expiry passes.
    #[test]
    fn renewal_is_picked_up_without_epoch_change() {
        let (t, clock) = table(4, Duration::from_secs(10));
        t.assign_round_robin(&[ShardId(0)]);
        let lease = OwnershipLease::new(t.clone(), ShardId(0));
        let key = Key::from_u64(7);
        assert!(lease.validate(&key));
        let epoch = t.epoch();
        clock.advance(Duration::from_secs(11)); // past the original lease
        t.renew_leases(ShardId(0));
        assert_eq!(t.epoch(), epoch, "renewal must not bump the epoch");
        assert!(lease.validate(&key), "refill observed the renewal");
        // Without renewal, expiry is honoured.
        clock.advance(Duration::from_secs(11));
        assert!(!lease.validate(&key), "expired lease rejected");
    }

    #[test]
    fn invalidate_forces_refill() {
        let (t, _) = table(4, Duration::from_secs(10));
        t.assign_round_robin(&[ShardId(0)]);
        let lease = OwnershipLease::new(t.clone(), ShardId(0));
        let key = Key::from_u64(3);
        assert!(lease.validate(&key));
        lease.invalidate();
        // Still valid — but only because the refill re-read the table.
        assert!(lease.validate(&key));
    }

    #[test]
    fn cut_lease_serves_within_ttl_and_fences_on_world_line() {
        let lease = CutLease::new(Duration::from_secs(60));
        let fetches = std::cell::Cell::new(0u32);
        let fetch = |wl: u64, v: u64| {
            fetches.set(fetches.get() + 1);
            Ok::<_, DprError>((WorldLine(wl), Cut::from([(ShardId(0), Version(v))])))
        };
        let a = lease.get(WorldLine(0), || fetch(0, 1)).unwrap();
        assert_eq!(a.1[&ShardId(0)], Version(1));
        // Within TTL + same world-line: served from cache.
        let b = lease.get(WorldLine(0), || fetch(0, 2)).unwrap();
        assert_eq!(b.1[&ShardId(0)], Version(1));
        assert_eq!(fetches.get(), 1);
        // World-line fence: the cached value is from world-line 0, the
        // caller is on 1 → refetch despite the TTL.
        let c = lease.get(WorldLine(1), || fetch(1, 5)).unwrap();
        assert_eq!(c.0, WorldLine(1));
        assert_eq!(fetches.get(), 2);
        // Invalidation drops the cache entirely.
        lease.invalidate();
        let d = lease.get(WorldLine(1), || fetch(1, 9)).unwrap();
        assert_eq!(d.1[&ShardId(0)], Version(9));
        assert_eq!(fetches.get(), 3);
    }
}
