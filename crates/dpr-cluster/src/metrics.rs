//! Metric accessors for the cluster layer.
//!
//! Every metric defined here is documented (name, unit, paper
//! cross-reference) in `docs/OBSERVABILITY.md`; keep the two in sync.

use dpr_telemetry::metric_fn;

metric_fn!(
    /// Batches executed by workers (local + remote).
    pub(crate) fn batches() -> Counter =
        ("dpr_cluster_batches_total", Count,
         "Batches executed by workers")
);

metric_fn!(
    /// Operations per executed batch (the Fig. 13 batching axis `b`).
    pub(crate) fn batch_ops() -> Histogram =
        ("dpr_cluster_batch_ops", Ops,
         "Operations per executed batch")
);

metric_fn!(
    /// Depth of a worker's request inbox, sampled by executor threads every
    /// ~64 receives (not per message — the gauge must not ride the hot path).
    pub(crate) fn worker_inbox_depth() -> Gauge =
        ("dpr_cluster_worker_inbox_depth", Count,
         "Requests queued in a worker inbox (sampled every ~64 receives)")
);

metric_fn!(
    /// Messages queued in the simulated network's delay heap.
    pub(crate) fn net_inflight() -> Gauge =
        ("dpr_cluster_net_inflight", Count,
         "Messages in flight on the simulated network (delay heap depth)")
);

metric_fn!(
    /// Messages dropped by an injected lossy-link fault (chaos harness).
    pub(crate) fn net_dropped() -> Counter =
        ("dpr_cluster_net_dropped_total", Count,
         "Messages dropped by injected lossy-link faults")
);

metric_fn!(
    /// Messages currently parked behind a partitioned-link fault.
    pub(crate) fn net_parked() -> Gauge =
        ("dpr_cluster_net_parked", Count,
         "Messages held behind partitioned links (released on heal)")
);

metric_fn!(
    /// TCP connections currently held by network-plane I/O threads.
    pub(crate) fn net_conns_active() -> Gauge =
        ("dpr_net_conns_active", Count,
         "Open network-plane TCP connections (accepted minus closed)")
);

metric_fn!(
    /// Frames sent by the network plane (server side).
    pub(crate) fn net_frames_tx() -> Counter =
        ("dpr_net_frames_tx_total", Count,
         "Wire frames transmitted by the network plane")
);

metric_fn!(
    /// Frames received by the network plane (server side).
    pub(crate) fn net_frames_rx() -> Counter =
        ("dpr_net_frames_rx_total", Count,
         "Wire frames received by the network plane")
);

metric_fn!(
    /// Encoded size of every frame crossing the network plane, both
    /// directions (header + body).
    pub(crate) fn net_frame_bytes() -> Histogram =
        ("dpr_net_frame_bytes", Bytes,
         "Encoded wire-frame sizes (header + body, both directions)")
);

metric_fn!(
    /// Protocol-level rejections emitted as Error frames (bad magic or
    /// version, handshake violations, stale epochs, unknown shards,
    /// duplicate-in-flight).
    pub(crate) fn net_frame_rejects() -> Counter =
        ("dpr_net_frame_rejects_total", Count,
         "Error frames sent for protocol-level rejections")
);

metric_fn!(
    /// Ownership-lease cache refills: the worker re-snapshotted the shared
    /// ownership table (epoch moved, lease expired, or explicit invalidate).
    pub(crate) fn lease_refills() -> Counter =
        ("dpr_cluster_lease_refills_total", Count,
         "Worker ownership-lease cache refills from the shared table")
);

metric_fn!(
    /// Explicit lease-cache invalidations (ownership or cut), driven by
    /// recovery and membership changes.
    pub(crate) fn lease_invalidations() -> Counter =
        ("dpr_cluster_lease_invalidations_total", Count,
         "Explicit worker lease-cache invalidations (recovery, membership change)")
);

metric_fn!(
    /// Cluster recoveries completed (§4.1).
    pub(crate) fn recoveries() -> Counter =
        ("dpr_cluster_recoveries_total", Count,
         "Cluster recoveries driven to completion")
);

metric_fn!(
    /// Whole-cluster recovery duration, failure trigger to all-workers-done.
    pub(crate) fn recovery_duration() -> Histogram =
        ("dpr_cluster_recovery_us", Micros,
         "Cluster recovery duration from trigger_failure to the last rollback report")
);

metric_fn!(
    /// Per-worker rollbacks performed during recoveries.
    pub(crate) fn worker_rollbacks() -> Counter =
        ("dpr_cluster_worker_rollbacks_total", Count,
         "Worker rollbacks to the guaranteed cut during recovery")
);
