//! The cluster manager (§4.1).
//!
//! An external entity (Kubernetes / Service Fabric in the paper) detects
//! failures and orchestrates recovery: it assigns a serial id to each
//! failure (the new world-line), halts DPR progress, asks every worker to
//! roll back to the guaranteed cut, and resumes progress once all workers
//! report completion. Here the manager drives the shared metadata store;
//! workers participate by polling it (see `Worker::check_recovery`).

use dpr_core::{DprError, Result, ShardId};
use dpr_metadata::{MetadataStore, RecoveryState};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Failure detection and recovery orchestration.
pub struct ClusterManager {
    meta: Arc<dyn MetadataStore>,
    /// Telemetry only: when the in-flight recovery was triggered.
    recovery_started: Mutex<Option<Instant>>,
}

impl ClusterManager {
    /// Manager over the shared metadata store.
    pub fn new(meta: Arc<dyn MetadataStore>) -> Self {
        ClusterManager {
            meta,
            recovery_started: Mutex::new(None),
        }
    }

    /// Report a detected failure: bumps the world-line, freezes DPR
    /// progress, and instructs every worker to roll back to the guaranteed
    /// cut. Returns the recovery state (workers complete it asynchronously).
    ///
    /// Mirrors §7.4's methodology: "we simulated a worker failure by
    /// notifying workers of a new world-line, forcing all workers to
    /// rollback to the latest DPR cut."
    pub fn trigger_failure(&self) -> Result<RecoveryState> {
        self.trigger_failure_at(None)
    }

    /// [`ClusterManager::trigger_failure`] with failure attribution: when
    /// `crashed` names a shard, the `recovery_begin` span records which
    /// worker the detector blamed (the recovery protocol itself is
    /// unchanged — per §4.1 every worker rolls back to the guaranteed cut
    /// regardless of which one failed).
    pub fn trigger_failure_at(&self, crashed: Option<ShardId>) -> Result<RecoveryState> {
        let rec = self.meta.begin_recovery()?;
        *self.recovery_started.lock() = dpr_telemetry::enabled().then(Instant::now);
        dpr_telemetry::global().span("dpr-cluster", "recovery_begin", || {
            let blame = match crashed {
                Some(shard) => format!("crashed shard {}, ", shard.0),
                None => String::new(),
            };
            format!(
                "{}world-line {} ({} shards to roll back)",
                blame,
                rec.world_line.0,
                rec.pending.len()
            )
        });
        Ok(rec)
    }

    /// Block until any in-flight recovery completes.
    pub fn wait_recovery_complete(&self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        while self.meta.recovery_in_progress()?.is_some() {
            if Instant::now() > deadline {
                return Err(DprError::Timeout);
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        crate::metrics::recoveries().inc();
        if let Some(started) = self.recovery_started.lock().take() {
            crate::metrics::recovery_duration().record_micros(started.elapsed());
        }
        dpr_telemetry::global().span("dpr-cluster", "recovery_complete", || {
            "all pending shards rolled back; progress resumed".to_string()
        });
        Ok(())
    }

    /// Whether a recovery is currently in progress.
    pub fn recovering(&self) -> Result<bool> {
        Ok(self.meta.recovery_in_progress()?.is_some())
    }
}
