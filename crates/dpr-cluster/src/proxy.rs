//! A pass-through proxy: forwards request batches to a worker and relays
//! the responses back, adding one network hop and nothing else.
//!
//! Used by the Fig. 17/18 experiments to separate the cost of D-Redis's
//! proxy hop from the cost of the DPR protocol itself (§7.5: "we repeated
//! the experiment with a pass-through proxy without DPR").

use crate::message::{Message, ResponseMsg};
use crate::transport::{EndpointId, SimNetwork};
use dpr_core::SessionId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Start a proxy in front of `target`; returns the proxy's endpoint, which
/// clients should address instead of the worker's.
pub fn start_proxy(net: &Arc<SimNetwork>, target: EndpointId) -> EndpointId {
    let (endpoint, rx) = net.register();
    let net = Arc::downgrade(net);
    std::thread::Builder::new()
        .name("dredis-proxy".into())
        .spawn(move || {
            // (session, first_serial) → client endpoint awaiting the reply.
            let mut pending: HashMap<(SessionId, u64), EndpointId> = HashMap::new();
            loop {
                let Some(net) = net.upgrade() else { return };
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(Message::Request(mut req)) => {
                        pending.insert((req.header.session, req.header.first_serial), req.reply_to);
                        req.reply_to = endpoint;
                        let _ = net.send(target, Message::Request(req));
                    }
                    Ok(Message::Response(resp)) => {
                        if let Some(client) = lookup(&mut pending, &resp) {
                            let _ = net.send(client, Message::Response(resp));
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }
        })
        .expect("spawn proxy");
    endpoint
}

fn lookup(
    pending: &mut HashMap<(SessionId, u64), EndpointId>,
    resp: &ResponseMsg,
) -> Option<EndpointId> {
    let session = resp.session?;
    pending.remove(&(session, resp.first_serial))
}
