//! The D-Redis shard: DPR over an *unmodified* Redis-like store via the
//! libDPR wrapper pattern (§6).
//!
//! The wrapper owns one latch around the single-threaded store: `Commit()`
//! takes it exclusively to issue `BGSAVE`, and each incoming batch takes it
//! while executing — which also guarantees all ops of a batch land in the
//! same version, the invariant the D-Redis server wrapper maintains with
//! its shared/exclusive latch pair. A background `LASTSAVE` poll (here:
//! inspecting `lastsave()` inside `take_commits`) detects checkpoint
//! completion, and `Restore()` restarts the instance from a snapshot.

use crate::message::{ClusterOp, OpResult};
use crate::worker::ShardStore;
use dpr_core::{Result, SessionId, ShardId, Version};
use dpr_redis::{Command, RedisStore, Reply, SaveId};
use libdpr::{CommitDescriptor, StateObject};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

struct RedisInner {
    store: RedisStore,
    /// DPR version → save id of the BGSAVE that sealed it.
    version_saves: BTreeMap<Version, SaveId>,
    /// Versions whose BGSAVE was issued but not yet observed complete.
    unreported: Vec<Version>,
}

/// A Redis-backed shard (the D-Redis proxy + libDPR server side).
pub struct RedisShard {
    shard: ShardId,
    inner: Mutex<RedisInner>,
    /// Version ops currently execute in.
    current: AtomicU64,
    /// Latest version whose snapshot is known durable.
    durable: AtomicU64,
}

impl RedisShard {
    /// Wrap an (unmodified) store as shard `shard`.
    pub fn new(shard: ShardId, store: RedisStore) -> Self {
        RedisShard {
            shard,
            inner: Mutex::new(RedisInner {
                store,
                version_saves: BTreeMap::new(),
                unreported: Vec::new(),
            }),
            current: AtomicU64::new(1),
            durable: AtomicU64::new(0),
        }
    }
}

impl ShardStore for RedisShard {
    fn execute_batch(
        &self,
        session: SessionId,
        ops: &[ClusterOp],
    ) -> Result<(Vec<OpResult>, Version)> {
        let mut results = Vec::with_capacity(ops.len());
        let version = self.execute_batch_into(session, ops, &mut results)?;
        Ok((results, version))
    }

    fn execute_batch_into(
        &self,
        _session: SessionId,
        ops: &[ClusterOp],
        out: &mut Vec<OpResult>,
    ) -> Result<Version> {
        // The batch latch: exclusive access to the single-threaded store for
        // the whole batch, so every op executes in one version.
        let base = out.len();
        let mut inner = self.inner.lock();
        let version = Version(self.current.load(Ordering::Acquire));
        for op in ops {
            let cmd = match op {
                ClusterOp::Read(k) => Command::Get(k.clone()),
                ClusterOp::Upsert(k, v) => Command::Set(k.clone(), v.clone()),
                ClusterOp::Incr(k) => Command::Incr(k.clone()),
                ClusterOp::Delete(k) => Command::Del(k.clone()),
            };
            match inner.store.execute(&cmd) {
                Ok(Reply::Value(v)) => out.push(OpResult::Value(v)),
                Ok(Reply::Ok | Reply::Int(_)) => out.push(OpResult::Done),
                Err(e) => {
                    out.truncate(base);
                    return Err(e);
                }
            }
        }
        Ok(version)
    }

    fn scan_live(&self) -> Result<Vec<(dpr_core::Key, dpr_core::Value)>> {
        Ok(self.inner.lock().store.entries())
    }
}

impl StateObject for RedisShard {
    fn shard(&self) -> ShardId {
        self.shard
    }

    fn current_version(&self) -> Version {
        Version(self.current.load(Ordering::Acquire))
    }

    fn durable_version(&self) -> Version {
        Version(self.durable.load(Ordering::Acquire))
    }

    fn request_commit(&self, target: Option<Version>) -> bool {
        // Exclusive latch for BGSAVE (§6).
        let mut inner = self.inner.lock();
        let sealing = Version(self.current.load(Ordering::Acquire));
        match inner.store.bgsave() {
            Ok(save_id) => {
                inner.version_saves.insert(sealing, save_id);
                inner.unreported.push(sealing);
                let next = target.map_or(sealing.next(), |t| t.max(sealing.next()));
                self.current.store(next.0, Ordering::Release);
                true
            }
            // A save is already running; the request is absorbed.
            Err(_) => false,
        }
    }

    fn take_commits(&self) -> Vec<CommitDescriptor> {
        // The periodic LASTSAVE poll (§6).
        let mut inner = self.inner.lock();
        let last = inner.store.lastsave();
        let mut done = Vec::new();
        let RedisInner {
            version_saves,
            unreported,
            ..
        } = &mut *inner;
        unreported.retain(|&v| {
            let complete = version_saves.get(&v).is_some_and(|&save| save <= last);
            if complete {
                done.push(CommitDescriptor { version: v });
            }
            !complete
        });
        for d in &done {
            self.durable.fetch_max(d.version.0, Ordering::AcqRel);
        }
        done
    }

    fn restore(&self, version: Version) -> Result<()> {
        let mut inner = self.inner.lock();
        // Restart from the newest snapshot at or below the target.
        let save = inner
            .version_saves
            .range(..=version)
            .next_back()
            .map(|(_, &s)| s);
        match save {
            Some(save) => inner.store.restore(save)?,
            None => inner.store.restore_empty(),
        }
        // Discard doomed versions: their in-flight snapshots must never be
        // reported as commits.
        inner.version_saves.retain(|&v, _| v <= version);
        inner.unreported.retain(|&v| v <= version);
        let cur = self.current.load(Ordering::Acquire);
        self.current
            .store(cur.max(version.0 + 1), Ordering::Release);
        self.durable.store(
            self.durable.load(Ordering::Acquire).min(version.0),
            Ordering::Release,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::{Key, Value};
    use dpr_redis::RedisConfig;
    use dpr_storage::MemBlobStore;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn shard() -> RedisShard {
        let store =
            RedisStore::new(RedisConfig::default(), Arc::new(MemBlobStore::new()), None).unwrap();
        RedisShard::new(ShardId(0), store)
    }

    fn wait_commits(s: &RedisShard) -> Vec<CommitDescriptor> {
        let start = Instant::now();
        loop {
            let c = s.take_commits();
            if !c.is_empty() || start.elapsed() > Duration::from_secs(5) {
                return c;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn batch_runs_in_one_version() {
        let s = shard();
        let (results, version) = s
            .execute_batch(
                SessionId(1),
                &[
                    ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(1)),
                    ClusterOp::Read(Key::from_u64(1)),
                ],
            )
            .unwrap();
        assert_eq!(version, Version(1));
        assert_eq!(results[1], OpResult::Value(Some(Value::from_u64(1))));
    }

    #[test]
    fn commit_advances_version_and_reports() {
        let s = shard();
        s.execute_batch(
            SessionId(1),
            &[ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(1))],
        )
        .unwrap();
        assert!(s.request_commit(None));
        assert_eq!(s.current_version(), Version(2));
        let commits = wait_commits(&s);
        assert_eq!(
            commits,
            vec![CommitDescriptor {
                version: Version(1)
            }]
        );
        assert_eq!(s.durable_version(), Version(1));
    }

    #[test]
    fn restore_returns_to_snapshot_state() {
        let s = shard();
        s.execute_batch(
            SessionId(1),
            &[ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(1))],
        )
        .unwrap();
        s.request_commit(None);
        wait_commits(&s);
        // Version 2 writes, then failure.
        s.execute_batch(
            SessionId(1),
            &[ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(99))],
        )
        .unwrap();
        s.restore(Version(1)).unwrap();
        let (results, v) = s
            .execute_batch(SessionId(1), &[ClusterOp::Read(Key::from_u64(1))])
            .unwrap();
        assert_eq!(results[0], OpResult::Value(Some(Value::from_u64(1))));
        assert!(v >= Version(2), "post-restore ops in a later version");
    }

    #[test]
    fn restore_to_zero_empties_store() {
        let s = shard();
        s.execute_batch(
            SessionId(1),
            &[ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(1))],
        )
        .unwrap();
        s.restore(Version::ZERO).unwrap();
        let (results, _) = s
            .execute_batch(SessionId(1), &[ClusterOp::Read(Key::from_u64(1))])
            .unwrap();
        assert_eq!(results[0], OpResult::Value(None));
    }

    #[test]
    fn fast_forward_commit_target() {
        let s = shard();
        assert!(s.request_commit(Some(Version(9))));
        wait_commits(&s);
        assert_eq!(s.current_version(), Version(9));
    }
}
