//! Cluster-level operations and wire messages.

use dpr_core::{Key, Result, Value};
use libdpr::{BatchHeader, BatchReply};
use serde::{Deserialize, Serialize};

/// One operation as submitted by an application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterOp {
    /// Point read.
    Read(Key),
    /// Blind upsert.
    Upsert(Key, Value),
    /// Read-modify-write: increment a u64 counter.
    Incr(Key),
    /// Delete.
    Delete(Key),
}

impl ClusterOp {
    /// The key this op touches (DPR assumes single-key ops, §1).
    #[must_use]
    pub fn key(&self) -> &Key {
        match self {
            ClusterOp::Read(k)
            | ClusterOp::Upsert(k, _)
            | ClusterOp::Incr(k)
            | ClusterOp::Delete(k) => k,
        }
    }
}

/// Result of one completed op.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpResult {
    /// Read result.
    Value(Option<Value>),
    /// Mutation acknowledged (uncommitted — commit is reported later via the
    /// DPR cut).
    Done,
}

/// A request batch in flight from a client to a worker.
#[derive(Debug)]
pub struct RequestMsg {
    /// Where to send the response.
    pub reply_to: crate::transport::EndpointId,
    /// DPR header (piggybacked protocol state).
    pub header: BatchHeader,
    /// Operation bodies.
    pub ops: Vec<ClusterOp>,
}

/// A response batch.
#[derive(Debug)]
pub struct ResponseMsg {
    /// Session the batch belonged to (echoed for proxy routing).
    pub session: Option<dpr_core::SessionId>,
    /// Serial of the first op this responds to (echoed even on error so the
    /// client can account for the batch).
    pub first_serial: u64,
    /// Number of ops covered.
    pub op_count: u32,
    /// The reply header and results, or the rejection error.
    pub outcome: Result<(BatchReply, Vec<OpResult>)>,
}

/// Any message on the bus.
#[derive(Debug)]
pub enum Message {
    /// Client → worker.
    Request(RequestMsg),
    /// Worker → client.
    Response(ResponseMsg),
}
