//! # dpr-cluster
//!
//! In-process distributed deployments of DPR: **D-FASTER** (§5) and
//! **D-Redis** (§6), plus the cluster manager (§4.1) and the client stack.
//!
//! The cluster is a set of shard *workers*, each owning a slice of the
//! keyspace (virtual partitions, §5.3), executing client batches against its
//! local cache-store, and running the libDPR server hooks. Workers
//! coordinate only through the shared metadata store (DPR table, ownership,
//! membership, recovery state) and the client-piggybacked headers — no
//! worker-to-worker traffic, as in the paper.
//!
//! Two network planes serve the same protocol code: the in-process message
//! bus with configurable one-way latency ([`transport`], for simulation and
//! chaos testing), and the real TCP plane ([`net`] server, [`tcp`] clients,
//! [`wire`] codec — specified byte-by-byte in `docs/NETWORK.md`).

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod dfaster;
pub mod dredis;
pub mod lease;
pub mod manager;
pub mod message;
mod metrics;
pub mod net;
pub mod proxy;
pub mod tcp;
pub mod transport;
pub mod wire;
pub mod worker;

pub use client::{SessionHandle, SessionStats};
pub use cluster::{Cluster, ClusterConfig, ClusterKind};
pub use dfaster::FasterShard;
pub use dredis::RedisShard;
pub use lease::{CutLease, OwnershipLease};
pub use manager::ClusterManager;
pub use message::{ClusterOp, OpResult};
pub use net::{NetServer, NetServerConfig};
pub use tcp::{Completed, CompletedRef, PipelinedClient, TcpClient};
pub use transport::{EndpointId, LinkFault, SimNetwork};
pub use worker::{ShardStore, Worker};
