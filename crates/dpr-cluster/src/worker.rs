//! Shard workers: batch execution + libDPR server hooks + background
//! checkpointing, commit pumping, and recovery participation.

use crate::lease::{CutLease, OwnershipLease};
use crate::message::{ClusterOp, Message, OpResult, RequestMsg, ResponseMsg};
use crate::transport::{EndpointId, SimNetwork};
use crossbeam::channel::Receiver;
use dpr_core::{DprError, Result, SessionId, ShardId, Version, WorldLine};
use dpr_metadata::{MetadataStore, OwnershipTable};
use libdpr::{BatchHeader, BatchReply, DprFinder, DprServer, StateObject};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// A cache-store shard as the worker drives it: the libDPR
/// [`StateObject`] plus batch execution.
pub trait ShardStore: StateObject {
    /// Execute a batch of operations for `session`, returning per-op results
    /// and the version the batch executed in.
    fn execute_batch(
        &self,
        session: SessionId,
        ops: &[ClusterOp],
    ) -> Result<(Vec<OpResult>, Version)>;

    /// Like [`ShardStore::execute_batch`] but appends results to a
    /// caller-provided buffer, so steady-state callers (the network plane)
    /// can reuse one allocation across batches. The default delegates to
    /// [`ShardStore::execute_batch`]; hot stores override it to write
    /// results in place.
    fn execute_batch_into(
        &self,
        session: SessionId,
        ops: &[ClusterOp],
        out: &mut Vec<OpResult>,
    ) -> Result<Version> {
        let (results, version) = self.execute_batch(session, ops)?;
        out.extend(results);
        Ok(version)
    }

    /// Snapshot the live key/value pairs (key migration, §5.3).
    fn scan_live(&self) -> Result<Vec<(dpr_core::Key, dpr_core::Value)>>;

    /// Garbage-collect durable state below the DPR-guaranteed `version`
    /// (§5.5). Default: stores with no log to truncate do nothing.
    fn collect_garbage(&self, version: Version) -> Result<()> {
        let _ = version;
        Ok(())
    }

    /// Chaos fault point: delay in-flight and future checkpoint
    /// completion for `duration`, simulating a hung flush device.
    /// Default: stores without a checkpoint machine ignore it.
    fn inject_commit_stall(&self, duration: Duration) {
        let _ = duration;
    }

    /// Lift any active commit stall ("the device recovers"). The chaos
    /// harness must call this before injecting a crash: rollback waits
    /// for the checkpoint machine to go idle, which a stalled `WaitFlush`
    /// phase would block. Default: no-op.
    fn clear_commit_stall(&self) {}
}

/// Worker behavior knobs (these map onto the paper's experiment axes).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Checkpoint trigger period; `None` disables checkpoints entirely
    /// ("No Chkpts" in Figs. 10–11).
    pub checkpoint_interval: Option<Duration>,
    /// Track dependencies and report commits to the DPR finder. Disabling
    /// this with checkpoints still on gives the "No DPR" / eventual
    /// configurations.
    pub dpr_enabled: bool,
    /// Make every batch wait for durability before replying (the
    /// synchronous recoverability level of §7.6).
    pub sync_commit: bool,
    /// Executor threads consuming the request inbox.
    pub executors: usize,
    /// Validate key ownership per operation (§5.3).
    pub validate_ownership: bool,
    /// Fast-forward lagging checkpoints to the cluster `Vmax` (§3.4).
    pub fast_forward: bool,
    /// Remember the replies of the last `dedupe_window` remote batches
    /// per worker and replay them on duplicate delivery instead of
    /// re-executing, keeping non-idempotent ops exactly-once when clients
    /// retransmit over lossy links. `0` (the default) disables the cache;
    /// the chaos harness enables it alongside client retransmission.
    pub dedupe_window: usize,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            checkpoint_interval: Some(Duration::from_millis(100)),
            dpr_enabled: true,
            sync_commit: false,
            executors: 2,
            validate_ownership: true,
            fast_forward: true,
            dedupe_window: 0,
        }
    }
}

/// State of one remembered batch in the duplicate-suppression cache.
enum DedupeEntry {
    /// The first copy is still executing; drop duplicates (its reply is
    /// already on the way, and the client retries again if it is lost).
    Executing,
    /// Completed; replay this reply on duplicate delivery.
    Done(BatchReply, Vec<OpResult>),
}

/// Bounded FIFO cache of recent batch replies, keyed by the client-unique
/// `(session, first_serial)` pair.
#[derive(Default)]
struct DedupeCache {
    entries: std::collections::HashMap<(SessionId, u64), DedupeEntry>,
    order: std::collections::VecDeque<(SessionId, u64)>,
    /// Result buffers reclaimed from evicted `Done` entries; recording a
    /// fresh outcome reuses one, so a full window caches replies without
    /// a per-batch allocation.
    spare: Vec<Vec<OpResult>>,
}

/// Cap on recycled result buffers per dedupe stripe.
const DEDUPE_SPARE_BUFFERS: usize = 32;

/// One cache-padded dedupe stripe. The cache is sharded by session so
/// concurrent sessions on different I/O threads stop serialising on one
/// global lock (§6's "implemented scalably", applied to session state).
#[repr(align(128))]
struct DedupeStripe(parking_lot::Mutex<DedupeCache>);

/// One shard worker.
pub struct Worker {
    shard: ShardId,
    store: Arc<dyn ShardStore>,
    server: Arc<DprServer>,
    net: Arc<SimNetwork>,
    endpoint: EndpointId,
    ownership: Arc<OwnershipTable>,
    /// Worker-local lease cache over `ownership` — the per-op validation
    /// path reads this (one epoch load + local lookup) instead of taking
    /// the shared table's lock per operation (§5.3 at scale).
    ownership_lease: OwnershipLease,
    meta: Arc<dyn MetadataStore>,
    finder: Arc<dyn DprFinder>,
    config: WorkerConfig,
    shutdown: AtomicBool,
    /// Operations executed (all sessions) — worker-side throughput counter.
    executed_ops: AtomicU64,
    /// Duplicate suppression for retransmitted remote batches, striped by
    /// session (volatile: a crash-restart clears it, which is safe because
    /// the rolled-back world-line forces clients to rebuild their sessions
    /// anyway).
    dedupe: Box<[DedupeStripe]>,
    /// FIFO window per dedupe stripe (`config.dedupe_window` split across
    /// the stripes).
    dedupe_stripe_window: usize,
    /// TTL + world-line-fenced `(world_line, cut)` cache served to `CutReq`
    /// frames, so commit polling from many clients does not clone the cut
    /// out of the metadata store per request. Staleness is bounded by
    /// [`CUT_CACHE_TTL`] (well under the finder's own publish cadence) and
    /// by the world-line fence: a cut from an abandoned world-line is never
    /// served after this worker rolls forward.
    cut_lease: CutLease,
}

/// See [`Worker::read_cut_cached`].
const CUT_CACHE_TTL: Duration = Duration::from_millis(2);

impl Worker {
    /// Create and start a worker: registers on the bus and metadata store,
    /// spawns executor and control threads.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        shard: ShardId,
        store: Arc<dyn ShardStore>,
        net: Arc<SimNetwork>,
        ownership: Arc<OwnershipTable>,
        meta: Arc<dyn MetadataStore>,
        finder: Arc<dyn DprFinder>,
        config: WorkerConfig,
    ) -> Result<Arc<Worker>> {
        let (endpoint, inbox) = net.register();
        meta.register_worker(shard)?;
        let stripes = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .next_power_of_two()
            .min(16);
        let dedupe_stripe_window = config.dedupe_window.div_ceil(stripes).max(1);
        let worker = Arc::new(Worker {
            shard,
            store,
            server: Arc::new(DprServer::new(shard)),
            net,
            endpoint,
            ownership_lease: OwnershipLease::new(ownership.clone(), shard),
            ownership,
            meta,
            finder,
            config,
            shutdown: AtomicBool::new(false),
            executed_ops: AtomicU64::new(0),
            dedupe: (0..stripes)
                .map(|_| DedupeStripe(parking_lot::Mutex::new(DedupeCache::default())))
                .collect(),
            dedupe_stripe_window,
            cut_lease: CutLease::new(CUT_CACHE_TTL),
        });
        for i in 0..worker.config.executors.max(1) {
            let weak = Arc::downgrade(&worker);
            let rx = inbox.clone();
            std::thread::Builder::new()
                .name(format!("worker-{}-exec-{i}", shard.0))
                .spawn(move || executor_loop(&weak, &rx))
                .expect("spawn executor");
        }
        {
            let weak = Arc::downgrade(&worker);
            std::thread::Builder::new()
                .name(format!("worker-{}-ctl", shard.0))
                .spawn(move || control_loop(&weak))
                .expect("spawn control thread");
        }
        Ok(worker)
    }

    /// This worker's shard id.
    #[must_use]
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// This worker's bus address.
    #[must_use]
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// The world-line this worker is on.
    #[must_use]
    pub fn world_line(&self) -> WorldLine {
        self.server.world_line()
    }

    /// Total operations executed by this worker.
    #[must_use]
    pub fn executed_ops(&self) -> u64 {
        self.executed_ops.load(Ordering::Relaxed)
    }

    /// The underlying store (tests/diagnostics).
    #[must_use]
    pub fn store(&self) -> &Arc<dyn ShardStore> {
        &self.store
    }

    /// Execute a batch on the calling thread — the path used both by
    /// executor threads for remote requests and directly by co-located
    /// applications (§5.2's local execution).
    pub fn execute_local(
        &self,
        header: &BatchHeader,
        ops: &[ClusterOp],
    ) -> Result<(BatchReply, Vec<OpResult>)> {
        let mut results = Vec::with_capacity(ops.len());
        let reply = self.execute_local_into(header, ops, &mut results)?;
        Ok((reply, results))
    }

    /// [`Worker::execute_local`] with a caller-provided results buffer —
    /// the network plane's steady-state path reuses one buffer across
    /// batches so a request allocates nothing here. Results are appended.
    pub fn execute_local_into(
        &self,
        header: &BatchHeader,
        ops: &[ClusterOp],
        results: &mut Vec<OpResult>,
    ) -> Result<BatchReply> {
        self.server
            .validate_blocking(header, self.store.as_ref(), Duration::from_secs(10))?;
        if self.config.validate_ownership {
            for op in ops {
                if !self.ownership_lease.validate(op.key()) {
                    return Err(DprError::NotOwner { shard: self.shard });
                }
            }
        }
        let version = self
            .store
            .execute_batch_into(header.session, ops, results)?;
        self.executed_ops
            .fetch_add(ops.len() as u64, Ordering::Relaxed);
        crate::metrics::batches().inc();
        crate::metrics::batch_ops().record(ops.len() as u64);
        if self.config.dpr_enabled {
            self.server.record_batch(header, version);
        }
        if self.config.sync_commit {
            // Synchronous recoverability: group-commit and wait (§7.6),
            // backing off spin → yield → short sleep so waiting batches do
            // not burn a core while the checkpoint completes.
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut backoff = dpr_core::Backoff::new();
            while self.store.durable_version() < version {
                self.store.request_commit(None);
                if backoff.is_waiting_long() && Instant::now() > deadline {
                    return Err(DprError::Timeout);
                }
                backoff.snooze();
            }
        }
        Ok(self.server.make_reply(header, version))
    }

    /// Stop background threads.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Simulate the volatile-state loss of a process crash + restart
    /// (chaos harness, via [`crate::Cluster::inject_failure_at`]): durable
    /// state survives, the duplicate-suppression cache does not.
    pub fn simulate_crash_restart(&self) {
        for stripe in &self.dedupe {
            let mut cache = stripe.0.lock();
            cache.entries.clear();
            cache.order.clear();
        }
    }

    /// The dedupe stripe owning `session` (sessions map to stripes by a
    /// SplitMix-style hash so consecutive ids spread out).
    fn dedupe_stripe(&self, session: SessionId) -> &parking_lot::Mutex<DedupeCache> {
        let mut h = session.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        &self.dedupe[(h as usize) % self.dedupe.len()].0
    }

    /// Whether duplicate suppression is enabled for remote batches.
    #[must_use]
    pub(crate) fn dedupe_enabled(&self) -> bool {
        self.config.dedupe_window > 0
    }

    /// Current DPR cut and world-line straight from the metadata store —
    /// what the network plane serves for `CutReq` frames so remote clients
    /// can track commits without a side channel.
    pub fn read_cut(&self) -> Result<(WorldLine, dpr_metadata::Cut)> {
        let cut = self.meta.read_cut()?;
        let world_line = self.meta.world_line()?;
        Ok((world_line, cut))
    }

    /// Like [`Worker::read_cut`], but served from a `CUT_CACHE_TTL`-bounded,
    /// world-line-fenced cache shared by all readers: the steady-state
    /// commit-polling path (many clients sending `CutReq` frames) costs one
    /// metadata read per TTL instead of one cut clone per request. The
    /// fence is this worker's own world-line, so once recovery rolls the
    /// worker forward no cut from the abandoned world-line is served, even
    /// within the TTL window.
    pub fn read_cut_cached(&self) -> Result<Arc<(WorldLine, dpr_metadata::Cut)>> {
        self.cut_lease
            .get(self.server.world_line(), || self.read_cut())
    }

    /// Duplicate check for a remote batch. `None` means fresh (caller
    /// executes and records the outcome); `Some(None)` means a copy is
    /// already executing (drop the duplicate); `Some(Some(_))` replays
    /// the cached reply.
    #[allow(clippy::option_option)]
    pub(crate) fn dedupe_check(
        &self,
        header: &BatchHeader,
    ) -> Option<Option<(BatchReply, Vec<OpResult>)>> {
        let key = (header.session, header.first_serial);
        let mut cache = self.dedupe_stripe(header.session).lock();
        match cache.entries.get(&key) {
            Some(DedupeEntry::Executing) => Some(None),
            Some(DedupeEntry::Done(reply, results)) => Some(Some((reply.clone(), results.clone()))),
            None => {
                cache.entries.insert(key, DedupeEntry::Executing);
                cache.order.push_back(key);
                while cache.order.len() > self.dedupe_stripe_window {
                    if let Some(old) = cache.order.pop_front() {
                        if let Some(DedupeEntry::Done(_, buf)) = cache.entries.remove(&old) {
                            if cache.spare.len() < DEDUPE_SPARE_BUFFERS {
                                cache.spare.push(buf);
                            }
                        }
                    }
                }
                None
            }
        }
    }

    /// Record the outcome of a fresh batch: successes are cached for
    /// replay; failures clear the in-flight marker so a retry re-executes.
    pub(crate) fn dedupe_record(
        &self,
        header: &BatchHeader,
        outcome: &Result<(BatchReply, Vec<OpResult>)>,
    ) {
        match outcome {
            Ok((reply, results)) => self.dedupe_record_parts(header, Ok((reply, results))),
            Err(e) => self.dedupe_record_parts(header, Err(e)),
        }
    }

    /// [`Worker::dedupe_record`] over borrowed parts, for callers that keep
    /// results in a reusable buffer instead of an owned tuple.
    pub(crate) fn dedupe_record_parts(
        &self,
        header: &BatchHeader,
        outcome: std::result::Result<(&BatchReply, &[OpResult]), &DprError>,
    ) {
        let key = (header.session, header.first_serial);
        let mut cache = self.dedupe_stripe(header.session).lock();
        match outcome {
            Ok((reply, results)) => {
                let mut buf = cache.spare.pop().unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(results);
                if let Some(entry) = cache.entries.get_mut(&key) {
                    *entry = DedupeEntry::Done(reply.clone(), buf);
                }
            }
            Err(_) => {
                if matches!(cache.entries.get(&key), Some(DedupeEntry::Executing)) {
                    cache.entries.remove(&key);
                    cache.order.retain(|k| k != &key);
                }
            }
        }
    }

    fn control_tick(&self, last_checkpoint: &mut Instant, poll_counter: &mut u32) {
        if let Some(interval) = self.config.checkpoint_interval {
            if last_checkpoint.elapsed() >= interval {
                let target = if self.config.dpr_enabled && self.config.fast_forward {
                    self.finder.max_version().ok()
                } else {
                    None
                };
                if self.store.request_commit(target) {
                    *last_checkpoint = Instant::now();
                }
            }
        }
        if self.config.dpr_enabled {
            let _ = self
                .server
                .pump_commits(self.store.as_ref(), self.finder.as_ref());
        }
        *poll_counter += 1;
        if (*poll_counter).is_multiple_of(4) {
            self.ownership.renew_leases(self.shard);
            self.check_recovery();
        }
        if (*poll_counter).is_multiple_of(512) && self.config.dpr_enabled {
            // GC durable log space the DPR cut has moved past (§5.5).
            if let Ok(cut) = self.finder.current_cut() {
                if let Some(&v) = cut.get(&self.shard) {
                    let _ = self.store.collect_garbage(v);
                }
            }
        }
    }

    /// Participate in cluster recovery (§4.1): if the cluster manager has
    /// begun a recovery we have not completed, roll back to the guaranteed
    /// cut, advance the world-line, and report completion.
    fn check_recovery(&self) {
        let Ok(Some(rec)) = self.meta.recovery_in_progress() else {
            return;
        };
        if !rec.pending.contains(&self.shard) || rec.world_line <= self.server.world_line() {
            return;
        }
        let target = rec.cut.get(&self.shard).copied().unwrap_or(Version::ZERO);
        if self.store.restore(target).is_ok() {
            self.server.on_restore(target);
            self.server.set_world_line(rec.world_line);
            // Cached replies carry the old world-line; never replay them
            // into the new one. Same for the lease caches: ownership may
            // have been reassigned around the failure, and the cached cut
            // belongs to the abandoned world-line.
            self.simulate_crash_restart();
            self.ownership_lease.invalidate();
            self.cut_lease.invalidate();
            crate::metrics::worker_rollbacks().inc();
            dpr_telemetry::global().span("dpr-cluster", "worker_rollback", || {
                format!(
                    "shard {} -> v{} (world-line {})",
                    self.shard.0, target.0, rec.world_line.0
                )
            });
            let _ = self.meta.report_rollback_complete(self.shard);
        }
    }
}

fn executor_loop(worker: &Weak<Worker>, inbox: &Receiver<Message>) {
    let mut recv_count = 0u32;
    loop {
        let Some(w) = worker.upgrade() else { return };
        if w.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Sample the gauge every ~64 receives: a telemetry store on every
        // message would ride the per-request hot path for a signal that only
        // needs trend resolution.
        if recv_count.is_multiple_of(64) {
            crate::metrics::worker_inbox_depth().set(inbox.len() as i64);
        }
        recv_count = recv_count.wrapping_add(1);
        match inbox.recv_timeout(Duration::from_millis(20)) {
            Ok(Message::Request(req)) => handle_request(&w, req),
            Ok(Message::Response(_)) => { /* workers do not expect responses */ }
            Err(_) => {}
        }
    }
}

fn handle_request(w: &Arc<Worker>, req: RequestMsg) {
    let RequestMsg {
        reply_to,
        header,
        ops,
    } = req;
    let dedupe = w.config.dedupe_window > 0;
    if dedupe {
        match w.dedupe_check(&header) {
            // First copy still executing; its reply is on the way.
            Some(None) => return,
            Some(Some(cached)) => {
                let _ = w.net.send(
                    reply_to,
                    Message::Response(ResponseMsg {
                        session: Some(header.session),
                        first_serial: header.first_serial,
                        op_count: header.op_count,
                        outcome: Ok(cached),
                    }),
                );
                return;
            }
            None => {}
        }
    }
    let outcome = w.execute_local(&header, &ops);
    if dedupe {
        w.dedupe_record(&header, &outcome);
    }
    let _ = w.net.send(
        reply_to,
        Message::Response(ResponseMsg {
            session: Some(header.session),
            first_serial: header.first_serial,
            op_count: header.op_count,
            outcome,
        }),
    );
}

fn control_loop(worker: &Weak<Worker>) {
    let mut last_checkpoint = Instant::now();
    let mut poll_counter = 0u32;
    loop {
        let Some(w) = worker.upgrade() else { return };
        if w.shutdown.load(Ordering::Acquire) {
            return;
        }
        w.control_tick(&mut last_checkpoint, &mut poll_counter);
        drop(w);
        std::thread::sleep(Duration::from_millis(1));
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.stop();
    }
}
