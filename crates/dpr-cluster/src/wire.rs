//! The binary wire protocol of the real network plane.
//!
//! Every byte that crosses a socket is specified in `docs/NETWORK.md`; this
//! module is the reference codec. Keep the two in lockstep — the acceptance
//! bar for the network plane is "a second implementation could interoperate
//! from the document alone".
//!
//! Framing is a fixed 24-byte little-endian header (magic, protocol
//! version, frame kind, flags, shard route, sequence number, body length)
//! followed by a kind-specific body. Bodies use fixed-width little-endian
//! integers and `u32`-length-prefixed byte strings — no varints, no
//! self-describing envelope — so offsets are computable from the spec
//! table. JSON (the old `tcp.rs` stub format) is gone from the wire.

use crate::message::{ClusterOp, OpResult};
use dpr_core::{DprError, Key, Result, SessionId, ShardId, Token, Value, Version, WorldLine};
use dpr_metadata::Cut;
use libdpr::{BatchHeader, BatchReply};

/// Leading magic of every frame: the ASCII bytes `D P R 1`.
pub const MAGIC: [u8; 4] = *b"DPR1";

/// Protocol version carried in byte 4 of the header. Peers MUST reject
/// frames with any other value (see [`ProtoErrorCode::UnsupportedVersion`]).
pub const WIRE_VERSION: u8 = 1;

/// Fixed frame-header length in bytes.
pub const FRAME_HEADER_LEN: usize = 24;

/// Upper bound on a frame body. Oversized length prefixes are a protocol
/// error (the connection is poisoned — resynchronisation is impossible).
pub const MAX_FRAME_BODY: usize = 32 << 20;

/// `shard` header value for frames that are not routed to a shard
/// (handshake, cut queries, errors).
pub const NO_SHARD: u32 = u32::MAX;

/// Decode-side sanity bounds (a malicious length prefix must not cause a
/// huge allocation before the body bytes actually arrive).
const MAX_DEPS: usize = 1 << 16;
const MAX_OPS: usize = 1 << 20;

/// Frame kinds (header byte 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server, first frame on a connection: binds it to a session.
    Hello = 1,
    /// Server → client: handshake accepted.
    HelloAck = 2,
    /// Client → server: one `(BatchHeader, ops)` batch.
    Request = 3,
    /// Server → client: the outcome of the request with the same `seq`.
    Response = 4,
    /// Client → server: ask for the current DPR cut.
    CutReq = 5,
    /// Server → client: the cut, for client-side commit tracking.
    CutResp = 6,
    /// Server → client: protocol-level rejection (not a batch outcome).
    Error = 7,
    /// Either direction: clean shutdown notice; the peer may close.
    Goodbye = 8,
}

impl FrameKind {
    /// Parse a kind byte.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::Request,
            4 => FrameKind::Response,
            5 => FrameKind::CutReq,
            6 => FrameKind::CutResp,
            7 => FrameKind::Error,
            8 => FrameKind::Goodbye,
            _ => return None,
        })
    }
}

/// One frame: the parsed header plus the raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Shard route ([`NO_SHARD`] when not applicable).
    pub shard: u32,
    /// Client-assigned sequence number, echoed verbatim in the matching
    /// [`FrameKind::Response`] / [`FrameKind::CutResp`] / [`FrameKind::Error`].
    pub seq: u64,
    /// Kind-specific body.
    pub body: Vec<u8>,
}

impl Frame {
    /// Append the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.kind as u8);
        out.extend_from_slice(&0u16.to_le_bytes()); // flags: reserved, zero
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.body);
    }

    /// Total encoded length.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        FRAME_HEADER_LEN + self.body.len()
    }
}

/// Try to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a prefix of a frame (read more
/// bytes), `Ok(Some((frame, consumed)))` on success, and `Err` on a
/// malformed header — after which the stream is unrecoverable and the
/// connection must be closed.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    if buf[0..4] != MAGIC {
        return Err(DprError::Invalid(format!(
            "bad frame magic {:02x?}",
            &buf[0..4]
        )));
    }
    if buf[4] != WIRE_VERSION {
        return Err(DprError::Invalid(format!(
            "unsupported wire version {}",
            buf[4]
        )));
    }
    let Some(kind) = FrameKind::from_u8(buf[5]) else {
        return Err(DprError::Invalid(format!("unknown frame kind {}", buf[5])));
    };
    let flags = u16::from_le_bytes([buf[6], buf[7]]);
    if flags != 0 {
        return Err(DprError::Invalid(format!("nonzero frame flags {flags:#x}")));
    }
    let shard = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let mut seq = [0u8; 8];
    seq.copy_from_slice(&buf[12..20]);
    let seq = u64::from_le_bytes(seq);
    let body_len = u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]) as usize;
    if body_len > MAX_FRAME_BODY {
        return Err(DprError::Invalid(format!(
            "oversized frame body {body_len}"
        )));
    }
    let total = FRAME_HEADER_LEN + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Frame {
            kind,
            shard,
            seq,
            body: buf[FRAME_HEADER_LEN..total].to_vec(),
        },
        total,
    )))
}

// ---------------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Bounds-checked body reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DprError::Invalid("truncated frame body".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME_BODY {
            return Err(DprError::Invalid(format!("oversized byte string {len}")));
        }
        self.take(len)
    }

    fn string(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| DprError::Invalid("non-UTF-8 string".into()))
    }

    /// Every body byte must be consumed: trailing garbage is a protocol
    /// error, not padding.
    fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DprError::Invalid(format!(
                "{} trailing bytes in frame body",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Body of a [`FrameKind::Hello`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The DPR session this connection will carry.
    pub session: SessionId,
    /// Connection epoch: 1 on the first dial, incremented on every
    /// reconnect of the same session. The server fences stale epochs so a
    /// zombie connection cannot race its replacement.
    pub epoch: u32,
    /// World-line the session believes it is on (diagnostic; batches carry
    /// their own world-line and are validated individually).
    pub world_line: WorldLine,
}

impl Hello {
    /// Build the frame (Hello carries no shard route; `seq` 0 by convention).
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut body = Vec::with_capacity(20);
        put_u64(&mut body, self.session.0);
        put_u32(&mut body, self.epoch);
        put_u64(&mut body, self.world_line.0);
        Frame {
            kind: FrameKind::Hello,
            shard: NO_SHARD,
            seq: 0,
            body,
        }
    }

    /// Parse from a [`FrameKind::Hello`] frame body.
    pub fn from_frame(f: &Frame) -> Result<Hello> {
        let mut c = Cursor::new(&f.body);
        let hello = Hello {
            session: SessionId(c.u64()?),
            epoch: c.u32()?,
            world_line: WorldLine(c.u64()?),
        };
        c.finish()?;
        Ok(hello)
    }
}

/// Body of a [`FrameKind::HelloAck`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// Epoch echoed from the accepted [`Hello`].
    pub epoch: u32,
    /// World-line the server is on.
    pub world_line: WorldLine,
    /// Shards reachable through this connection (the fan-in server hosts
    /// many workers behind one listener; clients route with the frame
    /// header's `shard` field).
    pub shards: Vec<ShardId>,
}

impl HelloAck {
    /// Build the frame.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut body = Vec::with_capacity(16 + 4 * self.shards.len());
        put_u32(&mut body, self.epoch);
        put_u64(&mut body, self.world_line.0);
        put_u32(&mut body, self.shards.len() as u32);
        for s in &self.shards {
            put_u32(&mut body, s.0);
        }
        Frame {
            kind: FrameKind::HelloAck,
            shard: NO_SHARD,
            seq: 0,
            body,
        }
    }

    /// Parse from a [`FrameKind::HelloAck`] frame body.
    pub fn from_frame(f: &Frame) -> Result<HelloAck> {
        let mut c = Cursor::new(&f.body);
        let epoch = c.u32()?;
        let world_line = WorldLine(c.u64()?);
        let n = c.u32()? as usize;
        if n > MAX_DEPS {
            return Err(DprError::Invalid(format!("absurd shard count {n}")));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(ShardId(c.u32()?));
        }
        c.finish()?;
        Ok(HelloAck {
            epoch,
            world_line,
            shards,
        })
    }
}

// ---------------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------------

/// One request over the wire (body of a [`FrameKind::Request`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// DPR header (piggybacked protocol state, §3.2).
    pub header: BatchHeader,
    /// Operation bodies.
    pub ops: Vec<ClusterOp>,
}

/// One response over the wire (body of a [`FrameKind::Response`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// The reply and results, or the protocol rejection.
    pub outcome: std::result::Result<(BatchReply, Vec<OpResult>), DprError>,
}

fn put_header(out: &mut Vec<u8>, h: &BatchHeader) {
    put_u64(out, h.session.0);
    put_u64(out, h.world_line.0);
    put_u64(out, h.version_lower_bound.0);
    put_u64(out, h.first_serial);
    put_u32(out, h.op_count);
    put_u32(out, h.deps.len() as u32);
    for t in &h.deps {
        put_u32(out, t.shard.0);
        put_u64(out, t.version.0);
    }
}

fn get_header(c: &mut Cursor<'_>) -> Result<BatchHeader> {
    let session = SessionId(c.u64()?);
    let world_line = WorldLine(c.u64()?);
    let version_lower_bound = Version(c.u64()?);
    let first_serial = c.u64()?;
    let op_count = c.u32()?;
    let ndeps = c.u32()? as usize;
    if ndeps > MAX_DEPS {
        return Err(DprError::Invalid(format!("absurd dep count {ndeps}")));
    }
    let mut deps = Vec::with_capacity(ndeps);
    for _ in 0..ndeps {
        let shard = ShardId(c.u32()?);
        let version = Version(c.u64()?);
        deps.push(Token::new(shard, version));
    }
    Ok(BatchHeader {
        session,
        world_line,
        version_lower_bound,
        deps,
        first_serial,
        op_count,
    })
}

fn put_op(out: &mut Vec<u8>, op: &ClusterOp) {
    match op {
        ClusterOp::Read(k) => {
            put_u8(out, 0);
            put_bytes(out, &k.0);
        }
        ClusterOp::Upsert(k, v) => {
            put_u8(out, 1);
            put_bytes(out, &k.0);
            put_bytes(out, &v.0);
        }
        ClusterOp::Incr(k) => {
            put_u8(out, 2);
            put_bytes(out, &k.0);
        }
        ClusterOp::Delete(k) => {
            put_u8(out, 3);
            put_bytes(out, &k.0);
        }
    }
}

fn get_op(c: &mut Cursor<'_>) -> Result<ClusterOp> {
    let tag = c.u8()?;
    let key = Key(bytes::Bytes::copy_from_slice(c.bytes()?));
    Ok(match tag {
        0 => ClusterOp::Read(key),
        1 => {
            let value = Value(bytes::Bytes::copy_from_slice(c.bytes()?));
            ClusterOp::Upsert(key, value)
        }
        2 => ClusterOp::Incr(key),
        3 => ClusterOp::Delete(key),
        t => return Err(DprError::Invalid(format!("unknown op tag {t}"))),
    })
}

fn put_op_result(out: &mut Vec<u8>, r: &OpResult) {
    match r {
        OpResult::Value(None) => put_u8(out, 0),
        OpResult::Value(Some(v)) => {
            put_u8(out, 1);
            put_bytes(out, &v.0);
        }
        OpResult::Done => put_u8(out, 2),
    }
}

fn get_op_result(c: &mut Cursor<'_>) -> Result<OpResult> {
    Ok(match c.u8()? {
        0 => OpResult::Value(None),
        1 => OpResult::Value(Some(Value(bytes::Bytes::copy_from_slice(c.bytes()?)))),
        2 => OpResult::Done,
        t => return Err(DprError::Invalid(format!("unknown op-result tag {t}"))),
    })
}

fn put_reply(out: &mut Vec<u8>, r: &BatchReply) {
    put_u32(out, r.shard.0);
    put_u64(out, r.world_line.0);
    put_u64(out, r.version.0);
    put_u64(out, r.first_serial);
    put_u32(out, r.op_count);
}

fn get_reply(c: &mut Cursor<'_>) -> Result<BatchReply> {
    Ok(BatchReply {
        shard: ShardId(c.u32()?),
        world_line: WorldLine(c.u64()?),
        version: Version(c.u64()?),
        first_serial: c.u64()?,
        op_count: c.u32()?,
    })
}

fn put_dpr_error(out: &mut Vec<u8>, e: &DprError) {
    match e {
        DprError::WorldLineMismatch { requested, current } => {
            put_u8(out, 1);
            put_u64(out, requested.0);
            put_u64(out, current.0);
        }
        DprError::RolledBack {
            session,
            survived,
            world_line,
        } => {
            put_u8(out, 2);
            put_u64(out, session.0);
            put_u64(out, *survived);
            put_u64(out, world_line.0);
        }
        DprError::NotOwner { shard } => {
            put_u8(out, 3);
            put_u32(out, shard.0);
        }
        DprError::NoSuchCheckpoint { shard, version } => {
            put_u8(out, 4);
            put_u32(out, shard.0);
            put_u64(out, version.0);
        }
        DprError::Recovering => put_u8(out, 5),
        DprError::Closed => put_u8(out, 6),
        DprError::Storage(m) => {
            put_u8(out, 7);
            put_str(out, m);
        }
        DprError::Metadata(m) => {
            put_u8(out, 8);
            put_str(out, m);
        }
        DprError::Invalid(m) => {
            put_u8(out, 9);
            put_str(out, m);
        }
        DprError::Timeout => put_u8(out, 10),
    }
}

fn get_dpr_error(c: &mut Cursor<'_>) -> Result<DprError> {
    Ok(match c.u8()? {
        1 => DprError::WorldLineMismatch {
            requested: WorldLine(c.u64()?),
            current: WorldLine(c.u64()?),
        },
        2 => DprError::RolledBack {
            session: SessionId(c.u64()?),
            survived: c.u64()?,
            world_line: WorldLine(c.u64()?),
        },
        3 => DprError::NotOwner {
            shard: ShardId(c.u32()?),
        },
        4 => DprError::NoSuchCheckpoint {
            shard: ShardId(c.u32()?),
            version: Version(c.u64()?),
        },
        5 => DprError::Recovering,
        6 => DprError::Closed,
        7 => DprError::Storage(c.string()?),
        8 => DprError::Metadata(c.string()?),
        9 => DprError::Invalid(c.string()?),
        10 => DprError::Timeout,
        t => return Err(DprError::Invalid(format!("unknown error tag {t}"))),
    })
}

impl WireRequest {
    /// Build the frame, routed to `shard` with correlation id `seq`.
    #[must_use]
    pub fn to_frame(&self, shard: ShardId, seq: u64) -> Frame {
        let mut body = Vec::with_capacity(64 + 16 * self.ops.len());
        put_header(&mut body, &self.header);
        put_u32(&mut body, self.ops.len() as u32);
        for op in &self.ops {
            put_op(&mut body, op);
        }
        Frame {
            kind: FrameKind::Request,
            shard: shard.0,
            seq,
            body,
        }
    }

    /// Parse from a [`FrameKind::Request`] frame body.
    pub fn from_frame(f: &Frame) -> Result<WireRequest> {
        let mut c = Cursor::new(&f.body);
        let header = get_header(&mut c)?;
        let nops = c.u32()? as usize;
        if nops > MAX_OPS {
            return Err(DprError::Invalid(format!("absurd op count {nops}")));
        }
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            ops.push(get_op(&mut c)?);
        }
        c.finish()?;
        Ok(WireRequest { header, ops })
    }
}

impl WireResponse {
    /// Build the frame, echoing the request's `shard` and `seq`.
    #[must_use]
    pub fn to_frame(&self, shard: u32, seq: u64) -> Frame {
        let mut body = Vec::with_capacity(64);
        match &self.outcome {
            Ok((reply, results)) => {
                put_u8(&mut body, 0);
                put_reply(&mut body, reply);
                put_u32(&mut body, results.len() as u32);
                for r in results {
                    put_op_result(&mut body, r);
                }
            }
            Err(e) => {
                put_u8(&mut body, 1);
                put_dpr_error(&mut body, e);
            }
        }
        Frame {
            kind: FrameKind::Response,
            shard,
            seq,
            body,
        }
    }

    /// Parse from a [`FrameKind::Response`] frame body.
    pub fn from_frame(f: &Frame) -> Result<WireResponse> {
        let mut c = Cursor::new(&f.body);
        let outcome = match c.u8()? {
            0 => {
                let reply = get_reply(&mut c)?;
                let n = c.u32()? as usize;
                if n > MAX_OPS {
                    return Err(DprError::Invalid(format!("absurd result count {n}")));
                }
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(get_op_result(&mut c)?);
                }
                Ok((reply, results))
            }
            1 => Err(get_dpr_error(&mut c)?),
            t => return Err(DprError::Invalid(format!("unknown outcome tag {t}"))),
        };
        c.finish()?;
        Ok(WireResponse { outcome })
    }
}

// ---------------------------------------------------------------------------
// Cut transfer
// ---------------------------------------------------------------------------

/// Body of a [`FrameKind::CutResp`] frame: the metadata store's current cut
/// and world-line, so remote clients can advance their committed prefix
/// without any side channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutResponse {
    /// World-line the cut belongs to.
    pub world_line: WorldLine,
    /// The cut: guaranteed-recoverable version per shard.
    pub cut: Cut,
}

impl CutResponse {
    /// Build the frame, echoing the [`FrameKind::CutReq`]'s `seq`.
    #[must_use]
    pub fn to_frame(&self, seq: u64) -> Frame {
        let mut body = Vec::with_capacity(16 + 12 * self.cut.len());
        put_u64(&mut body, self.world_line.0);
        put_u32(&mut body, self.cut.len() as u32);
        for (shard, version) in &self.cut {
            put_u32(&mut body, shard.0);
            put_u64(&mut body, version.0);
        }
        Frame {
            kind: FrameKind::CutResp,
            shard: NO_SHARD,
            seq,
            body,
        }
    }

    /// Parse from a [`FrameKind::CutResp`] frame body.
    pub fn from_frame(f: &Frame) -> Result<CutResponse> {
        let mut c = Cursor::new(&f.body);
        let world_line = WorldLine(c.u64()?);
        let n = c.u32()? as usize;
        if n > MAX_DEPS {
            return Err(DprError::Invalid(format!("absurd cut size {n}")));
        }
        let mut cut = Cut::new();
        for _ in 0..n {
            let shard = ShardId(c.u32()?);
            let version = Version(c.u64()?);
            cut.insert(shard, version);
        }
        c.finish()?;
        Ok(CutResponse { world_line, cut })
    }
}

// ---------------------------------------------------------------------------
// Protocol errors
// ---------------------------------------------------------------------------

/// Codes carried by [`FrameKind::Error`] frames — rejections of the *frame
/// stream itself*, as opposed to batch outcomes (which travel as
/// [`WireResponse`] errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ProtoErrorCode {
    /// Header version byte differs from [`WIRE_VERSION`]. Connection closes.
    UnsupportedVersion = 1,
    /// Undecodable or ill-formed frame. Connection closes.
    BadFrame = 2,
    /// A routed frame arrived before [`Hello`]. Connection closes.
    HandshakeRequired = 3,
    /// [`Hello`] carried an epoch older than one already accepted for the
    /// session — the connection is a zombie. Connection closes.
    StaleEpoch = 4,
    /// The frame's `shard` route is not hosted here. Connection stays open.
    UnknownShard = 5,
    /// The batch is already executing from an earlier delivery; retry
    /// after a delay. Connection stays open.
    DuplicateInFlight = 6,
    /// Server is shutting down. Connection closes.
    Shutdown = 7,
}

impl ProtoErrorCode {
    /// Parse a code.
    #[must_use]
    pub fn from_u16(v: u16) -> Option<ProtoErrorCode> {
        Some(match v {
            1 => ProtoErrorCode::UnsupportedVersion,
            2 => ProtoErrorCode::BadFrame,
            3 => ProtoErrorCode::HandshakeRequired,
            4 => ProtoErrorCode::StaleEpoch,
            5 => ProtoErrorCode::UnknownShard,
            6 => ProtoErrorCode::DuplicateInFlight,
            7 => ProtoErrorCode::Shutdown,
            _ => return None,
        })
    }

    /// Whether the server keeps the connection open after sending this code.
    #[must_use]
    pub fn recoverable(self) -> bool {
        matches!(
            self,
            ProtoErrorCode::UnknownShard | ProtoErrorCode::DuplicateInFlight
        )
    }
}

/// Body of a [`FrameKind::Error`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Machine-readable code.
    pub code: ProtoErrorCode,
    /// Human-readable detail (may be empty).
    pub detail: String,
}

impl ProtoError {
    /// Build the frame, echoing the offending frame's `seq` when known.
    #[must_use]
    pub fn to_frame(&self, seq: u64) -> Frame {
        let mut body = Vec::with_capacity(8 + self.detail.len());
        put_u16(&mut body, self.code as u16);
        put_str(&mut body, &self.detail);
        Frame {
            kind: FrameKind::Error,
            shard: NO_SHARD,
            seq,
            body,
        }
    }

    /// Parse from a [`FrameKind::Error`] frame body.
    pub fn from_frame(f: &Frame) -> Result<ProtoError> {
        let mut c = Cursor::new(&f.body);
        let raw = c.u16()?;
        let code = ProtoErrorCode::from_u16(raw)
            .ok_or_else(|| DprError::Invalid(format!("unknown protocol error code {raw}")))?;
        let detail = c.string()?;
        c.finish()?;
        Ok(ProtoError { code, detail })
    }

    /// The [`DprError`] a client surfaces for this protocol rejection.
    #[must_use]
    pub fn to_dpr_error(&self) -> DprError {
        match self.code {
            ProtoErrorCode::Shutdown => DprError::Closed,
            ProtoErrorCode::DuplicateInFlight => DprError::Recovering,
            _ => DprError::Invalid(format!("protocol error {:?}: {}", self.code, self.detail)),
        }
    }
}

/// An empty-bodied frame of the given kind (`CutReq`, `Goodbye`).
#[must_use]
pub fn control_frame(kind: FrameKind, seq: u64) -> Frame {
    Frame {
        kind,
        shard: NO_SHARD,
        seq,
        body: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> WireRequest {
        WireRequest {
            header: BatchHeader {
                session: SessionId(7),
                world_line: WorldLine(2),
                version_lower_bound: Version(40),
                deps: vec![Token::new(ShardId(1), Version(39))],
                first_serial: 1000,
                op_count: 2,
            },
            ops: vec![
                ClusterOp::Read(Key::from_u64(1)),
                ClusterOp::Upsert(Key::from_u64(2), Value::from_u64(9)),
            ],
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let frame = req.to_frame(ShardId(3), 42);
        let mut buf = Vec::new();
        frame.encode_into(&mut buf);
        let (decoded, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decoded.kind, FrameKind::Request);
        assert_eq!(decoded.shard, 3);
        assert_eq!(decoded.seq, 42);
        assert_eq!(WireRequest::from_frame(&decoded).unwrap(), req);
    }

    #[test]
    fn partial_buffers_ask_for_more() {
        let mut buf = Vec::new();
        sample_request()
            .to_frame(ShardId(0), 1)
            .encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(decode_frame(&buf[..cut]).unwrap().is_none(), "cut={cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut buf = Vec::new();
        control_frame(FrameKind::CutReq, 5).encode_into(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(decode_frame(&bad).is_err());
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(decode_frame(&bad).is_err());
        let mut bad = buf;
        bad[6] = 1; // nonzero flags
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn error_outcomes_round_trip() {
        let cases = vec![
            DprError::WorldLineMismatch {
                requested: WorldLine(1),
                current: WorldLine(2),
            },
            DprError::NotOwner { shard: ShardId(4) },
            DprError::Recovering,
            DprError::Timeout,
            DprError::Invalid("nope".into()),
        ];
        for e in cases {
            let resp = WireResponse {
                outcome: Err(e.clone()),
            };
            let frame = resp.to_frame(0, 9);
            assert_eq!(WireResponse::from_frame(&frame).unwrap().outcome, Err(e));
        }
    }

    #[test]
    fn cut_round_trips() {
        let mut cut = Cut::new();
        cut.insert(ShardId(0), Version(5));
        cut.insert(ShardId(9), Version(1));
        let resp = CutResponse {
            world_line: WorldLine(3),
            cut,
        };
        let frame = resp.to_frame(77);
        assert_eq!(CutResponse::from_frame(&frame).unwrap(), resp);
    }
}
