//! The binary wire protocol of the real network plane.
//!
//! Every byte that crosses a socket is specified in `docs/NETWORK.md`; this
//! module is the reference codec. Keep the two in lockstep — the acceptance
//! bar for the network plane is "a second implementation could interoperate
//! from the document alone".
//!
//! Framing is a fixed 24-byte little-endian header (magic, protocol
//! version, frame kind, flags, shard route, sequence number, body length)
//! followed by a kind-specific body. Bodies use fixed-width little-endian
//! integers and `u32`-length-prefixed byte strings — no varints, no
//! self-describing envelope — so offsets are computable from the spec
//! table. JSON (the old `tcp.rs` stub format) is gone from the wire.
//!
//! # Zero-copy hot path
//!
//! The codec has two tiers:
//!
//! * **Owned tier** — [`Frame`] (body held as [`Bytes`]) with
//!   [`decode_frame`] and the `to_frame` constructors. Simple, allocates
//!   per frame; used by handshakes, tests, and as the reference
//!   implementation the zero-copy tier is property-tested against.
//! * **Zero-copy tier** — [`decode_header`] validates a header (including
//!   the per-kind body-length bound — *before* anything is sliced or
//!   copied), after which the caller hands the body to the `from_body`
//!   parsers. [`WireRequest::from_body`] / [`WireResponse::from_body`]
//!   take the body as a [`Bytes`] view (typically frozen from a pooled
//!   `dpr_core::pool::SharedLease`) and cut keys/values out of it with
//!   [`Bytes::slice`] — no per-op allocation. Encoding writes straight
//!   into a caller-supplied buffer via [`begin_frame`] / [`end_frame`]
//!   (the body length is back-patched), so no intermediate body `Vec` is
//!   built either. Buffer-ownership rules live in `docs/NETWORK.md`.

use crate::message::{ClusterOp, OpResult};
use bytes::Bytes;
use dpr_core::{DprError, Key, Result, SessionId, ShardId, Token, Value, Version, WorldLine};
use dpr_metadata::Cut;
use libdpr::{BatchHeader, BatchReply};

/// Leading magic of every frame: the ASCII bytes `D P R 1`.
pub const MAGIC: [u8; 4] = *b"DPR1";

/// Protocol version carried in byte 4 of the header. Peers MUST reject
/// frames with any other value (see [`ProtoErrorCode::UnsupportedVersion`]).
pub const WIRE_VERSION: u8 = 1;

/// Fixed frame-header length in bytes.
pub const FRAME_HEADER_LEN: usize = 24;

/// Upper bound on a frame body. Oversized length prefixes are a protocol
/// error (the connection is poisoned — resynchronisation is impossible).
pub const MAX_FRAME_BODY: usize = 32 << 20;

/// `shard` header value for frames that are not routed to a shard
/// (handshake, cut queries, errors).
pub const NO_SHARD: u32 = u32::MAX;

/// Decode-side sanity bounds (a malicious length prefix must not cause a
/// huge allocation before the body bytes actually arrive).
const MAX_DEPS: usize = 1 << 16;
const MAX_OPS: usize = 1 << 20;

/// Upper bound on a [`FrameKind::Error`] detail string.
const MAX_ERROR_DETAIL: usize = 1 << 16;

/// Frame kinds (header byte 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server, first frame on a connection: binds it to a session.
    Hello = 1,
    /// Server → client: handshake accepted.
    HelloAck = 2,
    /// Client → server: one `(BatchHeader, ops)` batch.
    Request = 3,
    /// Server → client: the outcome of the request with the same `seq`.
    Response = 4,
    /// Client → server: ask for the current DPR cut.
    CutReq = 5,
    /// Server → client: the cut, for client-side commit tracking.
    CutResp = 6,
    /// Server → client: protocol-level rejection (not a batch outcome).
    Error = 7,
    /// Either direction: clean shutdown notice; the peer may close.
    Goodbye = 8,
}

impl FrameKind {
    /// Parse a kind byte.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::Request,
            4 => FrameKind::Response,
            5 => FrameKind::CutReq,
            6 => FrameKind::CutResp,
            7 => FrameKind::Error,
            8 => FrameKind::Goodbye,
            _ => return None,
        })
    }

    /// Largest body this kind may legally carry. Checked by
    /// [`decode_header`] before any body byte is sliced or copied, so a
    /// forged length prefix is rejected as the typed protocol error
    /// instead of driving a copy or allocation.
    #[must_use]
    pub fn max_body_len(self) -> usize {
        match self {
            // session(8) + epoch(4) + world_line(8)
            FrameKind::Hello => 20,
            // epoch(4) + world_line(8) + count(4) + count × shard(4)
            FrameKind::HelloAck => 16 + 4 * MAX_DEPS,
            FrameKind::Request | FrameKind::Response => MAX_FRAME_BODY,
            FrameKind::CutReq | FrameKind::Goodbye => 0,
            // world_line(8) + count(4) + count × (shard(4) + version(8))
            FrameKind::CutResp => 12 + 12 * MAX_DEPS,
            // code(2) + len(4) + detail
            FrameKind::Error => 6 + MAX_ERROR_DETAIL,
        }
    }
}

/// A validated frame header: everything [`decode_header`] could check
/// without touching body bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind.
    pub kind: FrameKind,
    /// Shard route ([`NO_SHARD`] when not applicable).
    pub shard: u32,
    /// Client-assigned sequence number.
    pub seq: u64,
    /// Body length declared by the header (already bounds-checked against
    /// [`FrameKind::max_body_len`]).
    pub body_len: usize,
}

impl FrameHeader {
    /// Total encoded frame length (header + body).
    #[must_use]
    pub fn frame_len(&self) -> usize {
        FRAME_HEADER_LEN + self.body_len
    }
}

/// One frame: the parsed header plus the body bytes.
///
/// This is the *owned* tier of the codec — `body` is a cheaply cloneable
/// [`Bytes`]. The zero-copy hot path never materialises a `Frame`; it
/// parses straight from the connection buffer via [`decode_header`] +
/// `from_body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Shard route ([`NO_SHARD`] when not applicable).
    pub shard: u32,
    /// Client-assigned sequence number, echoed verbatim in the matching
    /// [`FrameKind::Response`] / [`FrameKind::CutResp`] / [`FrameKind::Error`].
    pub seq: u64,
    /// Kind-specific body.
    pub body: Bytes,
}

impl Frame {
    /// Append the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = begin_frame(out, self.kind, self.shard, self.seq);
        out.extend_from_slice(&self.body);
        end_frame(out, start);
    }

    /// Total encoded length.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        FRAME_HEADER_LEN + self.body.len()
    }
}

/// Begin writing a frame directly into `out`: writes the header with a
/// zero body length and returns the body-start offset to pass to
/// [`end_frame`], which back-patches the real length. Between the two
/// calls, append body bytes to `out` (e.g. with the `WireRequest` /
/// `WireResponse` body writers). No intermediate body buffer is built.
#[must_use]
pub fn begin_frame(out: &mut Vec<u8>, kind: FrameKind, shard: u32, seq: u64) -> usize {
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&0u16.to_le_bytes()); // flags: reserved, zero
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // body length, patched below
    out.len()
}

/// Back-patch the body length of a frame begun with [`begin_frame`].
///
/// # Panics
/// If `body_start` does not point just past a frame header in `out`, or
/// the body exceeds `u32::MAX`.
pub fn end_frame(out: &mut [u8], body_start: usize) {
    assert!(body_start >= FRAME_HEADER_LEN && body_start <= out.len());
    let body_len = u32::try_from(out.len() - body_start).expect("frame body exceeds u32");
    out[body_start - 4..body_start].copy_from_slice(&body_len.to_le_bytes());
}

/// Validate and decode one frame *header* from the front of `buf`.
///
/// Returns `Ok(None)` when fewer than [`FRAME_HEADER_LEN`] bytes are
/// available. On success the declared body length has already been checked
/// against both [`MAX_FRAME_BODY`] and the per-kind bound
/// ([`FrameKind::max_body_len`]) — callers may trust
/// [`FrameHeader::body_len`] before a single body byte has been sliced or
/// copied. `Err` means the stream is unrecoverable and the connection must
/// be closed.
pub fn decode_header(buf: &[u8]) -> Result<Option<FrameHeader>> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    if buf[0..4] != MAGIC {
        return Err(DprError::Invalid(format!(
            "bad frame magic {:02x?}",
            &buf[0..4]
        )));
    }
    if buf[4] != WIRE_VERSION {
        return Err(DprError::Invalid(format!(
            "unsupported wire version {}",
            buf[4]
        )));
    }
    let Some(kind) = FrameKind::from_u8(buf[5]) else {
        return Err(DprError::Invalid(format!("unknown frame kind {}", buf[5])));
    };
    let flags = u16::from_le_bytes([buf[6], buf[7]]);
    if flags != 0 {
        return Err(DprError::Invalid(format!("nonzero frame flags {flags:#x}")));
    }
    let shard = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let mut seq = [0u8; 8];
    seq.copy_from_slice(&buf[12..20]);
    let seq = u64::from_le_bytes(seq);
    let body_len = u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]) as usize;
    if body_len > MAX_FRAME_BODY {
        return Err(DprError::Invalid(format!(
            "oversized frame body {body_len}"
        )));
    }
    if body_len > kind.max_body_len() {
        return Err(DprError::Invalid(format!(
            "{kind:?} body of {body_len} bytes exceeds the kind's bound {}",
            kind.max_body_len()
        )));
    }
    Ok(Some(FrameHeader {
        kind,
        shard,
        seq,
        body_len,
    }))
}

/// Try to decode one frame from the front of `buf` (owned tier).
///
/// Returns `Ok(None)` when `buf` holds only a prefix of a frame (read more
/// bytes), `Ok(Some((frame, consumed)))` on success, and `Err` on a
/// malformed header — after which the stream is unrecoverable and the
/// connection must be closed.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>> {
    let Some(h) = decode_header(buf)? else {
        return Ok(None);
    };
    let total = h.frame_len();
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Frame {
            kind: h.kind,
            shard: h.shard,
            seq: h.seq,
            body: Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..total]),
        },
        total,
    )))
}

// ---------------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Bounds-checked body reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DprError::Invalid("truncated frame body".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME_BODY {
            return Err(DprError::Invalid(format!("oversized byte string {len}")));
        }
        self.take(len)
    }

    /// Like [`Cursor::bytes`] but returns the *range* of the string within
    /// the body, so callers holding the body as [`Bytes`] can take a
    /// zero-copy [`Bytes::slice`] instead of copying.
    fn bytes_range(&mut self) -> Result<std::ops::Range<usize>> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME_BODY {
            return Err(DprError::Invalid(format!("oversized byte string {len}")));
        }
        let start = self.pos;
        self.take(len)?;
        Ok(start..start + len)
    }

    fn string(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| DprError::Invalid("non-UTF-8 string".into()))
    }

    /// Every body byte must be consumed: trailing garbage is a protocol
    /// error, not padding.
    fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DprError::Invalid(format!(
                "{} trailing bytes in frame body",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Body of a [`FrameKind::Hello`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The DPR session this connection will carry.
    pub session: SessionId,
    /// Connection epoch: 1 on the first dial, incremented on every
    /// reconnect of the same session. The server fences stale epochs so a
    /// zombie connection cannot race its replacement.
    pub epoch: u32,
    /// World-line the session believes it is on (diagnostic; batches carry
    /// their own world-line and are validated individually).
    pub world_line: WorldLine,
}

impl Hello {
    /// Append the encoded frame to `out` (no intermediate body buffer).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = begin_frame(out, FrameKind::Hello, NO_SHARD, 0);
        put_u64(out, self.session.0);
        put_u32(out, self.epoch);
        put_u64(out, self.world_line.0);
        end_frame(out, start);
    }

    /// Build the frame (Hello carries no shard route; `seq` 0 by convention).
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut body = Vec::with_capacity(20);
        put_u64(&mut body, self.session.0);
        put_u32(&mut body, self.epoch);
        put_u64(&mut body, self.world_line.0);
        Frame {
            kind: FrameKind::Hello,
            shard: NO_SHARD,
            seq: 0,
            body: Bytes::from(body),
        }
    }

    /// Parse from a [`FrameKind::Hello`] body.
    pub fn from_body(body: &[u8]) -> Result<Hello> {
        let mut c = Cursor::new(body);
        let hello = Hello {
            session: SessionId(c.u64()?),
            epoch: c.u32()?,
            world_line: WorldLine(c.u64()?),
        };
        c.finish()?;
        Ok(hello)
    }

    /// Parse from a [`FrameKind::Hello`] frame.
    pub fn from_frame(f: &Frame) -> Result<Hello> {
        Hello::from_body(&f.body)
    }
}

/// Body of a [`FrameKind::HelloAck`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// Epoch echoed from the accepted [`Hello`].
    pub epoch: u32,
    /// World-line the server is on.
    pub world_line: WorldLine,
    /// Shards reachable through this connection (the fan-in server hosts
    /// many workers behind one listener; clients route with the frame
    /// header's `shard` field).
    pub shards: Vec<ShardId>,
}

impl HelloAck {
    /// Append the encoded frame to `out` (no intermediate body buffer).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = begin_frame(out, FrameKind::HelloAck, NO_SHARD, 0);
        put_u32(out, self.epoch);
        put_u64(out, self.world_line.0);
        put_u32(out, self.shards.len() as u32);
        for s in &self.shards {
            put_u32(out, s.0);
        }
        end_frame(out, start);
    }

    /// Build the frame.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 16 + 4 * self.shards.len());
        self.encode(&mut out);
        let (frame, used) = decode_frame(&out)
            .expect("self-encoded HelloAck decodes")
            .expect("complete frame");
        debug_assert_eq!(used, out.len());
        frame
    }

    /// Parse from a [`FrameKind::HelloAck`] body.
    pub fn from_body(body: &[u8]) -> Result<HelloAck> {
        let mut c = Cursor::new(body);
        let epoch = c.u32()?;
        let world_line = WorldLine(c.u64()?);
        let n = c.u32()? as usize;
        if n > MAX_DEPS {
            return Err(DprError::Invalid(format!("absurd shard count {n}")));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(ShardId(c.u32()?));
        }
        c.finish()?;
        Ok(HelloAck {
            epoch,
            world_line,
            shards,
        })
    }

    /// Parse from a [`FrameKind::HelloAck`] frame.
    pub fn from_frame(f: &Frame) -> Result<HelloAck> {
        HelloAck::from_body(&f.body)
    }
}

// ---------------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------------

/// One request over the wire (body of a [`FrameKind::Request`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// DPR header (piggybacked protocol state, §3.2).
    pub header: BatchHeader,
    /// Operation bodies.
    pub ops: Vec<ClusterOp>,
}

/// One response over the wire (body of a [`FrameKind::Response`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// The reply and results, or the protocol rejection.
    pub outcome: std::result::Result<(BatchReply, Vec<OpResult>), DprError>,
}

fn put_header(out: &mut Vec<u8>, h: &BatchHeader) {
    put_u64(out, h.session.0);
    put_u64(out, h.world_line.0);
    put_u64(out, h.version_lower_bound.0);
    put_u64(out, h.first_serial);
    put_u32(out, h.op_count);
    put_u32(out, h.deps.len() as u32);
    for t in &h.deps {
        put_u32(out, t.shard.0);
        put_u64(out, t.version.0);
    }
}

fn get_header(c: &mut Cursor<'_>) -> Result<BatchHeader> {
    let mut h = BatchHeader {
        session: SessionId(0),
        world_line: WorldLine(0),
        version_lower_bound: Version(0),
        deps: Vec::new(),
        first_serial: 0,
        op_count: 0,
    };
    get_header_into(c, &mut h)?;
    Ok(h)
}

/// Decode a batch header into `h`, reusing its `deps` allocation. The
/// steady-state twin of [`get_header`] for callers that keep a header
/// scratch across frames.
fn get_header_into(c: &mut Cursor<'_>, h: &mut BatchHeader) -> Result<()> {
    h.session = SessionId(c.u64()?);
    h.world_line = WorldLine(c.u64()?);
    h.version_lower_bound = Version(c.u64()?);
    h.first_serial = c.u64()?;
    h.op_count = c.u32()?;
    let ndeps = c.u32()? as usize;
    if ndeps > MAX_DEPS {
        return Err(DprError::Invalid(format!("absurd dep count {ndeps}")));
    }
    h.deps.clear();
    h.deps.reserve(ndeps);
    for _ in 0..ndeps {
        let shard = ShardId(c.u32()?);
        let version = Version(c.u64()?);
        h.deps.push(Token::new(shard, version));
    }
    Ok(())
}

fn put_op(out: &mut Vec<u8>, op: &ClusterOp) {
    match op {
        ClusterOp::Read(k) => {
            put_u8(out, 0);
            put_bytes(out, &k.0);
        }
        ClusterOp::Upsert(k, v) => {
            put_u8(out, 1);
            put_bytes(out, &k.0);
            put_bytes(out, &v.0);
        }
        ClusterOp::Incr(k) => {
            put_u8(out, 2);
            put_bytes(out, &k.0);
        }
        ClusterOp::Delete(k) => {
            put_u8(out, 3);
            put_bytes(out, &k.0);
        }
    }
}

/// Decode one op, slicing key/value out of `body` zero-copy. The cursor
/// must be positioned inside `body`'s slice.
fn get_op(c: &mut Cursor<'_>, body: &Bytes) -> Result<ClusterOp> {
    let tag = c.u8()?;
    let key = Key(body.slice(c.bytes_range()?));
    Ok(match tag {
        0 => ClusterOp::Read(key),
        1 => {
            let value = Value(body.slice(c.bytes_range()?));
            ClusterOp::Upsert(key, value)
        }
        2 => ClusterOp::Incr(key),
        3 => ClusterOp::Delete(key),
        t => return Err(DprError::Invalid(format!("unknown op tag {t}"))),
    })
}

fn put_op_result(out: &mut Vec<u8>, r: &OpResult) {
    match r {
        OpResult::Value(None) => put_u8(out, 0),
        OpResult::Value(Some(v)) => {
            put_u8(out, 1);
            put_bytes(out, &v.0);
        }
        OpResult::Done => put_u8(out, 2),
    }
}

/// Decode one op result, slicing values out of `body` zero-copy.
fn get_op_result(c: &mut Cursor<'_>, body: &Bytes) -> Result<OpResult> {
    Ok(match c.u8()? {
        0 => OpResult::Value(None),
        1 => OpResult::Value(Some(Value(body.slice(c.bytes_range()?)))),
        2 => OpResult::Done,
        t => return Err(DprError::Invalid(format!("unknown op-result tag {t}"))),
    })
}

fn put_reply(out: &mut Vec<u8>, r: &BatchReply) {
    put_u32(out, r.shard.0);
    put_u64(out, r.world_line.0);
    put_u64(out, r.version.0);
    put_u64(out, r.first_serial);
    put_u32(out, r.op_count);
}

fn get_reply(c: &mut Cursor<'_>) -> Result<BatchReply> {
    Ok(BatchReply {
        shard: ShardId(c.u32()?),
        world_line: WorldLine(c.u64()?),
        version: Version(c.u64()?),
        first_serial: c.u64()?,
        op_count: c.u32()?,
    })
}

fn put_dpr_error(out: &mut Vec<u8>, e: &DprError) {
    match e {
        DprError::WorldLineMismatch { requested, current } => {
            put_u8(out, 1);
            put_u64(out, requested.0);
            put_u64(out, current.0);
        }
        DprError::RolledBack {
            session,
            survived,
            world_line,
        } => {
            put_u8(out, 2);
            put_u64(out, session.0);
            put_u64(out, *survived);
            put_u64(out, world_line.0);
        }
        DprError::NotOwner { shard } => {
            put_u8(out, 3);
            put_u32(out, shard.0);
        }
        DprError::NoSuchCheckpoint { shard, version } => {
            put_u8(out, 4);
            put_u32(out, shard.0);
            put_u64(out, version.0);
        }
        DprError::Recovering => put_u8(out, 5),
        DprError::Closed => put_u8(out, 6),
        DprError::Storage(m) => {
            put_u8(out, 7);
            put_str(out, m);
        }
        DprError::Metadata(m) => {
            put_u8(out, 8);
            put_str(out, m);
        }
        DprError::Invalid(m) => {
            put_u8(out, 9);
            put_str(out, m);
        }
        DprError::Timeout => put_u8(out, 10),
    }
}

fn get_dpr_error(c: &mut Cursor<'_>) -> Result<DprError> {
    Ok(match c.u8()? {
        1 => DprError::WorldLineMismatch {
            requested: WorldLine(c.u64()?),
            current: WorldLine(c.u64()?),
        },
        2 => DprError::RolledBack {
            session: SessionId(c.u64()?),
            survived: c.u64()?,
            world_line: WorldLine(c.u64()?),
        },
        3 => DprError::NotOwner {
            shard: ShardId(c.u32()?),
        },
        4 => DprError::NoSuchCheckpoint {
            shard: ShardId(c.u32()?),
            version: Version(c.u64()?),
        },
        5 => DprError::Recovering,
        6 => DprError::Closed,
        7 => DprError::Storage(c.string()?),
        8 => DprError::Metadata(c.string()?),
        9 => DprError::Invalid(c.string()?),
        10 => DprError::Timeout,
        t => return Err(DprError::Invalid(format!("unknown error tag {t}"))),
    })
}

/// Append an encoded [`FrameKind::Request`] frame directly to `out` —
/// header, batch header, and ops, with no intermediate body buffer. The
/// allocation-free twin of [`WireRequest::to_frame`].
pub fn encode_request(
    out: &mut Vec<u8>,
    shard: ShardId,
    seq: u64,
    header: &BatchHeader,
    ops: &[ClusterOp],
) {
    let start = begin_frame(out, FrameKind::Request, shard.0, seq);
    put_header(out, header);
    put_u32(out, ops.len() as u32);
    for op in ops {
        put_op(out, op);
    }
    end_frame(out, start);
}

/// Decode a [`FrameKind::Request`] body into a caller-provided ops buffer
/// (appended), returning the batch header. Keys and values are sliced out
/// of `body` zero-copy; reusing `ops` across frames makes the steady-state
/// decode allocation-free.
pub fn decode_request_body(body: &Bytes, ops: &mut Vec<ClusterOp>) -> Result<BatchHeader> {
    let mut c = Cursor::new(body);
    let header = get_header(&mut c)?;
    decode_ops(c, body, ops)?;
    Ok(header)
}

/// Like [`decode_request_body`], but also reuses the caller's header
/// (including its `deps` vector) — the fully allocation-free decode used by
/// the server's per-connection scratch.
pub fn decode_request_body_into(
    body: &Bytes,
    ops: &mut Vec<ClusterOp>,
    header: &mut BatchHeader,
) -> Result<()> {
    let mut c = Cursor::new(body);
    get_header_into(&mut c, header)?;
    decode_ops(c, body, ops)
}

fn decode_ops(mut c: Cursor<'_>, body: &Bytes, ops: &mut Vec<ClusterOp>) -> Result<()> {
    let nops = c.u32()? as usize;
    if nops > MAX_OPS {
        return Err(DprError::Invalid(format!("absurd op count {nops}")));
    }
    ops.reserve(nops);
    for _ in 0..nops {
        ops.push(get_op(&mut c, body)?);
    }
    c.finish()
}

impl WireRequest {
    /// Build the frame, routed to `shard` with correlation id `seq`.
    #[must_use]
    pub fn to_frame(&self, shard: ShardId, seq: u64) -> Frame {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 64 + 16 * self.ops.len());
        encode_request(&mut out, shard, seq, &self.header, &self.ops);
        let (frame, used) = decode_frame(&out)
            .expect("self-encoded request decodes")
            .expect("complete frame");
        debug_assert_eq!(used, out.len());
        frame
    }

    /// Parse from a [`FrameKind::Request`] body, slicing keys and values
    /// out of `body` zero-copy (small ones inline; larger ones share
    /// `body`'s backing allocation).
    pub fn from_body(body: &Bytes) -> Result<WireRequest> {
        let mut ops = Vec::new();
        let header = decode_request_body(body, &mut ops)?;
        Ok(WireRequest { header, ops })
    }

    /// Parse from a [`FrameKind::Request`] frame.
    pub fn from_frame(f: &Frame) -> Result<WireRequest> {
        WireRequest::from_body(&f.body)
    }
}

/// Append an encoded [`FrameKind::Response`] frame directly to `out` with
/// no intermediate body buffer. The allocation-free twin of
/// [`WireResponse::to_frame`]: the server borrows the reply and results it
/// just computed instead of moving them into a `WireResponse`.
pub fn encode_response(
    out: &mut Vec<u8>,
    shard: u32,
    seq: u64,
    outcome: std::result::Result<(&BatchReply, &[OpResult]), &DprError>,
) {
    let start = begin_frame(out, FrameKind::Response, shard, seq);
    match outcome {
        Ok((reply, results)) => {
            put_u8(out, 0);
            put_reply(out, reply);
            put_u32(out, results.len() as u32);
            for r in results {
                put_op_result(out, r);
            }
        }
        Err(e) => {
            put_u8(out, 1);
            put_dpr_error(out, e);
        }
    }
    end_frame(out, start);
}

impl WireResponse {
    /// Build the frame, echoing the request's `shard` and `seq`.
    #[must_use]
    pub fn to_frame(&self, shard: u32, seq: u64) -> Frame {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 64);
        let borrowed = match &self.outcome {
            Ok((reply, results)) => Ok((reply, results.as_slice())),
            Err(e) => Err(e),
        };
        encode_response(&mut out, shard, seq, borrowed);
        let (frame, used) = decode_frame(&out)
            .expect("self-encoded response decodes")
            .expect("complete frame");
        debug_assert_eq!(used, out.len());
        frame
    }

    /// Parse from a [`FrameKind::Response`] body, slicing result values
    /// out of `body` zero-copy.
    pub fn from_body(body: &Bytes) -> Result<WireResponse> {
        let mut c = Cursor::new(body);
        let outcome = match c.u8()? {
            0 => {
                let reply = get_reply(&mut c)?;
                let n = c.u32()? as usize;
                if n > MAX_OPS {
                    return Err(DprError::Invalid(format!("absurd result count {n}")));
                }
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(get_op_result(&mut c, body)?);
                }
                Ok((reply, results))
            }
            1 => Err(get_dpr_error(&mut c)?),
            t => return Err(DprError::Invalid(format!("unknown outcome tag {t}"))),
        };
        c.finish()?;
        Ok(WireResponse { outcome })
    }

    /// Parse from a [`FrameKind::Response`] frame.
    pub fn from_frame(f: &Frame) -> Result<WireResponse> {
        WireResponse::from_body(&f.body)
    }
}

/// Parse a [`FrameKind::Response`] body into a caller-owned results buffer
/// — the zero-copy counterpart of [`WireResponse::from_body`] for the
/// pipelined client's steady state: result values are sliced out of `body`
/// and appended to `results`, so a reused buffer makes decoding
/// allocation-free.
///
/// Returns `Ok(Ok(reply))` for a successful batch (results appended) or
/// `Ok(Err(e))` for a batch-level rejection (nothing appended).
///
/// # Errors
/// On a malformed body (the connection-fatal tier, distinct from the
/// in-band batch error).
pub fn decode_response_body(
    body: &Bytes,
    results: &mut Vec<OpResult>,
) -> Result<std::result::Result<BatchReply, DprError>> {
    let mut c = Cursor::new(body);
    let outcome = match c.u8()? {
        0 => {
            let reply = get_reply(&mut c)?;
            let n = c.u32()? as usize;
            if n > MAX_OPS {
                return Err(DprError::Invalid(format!("absurd result count {n}")));
            }
            results.reserve(n);
            for _ in 0..n {
                let r = get_op_result(&mut c, body)?;
                results.push(r);
            }
            Ok(reply)
        }
        1 => Err(get_dpr_error(&mut c)?),
        t => return Err(DprError::Invalid(format!("unknown outcome tag {t}"))),
    };
    c.finish()?;
    Ok(outcome)
}

// ---------------------------------------------------------------------------
// Cut transfer
// ---------------------------------------------------------------------------

/// Body of a [`FrameKind::CutResp`] frame: the metadata store's current cut
/// and world-line, so remote clients can advance their committed prefix
/// without any side channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutResponse {
    /// World-line the cut belongs to.
    pub world_line: WorldLine,
    /// The cut: guaranteed-recoverable version per shard.
    pub cut: Cut,
}

impl CutResponse {
    /// Append the encoded frame to `out` (no intermediate body buffer).
    pub fn encode(&self, out: &mut Vec<u8>, seq: u64) {
        encode_cut_response(out, seq, self.world_line, &self.cut);
    }

    /// Build the frame, echoing the [`FrameKind::CutReq`]'s `seq`.
    #[must_use]
    pub fn to_frame(&self, seq: u64) -> Frame {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 16 + 12 * self.cut.len());
        self.encode(&mut out, seq);
        let (frame, used) = decode_frame(&out)
            .expect("self-encoded cut decodes")
            .expect("complete frame");
        debug_assert_eq!(used, out.len());
        frame
    }

    /// Parse from a [`FrameKind::CutResp`] body.
    pub fn from_body(body: &[u8]) -> Result<CutResponse> {
        let mut c = Cursor::new(body);
        let world_line = WorldLine(c.u64()?);
        let n = c.u32()? as usize;
        if n > MAX_DEPS {
            return Err(DprError::Invalid(format!("absurd cut size {n}")));
        }
        let mut cut = Cut::new();
        for _ in 0..n {
            let shard = ShardId(c.u32()?);
            let version = Version(c.u64()?);
            cut.insert(shard, version);
        }
        c.finish()?;
        Ok(CutResponse { world_line, cut })
    }

    /// Parse from a [`FrameKind::CutResp`] frame.
    pub fn from_frame(f: &Frame) -> Result<CutResponse> {
        CutResponse::from_body(&f.body)
    }
}

/// Append an encoded [`FrameKind::CutResp`] frame to `out` from borrowed
/// parts — the allocation-free twin of [`CutResponse::encode`], used by the
/// server to serve its cached cut without cloning it per request.
pub fn encode_cut_response(out: &mut Vec<u8>, seq: u64, world_line: WorldLine, cut: &Cut) {
    let start = begin_frame(out, FrameKind::CutResp, NO_SHARD, seq);
    put_u64(out, world_line.0);
    put_u32(out, cut.len() as u32);
    for (shard, version) in cut {
        put_u32(out, shard.0);
        put_u64(out, version.0);
    }
    end_frame(out, start);
}

// ---------------------------------------------------------------------------
// Protocol errors
// ---------------------------------------------------------------------------

/// Codes carried by [`FrameKind::Error`] frames — rejections of the *frame
/// stream itself*, as opposed to batch outcomes (which travel as
/// [`WireResponse`] errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ProtoErrorCode {
    /// Header version byte differs from [`WIRE_VERSION`]. Connection closes.
    UnsupportedVersion = 1,
    /// Undecodable or ill-formed frame. Connection closes.
    BadFrame = 2,
    /// A routed frame arrived before [`Hello`]. Connection closes.
    HandshakeRequired = 3,
    /// [`Hello`] carried an epoch older than one already accepted for the
    /// session — the connection is a zombie. Connection closes.
    StaleEpoch = 4,
    /// The frame's `shard` route is not hosted here. Connection stays open.
    UnknownShard = 5,
    /// The batch is already executing from an earlier delivery; retry
    /// after a delay. Connection stays open.
    DuplicateInFlight = 6,
    /// Server is shutting down. Connection closes.
    Shutdown = 7,
}

impl ProtoErrorCode {
    /// Parse a code.
    #[must_use]
    pub fn from_u16(v: u16) -> Option<ProtoErrorCode> {
        Some(match v {
            1 => ProtoErrorCode::UnsupportedVersion,
            2 => ProtoErrorCode::BadFrame,
            3 => ProtoErrorCode::HandshakeRequired,
            4 => ProtoErrorCode::StaleEpoch,
            5 => ProtoErrorCode::UnknownShard,
            6 => ProtoErrorCode::DuplicateInFlight,
            7 => ProtoErrorCode::Shutdown,
            _ => return None,
        })
    }

    /// Whether the server keeps the connection open after sending this code.
    #[must_use]
    pub fn recoverable(self) -> bool {
        matches!(
            self,
            ProtoErrorCode::UnknownShard | ProtoErrorCode::DuplicateInFlight
        )
    }
}

/// Body of a [`FrameKind::Error`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Machine-readable code.
    pub code: ProtoErrorCode,
    /// Human-readable detail (may be empty).
    pub detail: String,
}

impl ProtoError {
    /// Append the encoded frame to `out` (no intermediate body buffer).
    pub fn encode(&self, out: &mut Vec<u8>, seq: u64) {
        let start = begin_frame(out, FrameKind::Error, NO_SHARD, seq);
        put_u16(out, self.code as u16);
        put_str(out, &self.detail);
        end_frame(out, start);
    }

    /// Build the frame, echoing the offending frame's `seq` when known.
    #[must_use]
    pub fn to_frame(&self, seq: u64) -> Frame {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 8 + self.detail.len());
        self.encode(&mut out, seq);
        let (frame, used) = decode_frame(&out)
            .expect("self-encoded error decodes")
            .expect("complete frame");
        debug_assert_eq!(used, out.len());
        frame
    }

    /// Parse from a [`FrameKind::Error`] body.
    pub fn from_body(body: &[u8]) -> Result<ProtoError> {
        let mut c = Cursor::new(body);
        let raw = c.u16()?;
        let code = ProtoErrorCode::from_u16(raw)
            .ok_or_else(|| DprError::Invalid(format!("unknown protocol error code {raw}")))?;
        let detail = c.string()?;
        c.finish()?;
        Ok(ProtoError { code, detail })
    }

    /// Parse from a [`FrameKind::Error`] frame.
    pub fn from_frame(f: &Frame) -> Result<ProtoError> {
        ProtoError::from_body(&f.body)
    }

    /// The [`DprError`] a client surfaces for this protocol rejection.
    #[must_use]
    pub fn to_dpr_error(&self) -> DprError {
        match self.code {
            ProtoErrorCode::Shutdown => DprError::Closed,
            ProtoErrorCode::DuplicateInFlight => DprError::Recovering,
            _ => DprError::Invalid(format!("protocol error {:?}: {}", self.code, self.detail)),
        }
    }
}

/// Append an empty-bodied frame of the given kind (`CutReq`, `Goodbye`)
/// directly to `out`.
pub fn encode_control(out: &mut Vec<u8>, kind: FrameKind, seq: u64) {
    let start = begin_frame(out, kind, NO_SHARD, seq);
    end_frame(out, start);
}

/// An empty-bodied frame of the given kind (`CutReq`, `Goodbye`).
#[must_use]
pub fn control_frame(kind: FrameKind, seq: u64) -> Frame {
    Frame {
        kind,
        shard: NO_SHARD,
        seq,
        body: Bytes::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> WireRequest {
        WireRequest {
            header: BatchHeader {
                session: SessionId(7),
                world_line: WorldLine(2),
                version_lower_bound: Version(40),
                deps: vec![Token::new(ShardId(1), Version(39))],
                first_serial: 1000,
                op_count: 2,
            },
            ops: vec![
                ClusterOp::Read(Key::from_u64(1)),
                ClusterOp::Upsert(Key::from_u64(2), Value::from_u64(9)),
            ],
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let frame = req.to_frame(ShardId(3), 42);
        let mut buf = Vec::new();
        frame.encode_into(&mut buf);
        let (decoded, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decoded.kind, FrameKind::Request);
        assert_eq!(decoded.shard, 3);
        assert_eq!(decoded.seq, 42);
        assert_eq!(WireRequest::from_frame(&decoded).unwrap(), req);
    }

    #[test]
    fn direct_encode_matches_owned_encode() {
        // begin_frame/end_frame + body writers must be byte-identical to
        // the owned `to_frame().encode_into()` path.
        let req = sample_request();
        let mut owned = Vec::new();
        req.to_frame(ShardId(3), 42).encode_into(&mut owned);
        let mut direct = Vec::new();
        encode_request(&mut direct, ShardId(3), 42, &req.header, &req.ops);
        assert_eq!(owned, direct);

        let resp = WireResponse {
            outcome: Ok((
                BatchReply {
                    shard: ShardId(3),
                    world_line: WorldLine(2),
                    version: Version(41),
                    first_serial: 1000,
                    op_count: 2,
                },
                vec![OpResult::Value(Some(Value::from_u64(5))), OpResult::Done],
            )),
        };
        let mut owned = Vec::new();
        resp.to_frame(3, 42).encode_into(&mut owned);
        let mut direct = Vec::new();
        let outcome = match &resp.outcome {
            Ok((r, rs)) => Ok((r, rs.as_slice())),
            Err(e) => Err(e),
        };
        encode_response(&mut direct, 3, 42, outcome);
        assert_eq!(owned, direct);
    }

    #[test]
    fn zero_copy_decode_slices_share_large_bodies() {
        // A value longer than the inline threshold must come back as a
        // view into the body's backing allocation, not a copy.
        let big_value = Value(Bytes::from(vec![0xAB; 100]));
        let req = WireRequest {
            header: BatchHeader {
                session: SessionId(1),
                world_line: WorldLine(1),
                version_lower_bound: Version(0),
                deps: vec![],
                first_serial: 0,
                op_count: 1,
            },
            ops: vec![ClusterOp::Upsert(Key::from_u64(1), big_value)],
        };
        let mut buf = Vec::new();
        encode_request(&mut buf, ShardId(0), 1, &req.header, &req.ops);
        let h = decode_header(&buf).unwrap().unwrap();
        let body = Bytes::copy_from_slice(&buf[FRAME_HEADER_LEN..h.frame_len()]);
        let decoded = WireRequest::from_body(&body).unwrap();
        let ClusterOp::Upsert(_, v) = &decoded.ops[0] else {
            panic!("expected upsert");
        };
        let body_range =
            body.as_slice().as_ptr() as usize..body.as_slice().as_ptr() as usize + body.len();
        let v_ptr = v.0.as_slice().as_ptr() as usize;
        assert!(
            body_range.contains(&v_ptr),
            "decoded value must point into the body buffer"
        );
        assert_eq!(&v.0[..], &[0xAB; 100][..]);
    }

    #[test]
    fn partial_buffers_ask_for_more() {
        let mut buf = Vec::new();
        sample_request()
            .to_frame(ShardId(0), 1)
            .encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(decode_frame(&buf[..cut]).unwrap().is_none(), "cut={cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut buf = Vec::new();
        control_frame(FrameKind::CutReq, 5).encode_into(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(decode_frame(&bad).is_err());
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(decode_frame(&bad).is_err());
        let mut bad = buf;
        bad[6] = 1; // nonzero flags
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn per_kind_body_bounds_are_checked_before_slicing() {
        // A CutReq claiming a body, or a Hello with the wrong size, is
        // rejected from the header alone — even though the declared body
        // bytes are not present in the buffer at all.
        let mut buf = Vec::new();
        control_frame(FrameKind::CutReq, 5).encode_into(&mut buf);
        buf[20..24].copy_from_slice(&64u32.to_le_bytes()); // claim 64-byte body
        assert!(
            decode_header(&buf).is_err(),
            "bodyful CutReq rejected without body bytes"
        );

        let mut buf = Vec::new();
        Hello {
            session: SessionId(1),
            epoch: 1,
            world_line: WorldLine(1),
        }
        .encode(&mut buf);
        buf[20..24].copy_from_slice(&1024u32.to_le_bytes());
        assert!(decode_header(&buf).is_err(), "oversize Hello rejected");

        // In-bounds headers still pass.
        let mut buf = Vec::new();
        sample_request()
            .to_frame(ShardId(0), 1)
            .encode_into(&mut buf);
        assert!(decode_header(&buf).unwrap().is_some());
    }

    #[test]
    fn error_outcomes_round_trip() {
        let cases = vec![
            DprError::WorldLineMismatch {
                requested: WorldLine(1),
                current: WorldLine(2),
            },
            DprError::NotOwner { shard: ShardId(4) },
            DprError::Recovering,
            DprError::Timeout,
            DprError::Invalid("nope".into()),
        ];
        for e in cases {
            let resp = WireResponse {
                outcome: Err(e.clone()),
            };
            let frame = resp.to_frame(0, 9);
            assert_eq!(WireResponse::from_frame(&frame).unwrap().outcome, Err(e));
        }
    }

    #[test]
    fn cut_round_trips() {
        let mut cut = Cut::new();
        cut.insert(ShardId(0), Version(5));
        cut.insert(ShardId(9), Version(1));
        let resp = CutResponse {
            world_line: WorldLine(3),
            cut,
        };
        let frame = resp.to_frame(77);
        assert_eq!(CutResponse::from_frame(&frame).unwrap(), resp);
    }
}
