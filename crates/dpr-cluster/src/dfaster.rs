//! The D-FASTER shard: deep DPR integration with the FASTER-style store
//! (§5).
//!
//! `Commit()` maps to FASTER's CPR fold-over checkpoint (a lightweight
//! metadata-only operation over the already-flushing log) and `Restore()`
//! to the non-blocking THROW/PURGE rollback of §5.5. Per client session, the
//! worker keeps a corresponding FASTER session under the same globally
//! unique id (§5.2).

use crate::message::{ClusterOp, OpResult};
use crate::worker::ShardStore;
use dpr_core::{Result, SessionId, ShardId, StripedMap, Value, Version};
use dpr_faster::{FasterKv, OpOutcome, Session};
use libdpr::{CommitDescriptor, StateObject};
use std::sync::Arc;
use std::time::Duration;

enum Slot {
    Idle(Session),
    /// Checked out by an executor thread; batches for the same session
    /// queue behind it, preserving the sequential session discipline.
    Busy,
}

/// A FASTER-backed shard.
pub struct FasterShard {
    shard: ShardId,
    kv: Arc<FasterKv>,
    /// Server-side FASTER sessions, one per client session id (§5.2).
    /// Striped by session id: checkout/checkin happens on every batch, so
    /// concurrent client sessions must not serialise on one map lock.
    sessions: StripedMap<SessionId, Slot>,
}

impl FasterShard {
    /// Wrap a store as shard `shard`.
    pub fn new(shard: ShardId, kv: Arc<FasterKv>) -> Self {
        FasterShard {
            shard,
            kv,
            sessions: StripedMap::with_default_stripes(),
        }
    }

    /// The underlying store (diagnostics/tests).
    #[must_use]
    pub fn kv(&self) -> &Arc<FasterKv> {
        &self.kv
    }

    fn checkout(&self, id: SessionId) -> Session {
        loop {
            {
                let mut sessions = self.sessions.lock_for(&id);
                match sessions.get_mut(&id) {
                    Some(slot @ Slot::Idle(_)) => {
                        let Slot::Idle(s) = std::mem::replace(slot, Slot::Busy) else {
                            unreachable!()
                        };
                        return s;
                    }
                    Some(Slot::Busy) => { /* fall through to retry */ }
                    None => {
                        // First contact from this client session: create the
                        // corresponding store session (§5.2). Mark busy under
                        // the lock so no duplicate can be created.
                        sessions.insert(id, Slot::Busy);
                        drop(sessions);
                        return self.kv.start_session(id);
                    }
                }
            }
            std::thread::yield_now();
        }
    }

    fn checkin(&self, id: SessionId, session: Session) {
        self.sessions.lock_for(&id).insert(id, Slot::Idle(session));
    }
}

impl ShardStore for FasterShard {
    fn execute_batch(
        &self,
        session_id: SessionId,
        ops: &[ClusterOp],
    ) -> Result<(Vec<OpResult>, Version)> {
        let mut results = Vec::with_capacity(ops.len());
        let version = self.execute_batch_into(session_id, ops, &mut results)?;
        Ok((results, version))
    }

    fn execute_batch_into(
        &self,
        session_id: SessionId,
        ops: &[ClusterOp],
        out: &mut Vec<OpResult>,
    ) -> Result<Version> {
        let base = out.len();
        let session = self.checkout(session_id);
        let run = (|| {
            // Placeholder results written in place; `OpResult::Value(None)`
            // doubles as the "unresolved" marker a PENDING op leaves until
            // completion fills it in. Reused buffers make this allocation-
            // free in steady state.
            out.resize(base + ops.len(), OpResult::Value(None));
            let mut pending: Vec<(u64, usize)> = Vec::new();
            let mut version = Version::ZERO;
            for (i, op) in ops.iter().enumerate() {
                let outcome = match op {
                    ClusterOp::Read(k) => session.read(k)?,
                    ClusterOp::Upsert(k, v) => session.upsert(k.clone(), v.clone())?,
                    ClusterOp::Incr(k) => session.rmw(k.clone(), |old| {
                        Value::from_u64(old.and_then(|v| v.as_u64()).unwrap_or(0) + 1)
                    })?,
                    ClusterOp::Delete(k) => session.delete(k.clone())?,
                };
                match outcome {
                    OpOutcome::Read {
                        value, version: v, ..
                    } => {
                        version = version.max(v);
                        out[base + i] = OpResult::Value(value);
                    }
                    OpOutcome::Mutated { version: v, .. } => {
                        version = version.max(v);
                        out[base + i] = OpResult::Done;
                    }
                    OpOutcome::Pending(t) => pending.push((t.serial, i)),
                }
            }
            if !pending.is_empty() {
                // Remote execution resolves PENDINGs before replying (the
                // background-thread path of §5.2).
                let completed = session.complete_pending()?;
                for c in completed {
                    if let Some(&(_, idx)) = pending.iter().find(|(serial, _)| *serial == c.serial)
                    {
                        version = version.max(c.version);
                        out[base + idx] = match &ops[idx] {
                            ClusterOp::Read(_) => OpResult::Value(c.value.clone()),
                            _ => OpResult::Done,
                        };
                    }
                }
            }
            if version == Version::ZERO {
                version = self.kv.current_version();
            }
            Ok(version)
        })();
        self.checkin(session_id, session);
        if run.is_err() {
            out.truncate(base);
        }
        run
    }

    fn scan_live(&self) -> Result<Vec<(dpr_core::Key, Value)>> {
        self.kv.scan_live()
    }

    fn collect_garbage(&self, version: Version) -> Result<()> {
        if version > Version::ZERO && version <= self.kv.durable_version() {
            let _ = self.kv.collect_garbage(version)?;
        }
        Ok(())
    }

    fn inject_commit_stall(&self, duration: std::time::Duration) {
        self.kv.stall_checkpoints_for(duration);
    }

    fn clear_commit_stall(&self) {
        self.kv.clear_checkpoint_stall();
    }
}

impl StateObject for FasterShard {
    fn shard(&self) -> ShardId {
        self.shard
    }

    fn current_version(&self) -> Version {
        self.kv.current_version()
    }

    fn durable_version(&self) -> Version {
        self.kv.durable_version()
    }

    fn request_commit(&self, target: Option<Version>) -> bool {
        self.kv.request_checkpoint(target)
    }

    fn take_commits(&self) -> Vec<CommitDescriptor> {
        self.kv
            .take_completed_checkpoints()
            .into_iter()
            .map(|c| CommitDescriptor { version: c.version })
            .collect()
    }

    fn restore(&self, version: Version) -> Result<()> {
        self.kv.restore_sync(version, Duration::from_secs(30))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_core::Key;
    use dpr_faster::FasterConfig;
    use dpr_storage::{MemBlobStore, MemLogDevice};

    fn shard() -> FasterShard {
        let kv = FasterKv::new(
            FasterConfig {
                index_buckets: 1 << 10,
                memory_budget_records: 1 << 20,
                auto_maintenance: true,
                ..FasterConfig::default()
            },
            Arc::new(MemLogDevice::null()),
            Arc::new(MemBlobStore::new()),
        );
        FasterShard::new(ShardId(0), kv)
    }

    #[test]
    fn batch_execution_round_trip() {
        let s = shard();
        let ops = vec![
            ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(10)),
            ClusterOp::Read(Key::from_u64(1)),
            ClusterOp::Incr(Key::from_u64(2)),
            ClusterOp::Incr(Key::from_u64(2)),
            ClusterOp::Read(Key::from_u64(2)),
            ClusterOp::Delete(Key::from_u64(1)),
            ClusterOp::Read(Key::from_u64(1)),
        ];
        let (results, version) = s.execute_batch(SessionId(1), &ops).unwrap();
        assert_eq!(version, Version(1));
        assert_eq!(results[1], OpResult::Value(Some(Value::from_u64(10))));
        assert_eq!(results[4], OpResult::Value(Some(Value::from_u64(2))));
        assert_eq!(results[6], OpResult::Value(None));
    }

    #[test]
    fn state_object_commit_cycle() {
        let s = shard();
        s.execute_batch(
            SessionId(1),
            &[ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(1))],
        )
        .unwrap();
        assert!(s.request_commit(None));
        assert!(s.kv().wait_for_durable(Version(1), Duration::from_secs(5)));
        let commits = s.take_commits();
        assert_eq!(
            commits,
            vec![CommitDescriptor {
                version: Version(1)
            }]
        );
    }

    #[test]
    fn restore_rolls_back_uncommitted_batches() {
        let s = shard();
        s.execute_batch(
            SessionId(1),
            &[ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(1))],
        )
        .unwrap();
        s.request_commit(None);
        assert!(s.kv().wait_for_durable(Version(1), Duration::from_secs(5)));
        s.execute_batch(
            SessionId(1),
            &[ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(99))],
        )
        .unwrap();
        s.restore(Version(1)).unwrap();
        let (results, _) = s
            .execute_batch(SessionId(2), &[ClusterOp::Read(Key::from_u64(1))])
            .unwrap();
        assert_eq!(results[0], OpResult::Value(Some(Value::from_u64(1))));
    }
}
