//! The real network plane: a non-blocking, multi-worker TCP server.
//!
//! One [`NetServer`] hosts *all* of a process's shard workers behind a
//! single listener. An acceptor thread hands new connections round-robin to
//! a fixed pool of I/O threads; each I/O thread owns many non-blocking
//! connections and pumps them in a readiness loop (read → parse frames →
//! execute → queue responses → flush). Requests are routed to workers by
//! the frame header's `shard` field, so thousands of client connections
//! fan in to a handful of threads — replacing the old one-thread-per-
//! connection blocking stub in [`crate::tcp`].
//!
//! Frames on one connection are processed strictly in arrival order and
//! responses to them are queued in completion order, which for the inline
//! execution model below means *request order per connection*. Clients
//! pipeline by writing many `Request` frames before reading any
//! `Response`; cross-connection order is unspecified.
//!
//! The full wire contract (byte layout, handshake, dedupe across
//! reconnect, failure modes) is specified in `docs/NETWORK.md`.

use crate::metrics;
use crate::wire::{
    self, CutResponse, Frame, FrameKind, Hello, HelloAck, ProtoError, ProtoErrorCode, WireRequest,
    WireResponse,
};
use crate::worker::Worker;
use dpr_core::{DprError, Result, SessionId, ShardId};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// I/O threads sharing the connection set. The paper's deployment runs
    /// thread-per-core; default is the host's parallelism capped at 4 so
    /// test clusters with several in-process servers do not oversubscribe.
    pub io_threads: usize,
    /// Socket read chunk size.
    pub read_chunk: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        NetServerConfig {
            io_threads: cores.min(4),
            read_chunk: 64 << 10,
        }
    }
}

/// Shared server state consulted by every I/O thread.
struct ServerCtx {
    /// Shard-routed workers (`frame.shard` → worker).
    workers: HashMap<u32, Arc<Worker>>,
    /// Hosted shards in id order, echoed in every `HelloAck`.
    shards: Vec<ShardId>,
    /// Highest epoch accepted per session, for zombie-connection fencing.
    /// Shared across I/O threads because a reconnect may land elsewhere.
    epochs: parking_lot::Mutex<HashMap<SessionId, u32>>,
}

/// One client connection owned by an I/O thread.
struct Conn {
    stream: TcpStream,
    /// Received-but-unparsed bytes.
    rd: Vec<u8>,
    /// Encoded-but-unsent bytes (`wr[wr_pos..]` is pending).
    wr: Vec<u8>,
    wr_pos: usize,
    /// Set by a successful `Hello`.
    session: Option<(SessionId, u32)>,
    open: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rd: Vec::new(),
            wr: Vec::new(),
            wr_pos: 0,
            session: None,
            open: true,
        }
    }

    /// Queue an outbound frame (recorded as transmitted once encoded; the
    /// flush loop below drains the buffer as the socket allows).
    fn queue(&mut self, frame: &Frame) {
        metrics::net_frames_tx().inc();
        metrics::net_frame_bytes().record(frame.encoded_len() as u64);
        frame.encode_into(&mut self.wr);
    }

    /// Write pending bytes without blocking. Returns whether progress was
    /// made. Closes the connection on a hard error.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.wr_pos < self.wr.len() {
            match self.stream.write(&self.wr[self.wr_pos..]) {
                Ok(0) => {
                    self.open = false;
                    break;
                }
                Ok(n) => {
                    self.wr_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.open = false;
                    break;
                }
            }
        }
        if self.wr_pos == self.wr.len() && self.wr_pos > 0 {
            self.wr.clear();
            self.wr_pos = 0;
        } else if self.wr_pos > 64 << 10 {
            // Reclaim the sent prefix of a long-lived backlog.
            self.wr.drain(..self.wr_pos);
            self.wr_pos = 0;
        }
        progressed
    }

    /// Read whatever the socket has ready. Returns whether bytes arrived.
    fn fill(&mut self, chunk: usize, scratch: &mut Vec<u8>) -> bool {
        let mut progressed = false;
        loop {
            scratch.resize(chunk, 0);
            match self.stream.read(scratch) {
                Ok(0) => {
                    // EOF: peer closed. Remaining parsed frames still get
                    // handled; a dangling partial frame is simply dropped
                    // (the truncation is the peer's, not ours to answer).
                    self.open = false;
                    break;
                }
                Ok(n) => {
                    self.rd.extend_from_slice(&scratch[..n]);
                    progressed = true;
                    if n < chunk {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.open = false;
                    break;
                }
            }
        }
        progressed
    }

    /// Send a protocol error; close the connection unless the code is
    /// recoverable.
    fn proto_error(&mut self, code: ProtoErrorCode, seq: u64, detail: impl Into<String>) {
        metrics::net_frame_rejects().inc();
        let frame = ProtoError {
            code,
            detail: detail.into(),
        }
        .to_frame(seq);
        self.queue(&frame);
        if !code.recoverable() {
            self.open = false;
        }
    }
}

/// Parse and handle every complete frame in `conn.rd`. Returns whether any
/// frame was handled.
fn drain_frames(conn: &mut Conn, ctx: &ServerCtx) -> bool {
    let mut consumed = 0usize;
    let mut progressed = false;
    loop {
        match wire::decode_frame(&conn.rd[consumed..]) {
            Ok(None) => break,
            Ok(Some((frame, used))) => {
                consumed += used;
                progressed = true;
                metrics::net_frames_rx().inc();
                metrics::net_frame_bytes().record(used as u64);
                handle_frame(conn, &frame, ctx);
                if !conn.open {
                    break;
                }
            }
            Err(e) => {
                // Malformed header: the stream cannot be resynchronised.
                conn.proto_error(ProtoErrorCode::BadFrame, 0, e.to_string());
                break;
            }
        }
    }
    if consumed > 0 {
        conn.rd.drain(..consumed);
    }
    progressed
}

fn handle_frame(conn: &mut Conn, frame: &Frame, ctx: &ServerCtx) {
    match frame.kind {
        FrameKind::Hello => {
            let hello = match Hello::from_frame(frame) {
                Ok(h) => h,
                Err(e) => {
                    conn.proto_error(ProtoErrorCode::BadFrame, frame.seq, e.to_string());
                    return;
                }
            };
            {
                let mut epochs = ctx.epochs.lock();
                let latest = epochs.entry(hello.session).or_insert(0);
                if hello.epoch < *latest {
                    conn.proto_error(
                        ProtoErrorCode::StaleEpoch,
                        frame.seq,
                        format!("epoch {} < accepted {}", hello.epoch, *latest),
                    );
                    return;
                }
                *latest = hello.epoch;
            }
            conn.session = Some((hello.session, hello.epoch));
            let world_line = ctx
                .workers
                .values()
                .next()
                .map(|w| w.world_line())
                .unwrap_or(hello.world_line);
            let ack = HelloAck {
                epoch: hello.epoch,
                world_line,
                shards: ctx.shards.clone(),
            };
            conn.queue(&ack.to_frame());
        }
        FrameKind::Request => {
            if conn.session.is_none() {
                conn.proto_error(
                    ProtoErrorCode::HandshakeRequired,
                    frame.seq,
                    "Request before Hello",
                );
                return;
            }
            let Some(worker) = ctx.workers.get(&frame.shard) else {
                conn.proto_error(
                    ProtoErrorCode::UnknownShard,
                    frame.seq,
                    format!("shard {} not hosted here", frame.shard),
                );
                return;
            };
            let req = match WireRequest::from_frame(frame) {
                Ok(r) => r,
                Err(e) => {
                    conn.proto_error(ProtoErrorCode::BadFrame, frame.seq, e.to_string());
                    return;
                }
            };
            let outcome = if worker.dedupe_enabled() {
                match worker.dedupe_check(&req.header) {
                    // First delivery still executing (its connection died
                    // mid-batch, or raced this one): the client retries.
                    Some(None) => {
                        conn.proto_error(
                            ProtoErrorCode::DuplicateInFlight,
                            frame.seq,
                            "batch already executing",
                        );
                        return;
                    }
                    Some(Some(cached)) => Ok(cached),
                    None => {
                        let outcome = worker.execute_local(&req.header, &req.ops);
                        worker.dedupe_record(&req.header, &outcome);
                        outcome
                    }
                }
            } else {
                worker.execute_local(&req.header, &req.ops)
            };
            let resp = WireResponse { outcome };
            conn.queue(&resp.to_frame(frame.shard, frame.seq));
        }
        FrameKind::CutReq => {
            let outcome = ctx
                .workers
                .values()
                .next()
                .ok_or(DprError::Closed)
                .and_then(|w| w.read_cut());
            match outcome {
                Ok((world_line, cut)) => {
                    let resp = CutResponse { world_line, cut };
                    conn.queue(&resp.to_frame(frame.seq));
                }
                Err(e) => {
                    conn.proto_error(ProtoErrorCode::BadFrame, frame.seq, e.to_string());
                }
            }
        }
        FrameKind::Goodbye => {
            conn.open = false;
        }
        // Server-emitted kinds arriving at the server are violations.
        FrameKind::HelloAck | FrameKind::Response | FrameKind::CutResp | FrameKind::Error => {
            conn.proto_error(
                ProtoErrorCode::BadFrame,
                frame.seq,
                format!("client sent server-only frame {:?}", frame.kind),
            );
        }
    }
}

fn io_loop(
    rx: &crossbeam::channel::Receiver<TcpStream>,
    ctx: &Arc<ServerCtx>,
    stop: &Arc<AtomicBool>,
    cfg: &NetServerConfig,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = Vec::new();
    let mut backoff = dpr_core::Backoff::new();
    loop {
        let mut progressed = false;
        // Fan-in: adopt connections the acceptor has assigned to us.
        while let Ok(stream) = rx.try_recv() {
            stream.set_nonblocking(true).ok();
            stream.set_nodelay(true).ok();
            conns.push(Conn::new(stream));
            metrics::net_conns_active().add(1);
            progressed = true;
        }
        if stop.load(Ordering::Acquire) {
            // Clean shutdown: tell every peer, best-effort flush, exit.
            for conn in &mut conns {
                let bye = wire::control_frame(FrameKind::Goodbye, 0);
                conn.queue(&bye);
                conn.flush();
            }
            metrics::net_conns_active().sub(conns.len() as i64);
            return;
        }
        for conn in &mut conns {
            progressed |= conn.fill(cfg.read_chunk, &mut scratch);
            progressed |= drain_frames(conn, ctx);
            progressed |= conn.flush();
        }
        let before = conns.len();
        conns.retain(|c| c.open || c.wr_pos < c.wr.len());
        metrics::net_conns_active().sub((before - conns.len()) as i64);
        if progressed {
            backoff.reset();
        } else {
            backoff.snooze();
        }
    }
}

/// A running network-plane server. Dropping it without calling
/// [`NetServer::shutdown`] stops the threads but does not join them.
pub struct NetServer {
    stop: Arc<AtomicBool>,
    local_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    io: Vec<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Serve `workers` on `listener` until [`NetServer::shutdown`].
    ///
    /// Every worker is reachable through the one listener; requests route
    /// by the frame header's `shard` field.
    pub fn start(
        workers: Vec<Arc<Worker>>,
        listener: TcpListener,
        config: NetServerConfig,
    ) -> Result<NetServer> {
        Self::start_with_stop(workers, listener, config, Arc::new(AtomicBool::new(false)))
    }

    /// [`NetServer::start`] with an externally owned stop flag (the
    /// [`crate::tcp::serve_worker`] compatibility shim shares one flag
    /// across several servers).
    pub fn start_with_stop(
        workers: Vec<Arc<Worker>>,
        listener: TcpListener,
        config: NetServerConfig,
        stop: Arc<AtomicBool>,
    ) -> Result<NetServer> {
        if workers.is_empty() {
            return Err(DprError::Invalid(
                "NetServer needs at least one worker".into(),
            ));
        }
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let mut shards: Vec<ShardId> = workers.iter().map(|w| w.shard()).collect();
        shards.sort_unstable();
        let ctx = Arc::new(ServerCtx {
            workers: workers.into_iter().map(|w| (w.shard().0, w)).collect(),
            shards,
            epochs: parking_lot::Mutex::new(HashMap::new()),
        });
        let io_threads = config.io_threads.max(1);
        let mut senders = Vec::with_capacity(io_threads);
        let mut io = Vec::with_capacity(io_threads);
        for i in 0..io_threads {
            let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
            senders.push(tx);
            let ctx = ctx.clone();
            let stop = stop.clone();
            let cfg = config.clone();
            io.push(
                std::thread::Builder::new()
                    .name(format!("dpr-net-io-{i}"))
                    .spawn(move || io_loop(&rx, &ctx, &stop, &cfg))
                    .expect("spawn net io thread"),
            );
        }
        let accept = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("dpr-net-accept".into())
                .spawn(move || {
                    let mut next = 0usize;
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        match listener.accept() {
                            Ok((stream, _)) => {
                                // Round-robin fan-out to the I/O pool.
                                let _ = senders[next % senders.len()].send(stream);
                                next = next.wrapping_add(1);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            // Listener gone (closed or errored): stop the
                            // whole server rather than leaking a dead
                            // acceptor — I/O threads observe the flag too.
                            Err(_) => {
                                stop.store(true, Ordering::Release);
                                return;
                            }
                        }
                    }
                })
                .expect("spawn net accept thread")
        };
        Ok(NetServer {
            stop,
            local_addr,
            accept: Some(accept),
            io,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signal shutdown and join every thread: the acceptor, then each I/O
    /// thread after it has sent `Goodbye` to its connections. No detached
    /// threads survive.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.io.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}
