//! The real network plane: a non-blocking, multi-worker TCP server.
//!
//! One [`NetServer`] hosts *all* of a process's shard workers behind a
//! single listener. An acceptor thread hands new connections round-robin to
//! a fixed pool of I/O threads; each I/O thread owns many non-blocking
//! connections and pumps them in a readiness loop (read → parse frames →
//! execute → queue responses → flush). Requests are routed to workers by
//! the frame header's `shard` field, so thousands of client connections
//! fan in to a handful of threads — replacing the old one-thread-per-
//! connection blocking stub in [`crate::tcp`].
//!
//! Frames on one connection are processed strictly in arrival order and
//! responses to them are queued in completion order, which for the inline
//! execution model below means *request order per connection*. Clients
//! pipeline by writing many `Request` frames before reading any
//! `Response`; cross-connection order is unspecified.
//!
//! # Steady-state allocation discipline
//!
//! The request path is allocation-free in steady state:
//!
//! * Connection read/write buffers and the per-thread read chunk are
//!   pooled [`ScratchLease`]s (`dpr_core::pool`), acquired at connection
//!   set-up and recycled on close.
//! * A `Request` body is copied once from the read buffer into a pooled
//!   shared buffer and frozen into a [`bytes::Bytes`] view; op keys and
//!   values are zero-copy slices of it ([`wire::decode_request_body`]).
//! * Ops and results decode into per-thread reusable buffers
//!   (`IoScratch`), execution appends results in place
//!   ([`Worker::execute_local_into`]), and the response is encoded
//!   straight into the connection write buffer ([`wire::encode_response`])
//!   with a back-patched length — no intermediate frame or body `Vec`.
//! * The per-session epoch fence is a cache-padded [`StripedMap`], so
//!   concurrent handshakes on different I/O threads do not serialise.
//!
//! The full wire contract (byte layout, handshake, dedupe across
//! reconnect, failure modes) is specified in `docs/NETWORK.md`, including
//! the buffer-ownership rules for pooled bodies.
//!
//! [`ScratchLease`]: dpr_core::ScratchLease
//! [`StripedMap`]: dpr_core::StripedMap

use crate::message::{ClusterOp, OpResult};
use crate::metrics;
use crate::wire::{self, FrameKind, Hello, HelloAck, ProtoError, ProtoErrorCode};
use crate::worker::Worker;
use bytes::Bytes;
use dpr_core::{BufferPool, DprError, Result, ScratchLease, SessionId, ShardId, StripedMap};
use libdpr::BatchHeader;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// I/O threads sharing the connection set. The paper's deployment runs
    /// thread-per-core; default is the host's parallelism capped at 4 so
    /// test clusters with several in-process servers do not oversubscribe.
    pub io_threads: usize,
    /// Socket read chunk size.
    pub read_chunk: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        NetServerConfig {
            io_threads: cores.min(4),
            read_chunk: 64 << 10,
        }
    }
}

/// Shared server state consulted by every I/O thread.
struct ServerCtx {
    /// Shard-routed workers (`frame.shard` → worker).
    workers: HashMap<u32, Arc<Worker>>,
    /// Hosted shards in id order, echoed in every `HelloAck`.
    shards: Vec<ShardId>,
    /// Highest epoch accepted per session, for zombie-connection fencing.
    /// Striped by session: reconnect storms on different sessions fence on
    /// different locks. Shared across I/O threads because a reconnect may
    /// land elsewhere.
    epochs: StripedMap<SessionId, u32>,
}

/// Per-I/O-thread reusable buffers: one read chunk plus decode/execute
/// scratch, so a steady-state request allocates nothing on this thread.
struct IoScratch {
    /// Socket read staging (pooled).
    read: ScratchLease,
    /// Decoded ops of the frame being handled.
    ops: Vec<ClusterOp>,
    /// Results of the batch being executed.
    results: Vec<OpResult>,
    /// Decoded batch header (its `deps` vector is reused across frames).
    header: BatchHeader,
}

impl IoScratch {
    fn new(read_chunk: usize) -> IoScratch {
        IoScratch {
            read: BufferPool::global().acquire_scratch(read_chunk),
            ops: Vec::new(),
            results: Vec::new(),
            header: BatchHeader {
                session: SessionId(0),
                world_line: dpr_core::WorldLine(0),
                version_lower_bound: dpr_core::Version(0),
                deps: Vec::new(),
                first_serial: 0,
                op_count: 0,
            },
        }
    }
}

/// One client connection owned by an I/O thread.
struct Conn {
    stream: TcpStream,
    /// Received-but-unparsed bytes (pooled).
    rd: ScratchLease,
    /// Encoded-but-unsent bytes (`wr[wr_pos..]` is pending; pooled).
    wr: ScratchLease,
    wr_pos: usize,
    /// Set by a successful `Hello`.
    session: Option<(SessionId, u32)>,
    open: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        let pool = BufferPool::global();
        Conn {
            stream,
            rd: pool.acquire_scratch(4 << 10),
            wr: pool.acquire_scratch(4 << 10),
            wr_pos: 0,
            session: None,
            open: true,
        }
    }

    /// Encode one outbound frame into the write buffer via `f` and record
    /// it as transmitted (the flush loop below drains the buffer as the
    /// socket allows).
    fn queue_with<F: FnOnce(&mut Vec<u8>)>(&mut self, f: F) {
        let before = self.wr.len();
        f(&mut self.wr);
        metrics::net_frames_tx().inc();
        metrics::net_frame_bytes().record((self.wr.len() - before) as u64);
    }

    /// Write pending bytes without blocking. Returns whether progress was
    /// made. Closes the connection on a hard error.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.wr_pos < self.wr.len() {
            match self.stream.write(&self.wr[self.wr_pos..]) {
                Ok(0) => {
                    self.open = false;
                    break;
                }
                Ok(n) => {
                    self.wr_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.open = false;
                    break;
                }
            }
        }
        if self.wr_pos == self.wr.len() && self.wr_pos > 0 {
            self.wr.clear();
            self.wr_pos = 0;
        } else if self.wr_pos > 64 << 10 {
            // Reclaim the sent prefix of a long-lived backlog.
            self.wr.drain(..self.wr_pos);
            self.wr_pos = 0;
        }
        progressed
    }

    /// Read whatever the socket has ready. Returns whether bytes arrived.
    fn fill(&mut self, chunk: usize, scratch: &mut Vec<u8>) -> bool {
        let mut progressed = false;
        loop {
            scratch.resize(chunk, 0);
            match self.stream.read(scratch) {
                Ok(0) => {
                    // EOF: peer closed. Remaining parsed frames still get
                    // handled; a dangling partial frame is simply dropped
                    // (the truncation is the peer's, not ours to answer).
                    self.open = false;
                    break;
                }
                Ok(n) => {
                    self.rd.extend_from_slice(&scratch[..n]);
                    progressed = true;
                    if n < chunk {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.open = false;
                    break;
                }
            }
        }
        progressed
    }

    /// Send a protocol error; close the connection unless the code is
    /// recoverable.
    fn proto_error(&mut self, code: ProtoErrorCode, seq: u64, detail: impl Into<String>) {
        metrics::net_frame_rejects().inc();
        let err = ProtoError {
            code,
            detail: detail.into(),
        };
        self.queue_with(|wr| err.encode(wr, seq));
        if !code.recoverable() {
            self.open = false;
        }
    }
}

/// One frame lifted out of the read buffer into owned (pool-backed) form,
/// so the connection can be mutated while it is handled.
enum ParsedFrame {
    Hello(Hello),
    /// Body copied once into a pooled shared buffer; ops will be zero-copy
    /// slices of it.
    Request {
        shard: u32,
        seq: u64,
        body: Bytes,
    },
    CutReq {
        seq: u64,
    },
    Goodbye,
    /// A server-only kind arrived at the server.
    ServerOnly {
        kind: FrameKind,
        seq: u64,
    },
    /// The header was fine but the body failed to parse.
    Malformed {
        seq: u64,
        detail: String,
    },
}

/// Lift one frame's body out of the read buffer. Borrows `body` only for
/// the duration of the copy/parse, returning owned data.
fn parse_frame(h: &wire::FrameHeader, body: &[u8]) -> ParsedFrame {
    match h.kind {
        FrameKind::Hello => match Hello::from_body(body) {
            Ok(hello) => ParsedFrame::Hello(hello),
            Err(e) => ParsedFrame::Malformed {
                seq: h.seq,
                detail: e.to_string(),
            },
        },
        FrameKind::Request => {
            // One copy, read buffer → pooled shared buffer. Everything
            // downstream (keys, values handed to the shard) is a zero-copy
            // view of this allocation; it recycles when the views drop.
            let mut lease = BufferPool::global().acquire_shared(body.len());
            lease.data_mut()[..body.len()].copy_from_slice(body);
            ParsedFrame::Request {
                shard: h.shard,
                seq: h.seq,
                body: lease.freeze(body.len()),
            }
        }
        FrameKind::CutReq => ParsedFrame::CutReq { seq: h.seq },
        FrameKind::Goodbye => ParsedFrame::Goodbye,
        FrameKind::HelloAck | FrameKind::Response | FrameKind::CutResp | FrameKind::Error => {
            ParsedFrame::ServerOnly {
                kind: h.kind,
                seq: h.seq,
            }
        }
    }
}

/// Parse and handle every complete frame in `conn.rd`. Returns whether any
/// frame was handled.
fn drain_frames(conn: &mut Conn, ctx: &ServerCtx, scratch: &mut IoScratch) -> bool {
    let mut consumed = 0usize;
    let mut progressed = false;
    loop {
        let header = match wire::decode_header(&conn.rd[consumed..]) {
            Ok(Some(h)) => h,
            Ok(None) => break,
            Err(e) => {
                // Malformed header: the stream cannot be resynchronised.
                conn.proto_error(ProtoErrorCode::BadFrame, 0, e.to_string());
                break;
            }
        };
        let total = header.frame_len();
        if conn.rd.len() - consumed < total {
            break;
        }
        metrics::net_frames_rx().inc();
        metrics::net_frame_bytes().record(total as u64);
        // Release the previous frame's zero-copy views before acquiring the
        // next pooled body: while `scratch.ops` still borrows the old buffer
        // the pool sees it busy and must evict + allocate instead of reusing.
        scratch.ops.clear();
        scratch.results.clear();
        let parsed = parse_frame(
            &header,
            &conn.rd[consumed + wire::FRAME_HEADER_LEN..consumed + total],
        );
        consumed += total;
        progressed = true;
        apply_frame(conn, ctx, parsed, scratch);
        if !conn.open {
            break;
        }
    }
    if consumed > 0 {
        conn.rd.drain(..consumed);
    }
    progressed
}

fn apply_frame(conn: &mut Conn, ctx: &ServerCtx, parsed: ParsedFrame, scratch: &mut IoScratch) {
    match parsed {
        ParsedFrame::Hello(hello) => {
            {
                let mut epochs = ctx.epochs.lock_for(&hello.session);
                let latest = epochs.entry(hello.session).or_insert(0);
                if hello.epoch < *latest {
                    drop(epochs);
                    conn.proto_error(
                        ProtoErrorCode::StaleEpoch,
                        0,
                        format!("epoch {} < accepted", hello.epoch),
                    );
                    return;
                }
                *latest = hello.epoch;
            }
            conn.session = Some((hello.session, hello.epoch));
            let world_line = ctx
                .workers
                .values()
                .next()
                .map(|w| w.world_line())
                .unwrap_or(hello.world_line);
            let ack = HelloAck {
                epoch: hello.epoch,
                world_line,
                shards: ctx.shards.clone(),
            };
            conn.queue_with(|wr| ack.encode(wr));
        }
        ParsedFrame::Request { shard, seq, body } => {
            handle_request(conn, ctx, shard, seq, &body, scratch);
        }
        ParsedFrame::CutReq { seq } => {
            let outcome = ctx
                .workers
                .values()
                .next()
                .ok_or(DprError::Closed)
                .and_then(|w| w.read_cut_cached());
            match outcome {
                Ok(snapshot) => {
                    let (world_line, ref cut) = *snapshot;
                    conn.queue_with(|wr| wire::encode_cut_response(wr, seq, world_line, cut));
                }
                Err(e) => {
                    conn.proto_error(ProtoErrorCode::BadFrame, seq, e.to_string());
                }
            }
        }
        ParsedFrame::Goodbye => {
            conn.open = false;
        }
        ParsedFrame::ServerOnly { kind, seq } => {
            conn.proto_error(
                ProtoErrorCode::BadFrame,
                seq,
                format!("client sent server-only frame {kind:?}"),
            );
        }
        ParsedFrame::Malformed { seq, detail } => {
            conn.proto_error(ProtoErrorCode::BadFrame, seq, detail);
        }
    }
}

/// The request hot path: zero-copy decode into reused buffers, in-place
/// execution, direct response encode. No heap allocation in steady state.
fn handle_request(
    conn: &mut Conn,
    ctx: &ServerCtx,
    shard: u32,
    seq: u64,
    body: &Bytes,
    scratch: &mut IoScratch,
) {
    if conn.session.is_none() {
        conn.proto_error(
            ProtoErrorCode::HandshakeRequired,
            seq,
            "Request before Hello",
        );
        return;
    }
    let Some(worker) = ctx.workers.get(&shard) else {
        conn.proto_error(
            ProtoErrorCode::UnknownShard,
            seq,
            format!("shard {shard} not hosted here"),
        );
        return;
    };
    scratch.ops.clear();
    if let Err(e) = wire::decode_request_body_into(body, &mut scratch.ops, &mut scratch.header) {
        conn.proto_error(ProtoErrorCode::BadFrame, seq, e.to_string());
        return;
    }
    let header = &scratch.header;
    if worker.dedupe_enabled() {
        match worker.dedupe_check(header) {
            // First delivery still executing (its connection died
            // mid-batch, or raced this one): the client retries.
            Some(None) => {
                conn.proto_error(
                    ProtoErrorCode::DuplicateInFlight,
                    seq,
                    "batch already executing",
                );
                return;
            }
            Some(Some((reply, results))) => {
                conn.queue_with(|wr| {
                    wire::encode_response(wr, shard, seq, Ok((&reply, &results)));
                });
                return;
            }
            None => {}
        }
    }
    scratch.results.clear();
    match worker.execute_local_into(header, &scratch.ops, &mut scratch.results) {
        Ok(reply) => {
            if worker.dedupe_enabled() {
                worker.dedupe_record_parts(header, Ok((&reply, &scratch.results)));
            }
            conn.queue_with(|wr| {
                wire::encode_response(wr, shard, seq, Ok((&reply, &scratch.results)));
            });
        }
        Err(e) => {
            if worker.dedupe_enabled() {
                worker.dedupe_record_parts(header, Err(&e));
            }
            conn.queue_with(|wr| wire::encode_response(wr, shard, seq, Err(&e)));
        }
    }
}

fn io_loop(
    rx: &crossbeam::channel::Receiver<TcpStream>,
    ctx: &Arc<ServerCtx>,
    stop: &Arc<AtomicBool>,
    cfg: &NetServerConfig,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = IoScratch::new(cfg.read_chunk);
    let mut backoff = dpr_core::Backoff::new();
    loop {
        let mut progressed = false;
        // Fan-in: adopt connections the acceptor has assigned to us.
        while let Ok(stream) = rx.try_recv() {
            stream.set_nonblocking(true).ok();
            stream.set_nodelay(true).ok();
            conns.push(Conn::new(stream));
            metrics::net_conns_active().add(1);
            progressed = true;
        }
        if stop.load(Ordering::Acquire) {
            // Clean shutdown: tell every peer, best-effort flush, exit.
            for conn in &mut conns {
                conn.queue_with(|wr| wire::encode_control(wr, FrameKind::Goodbye, 0));
                conn.flush();
            }
            metrics::net_conns_active().sub(conns.len() as i64);
            return;
        }
        for conn in &mut conns {
            progressed |= conn.fill(cfg.read_chunk, &mut scratch.read);
            progressed |= drain_frames(conn, ctx, &mut scratch);
            progressed |= conn.flush();
        }
        let before = conns.len();
        conns.retain(|c| c.open || c.wr_pos < c.wr.len());
        metrics::net_conns_active().sub((before - conns.len()) as i64);
        if progressed {
            backoff.reset();
        } else {
            backoff.snooze();
        }
    }
}

/// A running network-plane server. Dropping it without calling
/// [`NetServer::shutdown`] stops the threads but does not join them.
pub struct NetServer {
    stop: Arc<AtomicBool>,
    local_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    io: Vec<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Serve `workers` on `listener` until [`NetServer::shutdown`].
    ///
    /// Every worker is reachable through the one listener; requests route
    /// by the frame header's `shard` field.
    pub fn start(
        workers: Vec<Arc<Worker>>,
        listener: TcpListener,
        config: NetServerConfig,
    ) -> Result<NetServer> {
        Self::start_with_stop(workers, listener, config, Arc::new(AtomicBool::new(false)))
    }

    /// [`NetServer::start`] with an externally owned stop flag (the
    /// [`crate::tcp::serve_worker`] compatibility shim shares one flag
    /// across several servers).
    pub fn start_with_stop(
        workers: Vec<Arc<Worker>>,
        listener: TcpListener,
        config: NetServerConfig,
        stop: Arc<AtomicBool>,
    ) -> Result<NetServer> {
        if workers.is_empty() {
            return Err(DprError::Invalid(
                "NetServer needs at least one worker".into(),
            ));
        }
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let mut shards: Vec<ShardId> = workers.iter().map(|w| w.shard()).collect();
        shards.sort_unstable();
        let ctx = Arc::new(ServerCtx {
            workers: workers.into_iter().map(|w| (w.shard().0, w)).collect(),
            shards,
            epochs: StripedMap::with_default_stripes(),
        });
        let io_threads = config.io_threads.max(1);
        let mut senders = Vec::with_capacity(io_threads);
        let mut io = Vec::with_capacity(io_threads);
        for i in 0..io_threads {
            let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
            senders.push(tx);
            let ctx = ctx.clone();
            let stop = stop.clone();
            let cfg = config.clone();
            io.push(
                std::thread::Builder::new()
                    .name(format!("dpr-net-io-{i}"))
                    .spawn(move || io_loop(&rx, &ctx, &stop, &cfg))
                    .expect("spawn net io thread"),
            );
        }
        let accept = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("dpr-net-accept".into())
                .spawn(move || {
                    let mut next = 0usize;
                    loop {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        match listener.accept() {
                            Ok((stream, _)) => {
                                // Round-robin fan-out to the I/O pool.
                                let _ = senders[next % senders.len()].send(stream);
                                next = next.wrapping_add(1);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            // Listener gone (closed or errored): stop the
                            // whole server rather than leaking a dead
                            // acceptor — I/O threads observe the flag too.
                            Err(_) => {
                                stop.store(true, Ordering::Release);
                                return;
                            }
                        }
                    }
                })
                .expect("spawn net accept thread")
        };
        Ok(NetServer {
            stop,
            local_addr,
            accept: Some(accept),
            io,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signal shutdown and join every thread: the acceptor, then each I/O
    /// thread after it has sent `Goodbye` to its connections. No detached
    /// threads survive.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.io.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}
